//! Deterministic mini property-testing engine, API-compatible with the
//! subset of `proptest` used by this workspace.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements just what the FeBiM property tests need:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * the [`Strategy`] trait, implemented for numeric ranges, tuples and
//!   [`Just`],
//! * [`collection::vec`] and [`bool::ANY`].
//!
//! Unlike the real proptest there is **no shrinking** and **no persistence
//! file**: every test derives its RNG seed from the test's own name (FNV-1a),
//! so runs are bit-for-bit reproducible across machines and invocations —
//! which is exactly what the workspace CI wants. Failures report the exact
//! case index so a failing case can be re-run deterministically.

#![warn(missing_docs)]

/// Execution parameters for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the workspace test
        // suite fast while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised (or returned) by a property-test body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A hard failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            message: reason.into(),
        }
    }

    /// A rejected (filtered-out) case; this shim treats it as a failure so
    /// over-aggressive filters are caught instead of silently skipped.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError {
            message: format!("case rejected: {}", reason.into()),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Result type of a property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator backing the test runner (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from the property test's name, so each test has a
    /// stable, reproducible stream independent of test-execution order.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Bias 1/32 of draws onto each exact endpoint (real proptest
                // shrinks toward boundaries; this keeps them in the sample),
                // otherwise scale inclusively so `hi` stays reachable.
                let selector = rng.next_u64() & 31;
                if selector == 0 {
                    return lo;
                }
                if selector == 1 {
                    return hi;
                }
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive) on length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Vector of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        assert!(min_len < max_len, "empty length range for vec strategy");
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max_len - self.min_len) as u64;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// Uniform boolean strategy.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares deterministic property tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal item-muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __inner = || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                let __inner = || {
                    if let Err(failure) = __inner() {
                        panic!("property body returned Err: {failure}");
                    }
                };
                if let Err(panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__inner)
                ) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic seed; \
                         re-run reproduces it exactly)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay inside their bounds.
        #[test]
        fn ranges_are_bounded(
            x in -2.5f64..7.5,
            n in 3usize..9,
            flag in crate::bool::ANY,
            v in crate::collection::vec(0u32..100, 1..5),
        ) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        /// Tuple strategies generate componentwise.
        #[test]
        fn tuples_work(pair in (0usize..4, 10usize..14)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1 / 10, 1);
        }
    }
}
