//! Offline stand-in for the `serde` surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the pieces the FeBiM crates actually rely on:
//!
//! * a **real** [`Serialize`] trait that writes compact JSON — implemented
//!   for the primitives, strings, `Vec`/slices, `Option` and tuples, and
//!   derived for workspace types by the sibling `serde_derive` shim;
//! * a **real** [`Deserialize`] trait decoding the same shapes back out of a
//!   parsed [`json::Value`] tree (model snapshots load from bytes through
//!   it), with [`json::from_str`] as the `serde_json` entry point;
//! * the [`json`] module with [`json::to_string`] / [`json::to_string_pretty`]
//!   (the `serde_json` entry points the bench binaries use).
//!
//! The JSON encoding matches `serde_json` for the shapes in use: structs are
//! objects, newtype structs are their inner value, unit enum variants are
//! strings, struct/tuple variants are externally tagged objects, and
//! non-finite floats serialize as `null` (and decode back as NaN).

#![warn(missing_docs)]

// The derive macros live in the macro namespace, the traits below in the
// type namespace, so — exactly like real serde with `features = ["derive"]`
// — `serde::Serialize` / `serde::Deserialize` name both.
pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
///
/// This is the shim's stand-in for `serde::Serialize`: instead of the full
/// `Serializer` abstraction it exposes a single method that appends the
/// compact JSON encoding of `self` to a buffer. `#[derive(Serialize)]`
/// (from the vendored `serde_derive`) generates implementations for structs
/// and enums.
pub trait Serialize {
    /// Appends the compact JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Types that can rebuild themselves from a parsed JSON tree.
///
/// This is the shim's stand-in for `serde::Deserialize`: instead of the full
/// `Deserializer` abstraction it exposes a single method decoding `Self`
/// from a [`json::Value`]. `#[derive(Deserialize)]` (from the vendored
/// `serde_derive`) generates implementations for structs and enums that
/// mirror the encoding [`Serialize`] writes; unknown object keys are
/// ignored, and `#[serde(skip)]` / `#[serde(default)]` fields fall back to
/// `Default::default()`.
///
/// The lifetime parameter exists only for signature compatibility with real
/// serde (`Deserialize<'de>` bounds compile unchanged); the shim always
/// decodes owned values.
pub trait Deserialize<'de>: Sized {
    /// Decodes `Self` from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`json::Error`] when the value's shape does not match the
    /// type (wrong kind, missing required field, unknown enum variant,
    /// out-of-range number).
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error>;
}

/// Stand-in for `serde::de::DeserializeOwned`: decodable without borrowing
/// from the input, which every shim [`Deserialize`] impl is.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}

macro_rules! impl_serialize_integer {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buffer(&mut [0u8; 40], *self as i128));
            }
        }
    )*};
}

/// Formats a signed 128-bit value into the caller's buffer without heap
/// allocation (every workspace integer fits i128).
fn itoa_buffer(buffer: &mut [u8; 40], mut value: i128) -> &str {
    let negative = value < 0;
    let mut index = buffer.len();
    loop {
        index -= 1;
        // `unsigned_abs`-style digit extraction that survives i128::MIN.
        let digit = (value % 10).unsigned_abs() as u8;
        buffer[index] = b'0' + digit;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    if negative {
        index -= 1;
        buffer[index] = b'-';
    }
    std::str::from_utf8(&buffer[index..]).expect("ASCII digits")
}

impl_serialize_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for i128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's float formatting is shortest-round-trip, like the
                    // ryu backend of serde_json: decimal notation in the
                    // human-readable range, exponent notation for extremes.
                    let magnitude = self.abs();
                    if *self == 0.0 || (1e-4..1e16).contains(&magnitude) {
                        let mut formatted = format!("{self}");
                        if !formatted.contains('.') {
                            formatted.push_str(".0");
                        }
                        out.push_str(&formatted);
                    } else {
                        out.push_str(&format!("{self:e}"));
                    }
                } else {
                    // serde_json represents NaN/±inf as null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::escape_into(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::escape_into(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buffer = [0u8; 4];
        json::escape_into(self.encode_utf8(&mut buffer), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(value) => value.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (index, element) in self.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            element.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}

impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<T: Serialize> Serialize for std::cell::RefCell<T> {
    fn serialize_json(&self, out: &mut String) {
        self.borrow().serialize_json(out);
    }
}

macro_rules! impl_deserialize_integer {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_json(
                value: &json::Value,
            ) -> std::result::Result<Self, json::Error> {
                let raw = value
                    .as_int()
                    .ok_or_else(|| json::Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| {
                    json::Error::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl<'de> Deserialize<'de> for u128 {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        let raw = value
            .as_int()
            .ok_or_else(|| json::Error::expected("integer", "u128"))?;
        u128::try_from(raw)
            .map_err(|_| json::Error::new(format!("integer {raw} out of range for u128")))
    }
}

macro_rules! impl_deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_json(
                value: &json::Value,
            ) -> std::result::Result<Self, json::Error> {
                match value {
                    json::Value::Float(raw) => Ok(*raw as $t),
                    json::Value::Int(raw) => Ok(*raw as $t),
                    // Serialize writes non-finite floats as null; decode
                    // them back as NaN so snapshots round-trip.
                    json::Value::Null => Ok(<$t>::NAN),
                    _ => Err(json::Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        match value {
            json::Value::Bool(flag) => Ok(*flag),
            _ => Err(json::Error::expected("boolean", "bool")),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| json::Error::expected("string", "String"))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        let text = value
            .as_str()
            .ok_or_else(|| json::Error::expected("string", "char"))?;
        let mut chars = text.chars();
        match (chars.next(), chars.next()) {
            (Some(only), None) => Ok(only),
            _ => Err(json::Error::new(format!(
                "expected a single-character string for char, got {text:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        match value {
            json::Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        let items = value
            .as_array()
            .ok_or_else(|| json::Error::expected("array", "Vec"))?;
        items.iter().map(T::deserialize_json).collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        let items = value
            .as_array()
            .ok_or_else(|| json::Error::expected("array", "fixed-size array"))?;
        if items.len() != N {
            return Err(json::Error::new(format!(
                "expected an array of {N} elements, got {}",
                items.len()
            )));
        }
        let mut decoded = Vec::with_capacity(N);
        for item in items {
            decoded.push(T::deserialize_json(item)?);
        }
        decoded
            .try_into()
            .map_err(|_| json::Error::new("array length changed during decode".to_owned()))
    }
}

macro_rules! impl_deserialize_tuple {
    ($count:literal; $($name:ident : $idx:tt),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_json(
                value: &json::Value,
            ) -> std::result::Result<Self, json::Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| json::Error::expected("array", "tuple"))?;
                if items.len() != $count {
                    return Err(json::Error::new(format!(
                        "expected a tuple of {} elements, got {}",
                        $count,
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_json(&items[$idx])?,)+))
            }
        }
    };
}

impl_deserialize_tuple!(2; A: 0, B: 1);
impl_deserialize_tuple!(3; A: 0, B: 1, C: 2);
impl_deserialize_tuple!(4; A: 0, B: 1, C: 2, D: 3);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::cell::RefCell<T> {
    fn deserialize_json(value: &json::Value) -> std::result::Result<Self, json::Error> {
        T::deserialize_json(value).map(std::cell::RefCell::new)
    }
}

/// `serde_json`-shaped entry points over the shim's [`Serialize`] and
/// [`Deserialize`](crate::Deserialize) traits.
pub mod json {
    use super::Serialize;

    /// A parsed JSON document.
    ///
    /// Integers and floats are kept apart ([`Value::Int`] holds any literal
    /// without a fraction or exponent) so integer decoding stays exact up to
    /// the full `u64`/`i64` ranges.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number written without `.`, `e` or `E`.
        Int(i128),
        /// A number with a fraction or exponent.
        Float(f64),
        /// A string literal (escapes already resolved).
        String(String),
        /// `[ ... ]`.
        Array(Vec<Value>),
        /// `{ ... }`, in document order. Keys are not deduplicated; lookups
        /// return the first match like `serde_json`'s map does on insert.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The integer payload, if this is an integer literal.
        pub fn as_int(&self) -> Option<i128> {
            match self {
                Value::Int(raw) => Some(*raw),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(text) => Some(text),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Whether this is an object.
        pub fn is_object(&self) -> bool {
            matches!(self, Value::Object(_))
        }

        /// Looks up a field of an object by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields
                    .iter()
                    .find(|(name, _)| name == key)
                    .map(|(_, value)| value),
                _ => None,
            }
        }

        /// Interprets this value as an externally tagged enum payload: a
        /// single-key object yields `(tag, inner)`.
        pub fn tagged(&self) -> Option<(&str, &Value)> {
            match self {
                Value::Object(fields) if fields.len() == 1 => {
                    Some((fields[0].0.as_str(), &fields[0].1))
                }
                _ => None,
            }
        }
    }

    /// Decode or parse failure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Creates an error from a message.
        pub fn new(message: String) -> Self {
            Self { message }
        }

        /// "expected X" shape-mismatch error while decoding `ty`.
        pub fn expected(kind: &str, ty: &str) -> Self {
            Self::new(format!("expected {kind} while decoding {ty}"))
        }

        /// Missing required object field while decoding `ty`.
        pub fn missing_field(field: &str, ty: &str) -> Self {
            Self::new(format!("missing field `{field}` while decoding {ty}"))
        }

        /// Unrecognized enum variant tag while decoding `ty`.
        pub fn unknown_variant(tag: &str, ty: &str) -> Self {
            Self::new(format!("unknown variant `{tag}` while decoding {ty}"))
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Parses a JSON document into a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] (with byte offset) on malformed input or trailing
    /// non-whitespace content.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            position: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.position != parser.bytes.len() {
            return Err(parser.error("trailing content after JSON document"));
        }
        Ok(value)
    }

    /// Deserializes a value from a JSON string (the `serde_json::from_str`
    /// entry point).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
    pub fn from_str<T: for<'de> crate::Deserialize<'de>>(text: &str) -> Result<T, Error> {
        T::deserialize_json(&parse(text)?)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        position: usize,
    }

    impl<'a> Parser<'a> {
        fn error(&self, message: &str) -> Error {
            Error::new(format!("{message} at byte {}", self.position))
        }

        fn skip_whitespace(&mut self) {
            while let Some(&byte) = self.bytes.get(self.position) {
                if matches!(byte, b' ' | b'\t' | b'\n' | b'\r') {
                    self.position += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.position).copied()
        }

        fn expect_byte(&mut self, expected: u8) -> Result<(), Error> {
            if self.peek() == Some(expected) {
                self.position += 1;
                Ok(())
            } else {
                Err(self.error(&format!("expected `{}`", expected as char)))
            }
        }

        fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
            if self.bytes[self.position..].starts_with(literal.as_bytes()) {
                self.position += literal.len();
                Ok(value)
            } else {
                Err(self.error(&format!("expected `{literal}`")))
            }
        }

        fn parse_value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.expect_literal("null", Value::Null),
                Some(b't') => self.expect_literal("true", Value::Bool(true)),
                Some(b'f') => self.expect_literal("false", Value::Bool(false)),
                Some(b'"') => self.parse_string().map(Value::String),
                Some(b'[') => self.parse_array(),
                Some(b'{') => self.parse_object(),
                Some(byte) if byte == b'-' || byte.is_ascii_digit() => self.parse_number(),
                _ => Err(self.error("expected a JSON value")),
            }
        }

        fn parse_array(&mut self) -> Result<Value, Error> {
            self.expect_byte(b'[')?;
            let mut items = Vec::new();
            self.skip_whitespace();
            if self.peek() == Some(b']') {
                self.position += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_whitespace();
                items.push(self.parse_value()?);
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => self.position += 1,
                    Some(b']') => {
                        self.position += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(self.error("expected `,` or `]` in array")),
                }
            }
        }

        fn parse_object(&mut self) -> Result<Value, Error> {
            self.expect_byte(b'{')?;
            let mut fields = Vec::new();
            self.skip_whitespace();
            if self.peek() == Some(b'}') {
                self.position += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_whitespace();
                let key = self.parse_string()?;
                self.skip_whitespace();
                self.expect_byte(b':')?;
                self.skip_whitespace();
                let value = self.parse_value()?;
                fields.push((key, value));
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => self.position += 1,
                    Some(b'}') => {
                        self.position += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(self.error("expected `,` or `}` in object")),
                }
            }
        }

        fn parse_string(&mut self) -> Result<String, Error> {
            self.expect_byte(b'"')?;
            let mut out = String::new();
            loop {
                let byte = self
                    .peek()
                    .ok_or_else(|| self.error("unterminated string"))?;
                match byte {
                    b'"' => {
                        self.position += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.position += 1;
                        let escape = self
                            .peek()
                            .ok_or_else(|| self.error("unterminated escape"))?;
                        self.position += 1;
                        match escape {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let unit = self.parse_hex4()?;
                                let scalar = if (0xd800..0xdc00).contains(&unit) {
                                    // High surrogate: a \uXXXX low surrogate
                                    // must follow.
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.error("lone high surrogate"));
                                    }
                                    self.position += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.error("lone high surrogate"));
                                    }
                                    self.position += 1;
                                    let low = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                                } else {
                                    unit
                                };
                                let character = char::from_u32(scalar)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?;
                                out.push(character);
                            }
                            _ => return Err(self.error("invalid escape sequence")),
                        }
                    }
                    _ => {
                        // Consume one UTF-8 character (the input is a &str,
                        // so continuation bytes are well formed).
                        let rest = &self.bytes[self.position..];
                        let text = std::str::from_utf8(rest)
                            .map_err(|_| self.error("invalid UTF-8 in string"))?;
                        let character = text.chars().next().expect("non-empty checked above");
                        out.push(character);
                        self.position += character.len_utf8();
                    }
                }
            }
        }

        fn parse_hex4(&mut self) -> Result<u32, Error> {
            let end = self.position + 4;
            let digits = self
                .bytes
                .get(self.position..end)
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let text = std::str::from_utf8(digits).map_err(|_| self.error("invalid \\u escape"))?;
            let unit =
                u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
            self.position = end;
            Ok(unit)
        }

        fn parse_number(&mut self) -> Result<Value, Error> {
            let start = self.position;
            if self.peek() == Some(b'-') {
                self.position += 1;
            }
            let mut is_float = false;
            while let Some(byte) = self.peek() {
                match byte {
                    b'0'..=b'9' => self.position += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.position += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.position])
                .expect("ASCII number characters");
            if is_float {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.error("invalid number"))
            } else {
                text.parse::<i128>()
                    .map(Value::Int)
                    .map_err(|_| self.error("invalid integer"))
            }
        }
    }

    /// Serializes a value to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value.serialize_json(&mut out);
        out
    }

    /// Serializes a value to two-space-indented JSON (the `serde_json`
    /// pretty format).
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        reindent(&to_string(value))
    }

    /// Appends `text` as a JSON string literal (quoted and escaped).
    pub fn escape_into(text: &str, out: &mut String) {
        out.push('"');
        for character in text.chars() {
            match character {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                control if (control as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", control as u32));
                }
                other => out.push(other),
            }
        }
        out.push('"');
    }

    /// Reformats compact JSON with two-space indentation. The input must be
    /// valid JSON (it always is here: it comes from [`to_string`]).
    fn reindent(compact: &str) -> String {
        let mut out = String::with_capacity(compact.len() * 2);
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        let mut chars = compact.chars().peekable();
        while let Some(character) = chars.next() {
            if in_string {
                out.push(character);
                if escaped {
                    escaped = false;
                } else if character == '\\' {
                    escaped = true;
                } else if character == '"' {
                    in_string = false;
                }
                continue;
            }
            match character {
                '"' => {
                    in_string = true;
                    out.push('"');
                }
                '{' | '[' => {
                    out.push(character);
                    // Keep empty containers on one line.
                    let closer = if character == '{' { '}' } else { ']' };
                    if chars.peek() == Some(&closer) {
                        out.push(closer);
                        chars.next();
                    } else {
                        depth += 1;
                        push_newline(&mut out, depth);
                    }
                }
                '}' | ']' => {
                    depth = depth.saturating_sub(1);
                    push_newline(&mut out, depth);
                    out.push(character);
                }
                ',' => {
                    out.push(',');
                    push_newline(&mut out, depth);
                }
                ':' => out.push_str(": "),
                other => out.push(other),
            }
        }
        out
    }

    fn push_newline(out: &mut String, depth: usize) {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize_like_serde_json() {
        assert_eq!(json::to_string(&42usize), "42");
        assert_eq!(json::to_string(&-7i32), "-7");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn floats_round_trip() {
        for value in [0.1e-6, 1.0e-6, 2.36e-12, 581.4e12, 0.0, -3.25] {
            let encoded = json::to_string(&value);
            let decoded: f64 = encoded.parse().expect("JSON number parses as f64");
            assert_eq!(decoded, value, "{encoded}");
        }
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(json::to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&Vec::<u32>::new()), "[]");
        assert_eq!(json::to_string(&Some(5u8)), "5");
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(
            json::to_string(&vec![vec![Some(1usize), None]]),
            "[[1,null]]"
        );
        assert_eq!(json::to_string(&(1u8, "x")), "[1,\"x\"]");
    }

    #[test]
    fn pretty_printing_indents_and_preserves_strings() {
        let pretty = json::to_string_pretty(&vec!["a{b".to_string(), "c,d".to_string()]);
        assert_eq!(pretty, "[\n  \"a{b\",\n  \"c,d\"\n]");
        let empty = json::to_string_pretty(&Vec::<u8>::new());
        assert_eq!(empty, "[]");
    }

    #[test]
    fn integer_extremes_format_correctly() {
        assert_eq!(json::to_string(&u64::MAX), u64::MAX.to_string());
        assert_eq!(json::to_string(&i64::MIN), i64::MIN.to_string());
        assert_eq!(json::to_string(&0u8), "0");
    }

    #[test]
    fn parser_reads_every_value_kind() {
        let value =
            json::parse(r#" {"a": [1, -2.5, null, true], "b": "x\né", "c": {"d": 1e3}} "#).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[0].as_int(),
            Some(1)
        );
        assert_eq!(value.get("b").unwrap().as_str(), Some("x\né"));
        assert_eq!(
            value.get("c").unwrap().get("d"),
            Some(&json::Value::Float(1e3))
        );
        assert!(json::parse("[1,2").is_err());
        assert!(json::parse("17 true").is_err());
        assert!(json::parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn primitives_round_trip_through_from_str() {
        assert_eq!(
            json::from_str::<u64>(&json::to_string(&u64::MAX)).unwrap(),
            u64::MAX
        );
        assert_eq!(
            json::from_str::<i64>(&json::to_string(&i64::MIN)).unwrap(),
            i64::MIN
        );
        assert!(json::from_str::<u8>("300").is_err());
        assert!(json::from_str::<u32>("-1").is_err());
        assert_eq!(json::from_str::<f64>("2.5e-3").unwrap(), 2.5e-3);
        assert_eq!(json::from_str::<f64>("7").unwrap(), 7.0);
        assert!(json::from_str::<f64>("null").unwrap().is_nan());
        assert!(json::from_str::<bool>("true").unwrap());
        assert_eq!(json::from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
        assert_eq!(json::from_str::<char>("\"x\"").unwrap(), 'x');
        assert!(json::from_str::<char>("\"xy\"").is_err());
    }

    #[test]
    fn containers_round_trip_through_from_str() {
        let nested = vec![vec![Some(1usize), None], vec![Some(4)]];
        let decoded: Vec<Vec<Option<usize>>> = json::from_str(&json::to_string(&nested)).unwrap();
        assert_eq!(decoded, nested);

        let tuple = (3u8, "hi".to_string(), -1.25f64);
        let decoded: (u8, String, f64) = json::from_str(&json::to_string(&tuple)).unwrap();
        assert_eq!(decoded, tuple);

        let fixed = [1u32, 2, 3];
        let decoded: [u32; 3] = json::from_str(&json::to_string(&fixed)).unwrap();
        assert_eq!(decoded, fixed);
        assert!(json::from_str::<[u32; 4]>("[1,2,3]").is_err());

        let cell = std::cell::RefCell::new(9u8);
        let decoded: std::cell::RefCell<u8> = json::from_str(&json::to_string(&cell)).unwrap();
        assert_eq!(decoded, cell);
    }
}
