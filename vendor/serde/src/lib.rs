//! Offline stand-in for the `serde` trait surface used by this workspace.
//!
//! The FeBiM crates only use serde through `#[derive(Serialize, Deserialize)]`
//! on config and result structs — nothing in the workspace actually
//! serializes (there is no serde_json/bincode dependency; CSV output is
//! hand-rolled in `febim-core`). Since the build environment has no access to
//! crates.io, this shim keeps those derives compiling: the traits are pure
//! markers with blanket impls, and the derive macros expand to nothing.
//!
//! If real serialization is ever needed, replace this vendored crate with the
//! genuine `serde` by restoring the crates.io dependency.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}
