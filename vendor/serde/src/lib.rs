//! Offline stand-in for the `serde` surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the pieces the FeBiM crates actually rely on:
//!
//! * a **real** [`Serialize`] trait that writes compact JSON — implemented
//!   for the primitives, strings, `Vec`/slices, `Option` and tuples, and
//!   derived for workspace types by the sibling `serde_derive` shim;
//! * the [`json`] module with [`json::to_string`] / [`json::to_string_pretty`]
//!   (the `serde_json` entry points the bench binaries use);
//! * marker-only [`Deserialize`] / [`DeserializeOwned`] traits with blanket
//!   impls (nothing in the workspace deserializes).
//!
//! The JSON encoding matches `serde_json` for the shapes in use: structs are
//! objects, newtype structs are their inner value, unit enum variants are
//! strings, struct/tuple variants are externally tagged objects, and
//! non-finite floats serialize as `null`.

#![warn(missing_docs)]

// The derive macro lives in the macro namespace, the trait below in the type
// namespace, so — exactly like real serde with `features = ["derive"]` —
// `serde::Serialize` names both.
pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
///
/// This is the shim's stand-in for `serde::Serialize`: instead of the full
/// `Serializer` abstraction it exposes a single method that appends the
/// compact JSON encoding of `self` to a buffer. `#[derive(Serialize)]`
/// (from the vendored `serde_derive`) generates implementations for structs
/// and enums.
pub trait Serialize {
    /// Appends the compact JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}

macro_rules! impl_serialize_integer {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buffer(&mut [0u8; 40], *self as i128));
            }
        }
    )*};
}

/// Formats a signed 128-bit value into the caller's buffer without heap
/// allocation (every workspace integer fits i128).
fn itoa_buffer(buffer: &mut [u8; 40], mut value: i128) -> &str {
    let negative = value < 0;
    let mut index = buffer.len();
    loop {
        index -= 1;
        // `unsigned_abs`-style digit extraction that survives i128::MIN.
        let digit = (value % 10).unsigned_abs() as u8;
        buffer[index] = b'0' + digit;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    if negative {
        index -= 1;
        buffer[index] = b'-';
    }
    std::str::from_utf8(&buffer[index..]).expect("ASCII digits")
}

impl_serialize_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for i128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's float formatting is shortest-round-trip, like the
                    // ryu backend of serde_json: decimal notation in the
                    // human-readable range, exponent notation for extremes.
                    let magnitude = self.abs();
                    if *self == 0.0 || (1e-4..1e16).contains(&magnitude) {
                        let mut formatted = format!("{self}");
                        if !formatted.contains('.') {
                            formatted.push_str(".0");
                        }
                        out.push_str(&formatted);
                    } else {
                        out.push_str(&format!("{self:e}"));
                    }
                } else {
                    // serde_json represents NaN/±inf as null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::escape_into(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::escape_into(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buffer = [0u8; 4];
        json::escape_into(self.encode_utf8(&mut buffer), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(value) => value.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (index, element) in self.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            element.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}

impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<T: Serialize> Serialize for std::cell::RefCell<T> {
    fn serialize_json(&self, out: &mut String) {
        self.borrow().serialize_json(out);
    }
}

/// `serde_json`-shaped entry points over the shim's [`Serialize`] trait.
pub mod json {
    use super::Serialize;

    /// Serializes a value to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value.serialize_json(&mut out);
        out
    }

    /// Serializes a value to two-space-indented JSON (the `serde_json`
    /// pretty format).
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        reindent(&to_string(value))
    }

    /// Appends `text` as a JSON string literal (quoted and escaped).
    pub fn escape_into(text: &str, out: &mut String) {
        out.push('"');
        for character in text.chars() {
            match character {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                control if (control as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", control as u32));
                }
                other => out.push(other),
            }
        }
        out.push('"');
    }

    /// Reformats compact JSON with two-space indentation. The input must be
    /// valid JSON (it always is here: it comes from [`to_string`]).
    fn reindent(compact: &str) -> String {
        let mut out = String::with_capacity(compact.len() * 2);
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        let mut chars = compact.chars().peekable();
        while let Some(character) = chars.next() {
            if in_string {
                out.push(character);
                if escaped {
                    escaped = false;
                } else if character == '\\' {
                    escaped = true;
                } else if character == '"' {
                    in_string = false;
                }
                continue;
            }
            match character {
                '"' => {
                    in_string = true;
                    out.push('"');
                }
                '{' | '[' => {
                    out.push(character);
                    // Keep empty containers on one line.
                    let closer = if character == '{' { '}' } else { ']' };
                    if chars.peek() == Some(&closer) {
                        out.push(closer);
                        chars.next();
                    } else {
                        depth += 1;
                        push_newline(&mut out, depth);
                    }
                }
                '}' | ']' => {
                    depth = depth.saturating_sub(1);
                    push_newline(&mut out, depth);
                    out.push(character);
                }
                ',' => {
                    out.push(',');
                    push_newline(&mut out, depth);
                }
                ':' => out.push_str(": "),
                other => out.push(other),
            }
        }
        out
    }

    fn push_newline(out: &mut String, depth: usize) {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize_like_serde_json() {
        assert_eq!(json::to_string(&42usize), "42");
        assert_eq!(json::to_string(&-7i32), "-7");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn floats_round_trip() {
        for value in [0.1e-6, 1.0e-6, 2.36e-12, 581.4e12, 0.0, -3.25] {
            let encoded = json::to_string(&value);
            let decoded: f64 = encoded.parse().expect("JSON number parses as f64");
            assert_eq!(decoded, value, "{encoded}");
        }
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(json::to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&Vec::<u32>::new()), "[]");
        assert_eq!(json::to_string(&Some(5u8)), "5");
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(
            json::to_string(&vec![vec![Some(1usize), None]]),
            "[[1,null]]"
        );
        assert_eq!(json::to_string(&(1u8, "x")), "[1,\"x\"]");
    }

    #[test]
    fn pretty_printing_indents_and_preserves_strings() {
        let pretty = json::to_string_pretty(&vec!["a{b".to_string(), "c,d".to_string()]);
        assert_eq!(pretty, "[\n  \"a{b\",\n  \"c,d\"\n]");
        let empty = json::to_string_pretty(&Vec::<u8>::new());
        assert_eq!(empty, "[]");
    }

    #[test]
    fn integer_extremes_format_correctly() {
        assert_eq!(json::to_string(&u64::MAX), u64::MAX.to_string());
        assert_eq!(json::to_string(&i64::MIN), i64::MIN.to_string());
        assert_eq!(json::to_string(&0u8), "0");
    }
}
