//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact trait surface the FeBiM crates rely on — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] — backed by a xoshiro256++ generator
//! seeded through SplitMix64. The generator is deterministic for a given
//! seed, which is all the reproduction needs: every stochastic experiment in
//! the workspace threads an explicitly seeded RNG.
//!
//! This is **not** a cryptographic RNG and the stream differs from the real
//! `rand::rngs::StdRng` (ChaCha12); only statistical quality and seed
//! determinism are preserved.

#![warn(missing_docs)]

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Inclusive scaling: divide by 2^53 - 1 so `hi` is reachable,
                // matching rand's closed-interval contract for `lo..=hi`.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same seed, same stream — across platforms and runs.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // xoshiro256++ requires a non-zero state; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..1_000usize {
            let j = rng.gen_range(0..=i);
            assert!(j <= i);
            let k = rng.gen_range(0..i + 1);
            assert!(k <= i);
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
