//! Lightweight stand-in for the subset of the `criterion` API used by the
//! FeBiM benches.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! keeps the `harness = false` bench targets compiling and useful: each
//! benchmark runs a short warm-up, then times `sample_size` batches and
//! prints min/mean per-iteration wall time. There are no statistical
//! regressions reports, plots or comparison baselines — swap in the real
//! `criterion` when network access is available to get those back.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; only a sizing hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: few iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&String> for BenchmarkId {
    fn from(id: &String) -> Self {
        BenchmarkId { id: id.clone() }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            samples: Vec::new(),
        }
    }

    /// Times `routine`, running it `iters` times per recorded sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters as u32);
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / self.iters as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn run_one(name: &str, sample_size: usize, mut exercise: impl FnMut(&mut Bencher)) {
    // Warm-up pass, also used to calibrate iterations per sample so that
    // nanosecond-scale routines are not dominated by clock-read overhead:
    // aim for ~50 µs of work per recorded sample, capped at 10k iterations.
    let mut warmup = Bencher::new(1);
    exercise(&mut warmup);
    let per_iter_nanos = warmup
        .samples
        .first()
        .map(|d| d.as_nanos().max(1))
        .unwrap_or(1_000);
    let iters = (50_000 / per_iter_nanos).clamp(1, 10_000) as u64;

    let mut bencher = Bencher::new(iters);
    for _ in 0..sample_size {
        exercise(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples recorded)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{name:<50} min {:>12}   mean {:>12}   ({} samples)",
        format_duration(min),
        format_duration(mean),
        bencher.samples.len(),
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs a benchmark that receives an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finalises the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep default runs quick; groups can raise this via `sample_size`.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Compatibility no-op mirroring `Criterion::configure_from_args`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Prevents the optimiser from eliding a value (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_bench(c: &mut Criterion) {
        c.bench_function("toy_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("toy_group");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("param", 7), |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("with_input", 2), &2u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, toy_bench);

    #[test]
    fn harness_macros_compile_and_run() {
        benches();
    }
}
