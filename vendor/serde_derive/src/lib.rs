//! `Serialize`/`Deserialize` derive macros for the offline `serde` shim.
//!
//! `Serialize` is a real derive now: it parses the item declaration with the
//! bare `proc_macro` API (the build environment has no `syn`/`quote`) and
//! emits an implementation of the shim's `serde::Serialize` trait that writes
//! compact JSON, matching serde_json's data model for the shapes this
//! workspace uses:
//!
//! * structs with named fields → objects (`#[serde(skip)]` fields omitted),
//! * newtype structs → the inner value, other tuple structs → arrays,
//! * unit enum variants → `"Variant"`,
//! * struct variants → `{"Variant":{...}}`, tuple variants →
//!   `{"Variant":[...]}` (newtype variants → `{"Variant":value}`).
//!
//! `Deserialize` remains a no-op: nothing in the workspace deserializes, and
//! the sibling shim keeps its blanket marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's JSON-emitting `serde::Serialize` for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand_serialize(input)
        .parse()
        .expect("serde_derive shim produced invalid Rust")
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing; the blanket impl
/// in the `serde` shim already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skipped: bool,
}

/// One parsed enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

fn expand_serialize(input: TokenStream) -> String {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut index = 0;
    skip_attributes_and_visibility(&tokens, &mut index);

    let kind = match &tokens[index] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    index += 1;
    let name = match &tokens[index] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive shim: expected an item name, found {other}"),
    };
    index += 1;
    if matches!(&tokens.get(index), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (deriving {name})");
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(index) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                serialize_named_fields(&parse_named_fields(group.stream()), "self.")
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                serialize_tuple_fields(count_tuple_fields(group.stream()), "self.")
            }
            // Unit struct: serde_json renders it as null.
            _ => "out.push_str(\"null\");".to_string(),
        },
        "enum" => {
            let group = match tokens.get(index) {
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group,
                other => panic!("serde_derive shim: malformed enum body: {other:?}"),
            };
            serialize_enum(&parse_variants(group.stream()))
        }
        other => panic!("serde_derive shim: cannot derive Serialize for `{other}` items"),
    };

    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Advances past outer attributes (`#[...]`, including doc comments) and an
/// optional `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], index: &mut usize) {
    loop {
        match tokens.get(*index) {
            Some(TokenTree::Punct(punct)) if punct.as_char() == '#' => {
                *index += 2; // `#` plus the bracketed attribute group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *index += 1;
                if let Some(TokenTree::Group(group)) = tokens.get(*index) {
                    if group.delimiter() == Delimiter::Parenthesis {
                        *index += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Whether an attribute group (the `[...]` contents) is `serde(skip)`.
fn is_serde_skip(group: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(ident)), Some(TokenTree::Group(args)))
            if ident.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|token| matches!(&token, TokenTree::Ident(arg) if arg.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Parses `name: Type, ...` sequences (struct bodies and struct variants).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        // Leading attributes: record `#[serde(skip)]`, ignore the rest.
        let mut skipped = false;
        loop {
            match tokens.get(index) {
                Some(TokenTree::Punct(punct)) if punct.as_char() == '#' => {
                    if let Some(TokenTree::Group(group)) = tokens.get(index + 1) {
                        skipped |= is_serde_skip(&group.stream());
                    }
                    index += 2;
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    index += 1;
                    if let Some(TokenTree::Group(group)) = tokens.get(index) {
                        if group.delimiter() == Delimiter::Parenthesis {
                            index += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field_name)) = tokens.get(index) else {
            break;
        };
        fields.push(Field {
            name: field_name.to_string(),
            skipped,
        });
        // Skip `: Type` up to the next top-level comma; commas inside angle
        // brackets (`HashMap<K, V>`) belong to the type.
        let mut angle_depth = 0i32;
        index += 1;
        while index < tokens.len() {
            match &tokens[index] {
                TokenTree::Punct(punct) if punct.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(punct) if punct.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(punct) if punct.as_char() == ',' && angle_depth == 0 => {
                    index += 1;
                    break;
                }
                _ => {}
            }
            index += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for token in stream {
        match &token {
            TokenTree::Punct(punct) if punct.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(punct) if punct.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(punct) if punct.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    fields += 1;
                    pending = false;
                }
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut index);
        let Some(TokenTree::Ident(name)) = tokens.get(index) else {
            break;
        };
        let name = name.to_string();
        index += 1;
        match tokens.get(index) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(group.stream())));
                index += 1;
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_tuple_fields(group.stream())));
                index += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip an optional discriminant and the trailing comma.
        while index < tokens.len() {
            if matches!(&tokens[index], TokenTree::Punct(punct) if punct.as_char() == ',') {
                index += 1;
                break;
            }
            index += 1;
        }
    }
    variants
}

/// Emits the body serializing named fields as a JSON object. `accessor` is
/// the expression prefix (`self.` or empty for destructured bindings).
fn serialize_named_fields(fields: &[Field], accessor: &str) -> String {
    let mut body = String::from("out.push('{');\n");
    let mut first = true;
    for field in fields {
        if field.skipped {
            continue;
        }
        if !first {
            body.push_str("out.push(',');\n");
        }
        first = false;
        body.push_str(&format!(
            "out.push_str(\"\\\"{}\\\":\");\n\
             ::serde::Serialize::serialize_json(&{accessor}{}, out);\n",
            field.name, field.name
        ));
    }
    body.push_str("out.push('}');");
    body
}

/// Emits the body serializing positional fields: newtype → inner value,
/// otherwise a JSON array.
fn serialize_tuple_fields(count: usize, accessor: &str) -> String {
    match count {
        0 => "out.push_str(\"null\");".to_string(),
        1 => format!("::serde::Serialize::serialize_json(&{accessor}0, out);"),
        _ => {
            let mut body = String::from("out.push('[');\n");
            for index in 0..count {
                if index > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json(&{accessor}{index}, out);\n"
                ));
            }
            body.push_str("out.push(']');");
            body
        }
    }
}

fn serialize_enum(variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        match variant {
            Variant::Unit(name) => {
                arms.push_str(&format!(
                    "Self::{name} => out.push_str(\"\\\"{name}\\\"\"),\n"
                ));
            }
            Variant::Tuple(name, count) => {
                let bindings: Vec<String> = (0..*count).map(|i| format!("__f{i}")).collect();
                let body = serialize_tuple_fields_bound(&bindings);
                arms.push_str(&format!(
                    "Self::{name}({}) => {{\n\
                         out.push_str(\"{{\\\"{name}\\\":\");\n\
                         {body}\n\
                         out.push('}}');\n\
                     }}\n",
                    bindings.join(", ")
                ));
            }
            Variant::Struct(name, fields) => {
                let bindings: Vec<&str> = fields
                    .iter()
                    .filter(|field| !field.skipped)
                    .map(|field| field.name.as_str())
                    .collect();
                let pattern = if bindings.len() == fields.len() {
                    format!("Self::{name} {{ {} }}", bindings.join(", "))
                } else {
                    format!("Self::{name} {{ {}, .. }}", bindings.join(", "))
                };
                let inner = serialize_named_fields(fields, "");
                arms.push_str(&format!(
                    "{pattern} => {{\n\
                         out.push_str(\"{{\\\"{name}\\\":\");\n\
                         {inner}\n\
                         out.push('}}');\n\
                     }}\n"
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

/// Tuple-variant body over destructured bindings.
fn serialize_tuple_fields_bound(bindings: &[String]) -> String {
    match bindings.len() {
        0 => "out.push_str(\"null\");".to_string(),
        1 => format!("::serde::Serialize::serialize_json({}, out);", bindings[0]),
        _ => {
            let mut body = String::from("out.push('[');\n");
            for (index, binding) in bindings.iter().enumerate() {
                if index > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json({binding}, out);\n"
                ));
            }
            body.push_str("out.push(']');");
            body
        }
    }
}
