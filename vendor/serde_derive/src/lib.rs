//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The sibling `serde` shim implements its marker traits for every type via
//! blanket impls, so these derives only need to exist (and accept the
//! `#[serde(...)]` helper attribute) — they expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing; the blanket impl in
/// the `serde` shim already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing; the blanket impl
/// in the `serde` shim already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
