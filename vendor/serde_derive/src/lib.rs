//! `Serialize`/`Deserialize` derive macros for the offline `serde` shim.
//!
//! `Serialize` is a real derive now: it parses the item declaration with the
//! bare `proc_macro` API (the build environment has no `syn`/`quote`) and
//! emits an implementation of the shim's `serde::Serialize` trait that writes
//! compact JSON, matching serde_json's data model for the shapes this
//! workspace uses:
//!
//! * structs with named fields → objects (`#[serde(skip)]` fields omitted),
//! * newtype structs → the inner value, other tuple structs → arrays,
//! * unit enum variants → `"Variant"`,
//! * struct variants → `{"Variant":{...}}`, tuple variants →
//!   `{"Variant":[...]}` (newtype variants → `{"Variant":value}`).
//!
//! `Deserialize` is the mirror image: it emits an implementation of the
//! shim's `serde::Deserialize` decoding those same shapes out of a parsed
//! `serde::json::Value`. Unknown object keys are ignored; `#[serde(skip)]`
//! and missing `#[serde(default)]` fields come from `Default::default()`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's JSON-emitting `serde::Serialize` for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand_serialize(input)
        .parse()
        .expect("serde_derive shim produced invalid Rust")
}

/// Derives the shim's JSON-decoding `serde::Deserialize` for structs and
/// enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand_deserialize(input)
        .parse()
        .expect("serde_derive shim produced invalid Rust")
}

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skipped: bool,
    defaulted: bool,
}

/// One parsed enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

/// The shape of a parsed `struct` / `enum` item declaration.
enum ItemBody {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Parses the item declaration a derive macro receives: outer attributes,
/// visibility, `struct`/`enum` keyword, name, and the body shape.
fn parse_item(input: TokenStream) -> (String, ItemBody) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut index = 0;
    skip_attributes_and_visibility(&tokens, &mut index);

    let kind = match &tokens[index] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    index += 1;
    let name = match &tokens[index] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive shim: expected an item name, found {other}"),
    };
    index += 1;
    if matches!(&tokens.get(index), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (deriving {name})");
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(index) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                ItemBody::NamedStruct(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                ItemBody::TupleStruct(count_tuple_fields(group.stream()))
            }
            _ => ItemBody::UnitStruct,
        },
        "enum" => {
            let group = match tokens.get(index) {
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group,
                other => panic!("serde_derive shim: malformed enum body: {other:?}"),
            };
            ItemBody::Enum(parse_variants(group.stream()))
        }
        other => panic!("serde_derive shim: cannot derive serde traits for `{other}` items"),
    };
    (name, body)
}

fn expand_serialize(input: TokenStream) -> String {
    let (name, item) = parse_item(input);
    let body = match &item {
        ItemBody::NamedStruct(fields) => serialize_named_fields(fields, "self."),
        ItemBody::TupleStruct(count) => serialize_tuple_fields(*count, "self."),
        // Unit struct: serde_json renders it as null.
        ItemBody::UnitStruct => "out.push_str(\"null\");".to_string(),
        ItemBody::Enum(variants) => serialize_enum(variants),
    };

    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn expand_deserialize(input: TokenStream) -> String {
    let (name, item) = parse_item(input);
    let body = match &item {
        ItemBody::NamedStruct(fields) => deserialize_named_fields(fields, &name, "Self", "value"),
        ItemBody::TupleStruct(count) => deserialize_tuple_fields(*count, &name, "Self", "value"),
        // Unit struct: accept whatever Serialize wrote (`null`).
        ItemBody::UnitStruct => "let _ = value;\nOk(Self)".to_string(),
        ItemBody::Enum(variants) => deserialize_enum(variants, &name),
    };

    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize_json(\n\
                 value: &::serde::json::Value,\n\
             ) -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Advances past outer attributes (`#[...]`, including doc comments) and an
/// optional `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], index: &mut usize) {
    loop {
        match tokens.get(*index) {
            Some(TokenTree::Punct(punct)) if punct.as_char() == '#' => {
                *index += 2; // `#` plus the bracketed attribute group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *index += 1;
                if let Some(TokenTree::Group(group)) = tokens.get(*index) {
                    if group.delimiter() == Delimiter::Parenthesis {
                        *index += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// `(skip, default)` flags of an attribute group (the `[...]` contents) when
/// it is a `serde(...)` attribute.
fn serde_attribute_flags(group: &TokenStream) -> (bool, bool) {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(ident)), Some(TokenTree::Group(args)))
            if ident.to_string() == "serde" =>
        {
            let mut skip = false;
            let mut default = false;
            for token in args.stream() {
                if let TokenTree::Ident(arg) = &token {
                    match arg.to_string().as_str() {
                        "skip" => skip = true,
                        "default" => default = true,
                        _ => {}
                    }
                }
            }
            (skip, default)
        }
        _ => (false, false),
    }
}

/// Parses `name: Type, ...` sequences (struct bodies and struct variants).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        // Leading attributes: record `#[serde(skip)]` / `#[serde(default)]`,
        // ignore the rest.
        let mut skipped = false;
        let mut defaulted = false;
        loop {
            match tokens.get(index) {
                Some(TokenTree::Punct(punct)) if punct.as_char() == '#' => {
                    if let Some(TokenTree::Group(group)) = tokens.get(index + 1) {
                        let (skip, default) = serde_attribute_flags(&group.stream());
                        skipped |= skip;
                        defaulted |= default;
                    }
                    index += 2;
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    index += 1;
                    if let Some(TokenTree::Group(group)) = tokens.get(index) {
                        if group.delimiter() == Delimiter::Parenthesis {
                            index += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field_name)) = tokens.get(index) else {
            break;
        };
        fields.push(Field {
            name: field_name.to_string(),
            skipped,
            defaulted,
        });
        // Skip `: Type` up to the next top-level comma; commas inside angle
        // brackets (`HashMap<K, V>`) belong to the type.
        let mut angle_depth = 0i32;
        index += 1;
        while index < tokens.len() {
            match &tokens[index] {
                TokenTree::Punct(punct) if punct.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(punct) if punct.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(punct) if punct.as_char() == ',' && angle_depth == 0 => {
                    index += 1;
                    break;
                }
                _ => {}
            }
            index += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for token in stream {
        match &token {
            TokenTree::Punct(punct) if punct.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(punct) if punct.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(punct) if punct.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    fields += 1;
                    pending = false;
                }
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut index);
        let Some(TokenTree::Ident(name)) = tokens.get(index) else {
            break;
        };
        let name = name.to_string();
        index += 1;
        match tokens.get(index) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(group.stream())));
                index += 1;
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_tuple_fields(group.stream())));
                index += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip an optional discriminant and the trailing comma.
        while index < tokens.len() {
            if matches!(&tokens[index], TokenTree::Punct(punct) if punct.as_char() == ',') {
                index += 1;
                break;
            }
            index += 1;
        }
    }
    variants
}

/// Emits the body serializing named fields as a JSON object. `accessor` is
/// the expression prefix (`self.` or empty for destructured bindings).
fn serialize_named_fields(fields: &[Field], accessor: &str) -> String {
    let mut body = String::from("out.push('{');\n");
    let mut first = true;
    for field in fields {
        if field.skipped {
            continue;
        }
        if !first {
            body.push_str("out.push(',');\n");
        }
        first = false;
        body.push_str(&format!(
            "out.push_str(\"\\\"{}\\\":\");\n\
             ::serde::Serialize::serialize_json(&{accessor}{}, out);\n",
            field.name, field.name
        ));
    }
    body.push_str("out.push('}');");
    body
}

/// Emits the body serializing positional fields: newtype → inner value,
/// otherwise a JSON array.
fn serialize_tuple_fields(count: usize, accessor: &str) -> String {
    match count {
        0 => "out.push_str(\"null\");".to_string(),
        1 => format!("::serde::Serialize::serialize_json(&{accessor}0, out);"),
        _ => {
            let mut body = String::from("out.push('[');\n");
            for index in 0..count {
                if index > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json(&{accessor}{index}, out);\n"
                ));
            }
            body.push_str("out.push(']');");
            body
        }
    }
}

fn serialize_enum(variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        match variant {
            Variant::Unit(name) => {
                arms.push_str(&format!(
                    "Self::{name} => out.push_str(\"\\\"{name}\\\"\"),\n"
                ));
            }
            Variant::Tuple(name, count) => {
                let bindings: Vec<String> = (0..*count).map(|i| format!("__f{i}")).collect();
                let body = serialize_tuple_fields_bound(&bindings);
                arms.push_str(&format!(
                    "Self::{name}({}) => {{\n\
                         out.push_str(\"{{\\\"{name}\\\":\");\n\
                         {body}\n\
                         out.push('}}');\n\
                     }}\n",
                    bindings.join(", ")
                ));
            }
            Variant::Struct(name, fields) => {
                let bindings: Vec<&str> = fields
                    .iter()
                    .filter(|field| !field.skipped)
                    .map(|field| field.name.as_str())
                    .collect();
                let pattern = if bindings.len() == fields.len() {
                    format!("Self::{name} {{ {} }}", bindings.join(", "))
                } else {
                    format!("Self::{name} {{ {}, .. }}", bindings.join(", "))
                };
                let inner = serialize_named_fields(fields, "");
                arms.push_str(&format!(
                    "{pattern} => {{\n\
                         out.push_str(\"{{\\\"{name}\\\":\");\n\
                         {inner}\n\
                         out.push('}}');\n\
                     }}\n"
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

/// Emits a body decoding named fields from the object in `source` and
/// building `constructor { ... }`. Skipped fields and missing defaulted
/// fields come from `Default::default()`; other missing fields error.
fn deserialize_named_fields(
    fields: &[Field],
    type_name: &str,
    constructor: &str,
    source: &str,
) -> String {
    let mut body = format!(
        "if !{source}.is_object() {{\n\
             return Err(::serde::json::Error::expected(\"object\", \"{type_name}\"));\n\
         }}\n\
         Ok({constructor} {{\n"
    );
    for field in fields {
        let name = &field.name;
        let expression = if field.skipped {
            "::std::default::Default::default()".to_string()
        } else if field.defaulted {
            format!(
                "match {source}.get(\"{name}\") {{\n\
                     Some(__field) => ::serde::Deserialize::deserialize_json(__field)?,\n\
                     None => ::std::default::Default::default(),\n\
                 }}"
            )
        } else {
            format!(
                "::serde::Deserialize::deserialize_json({source}.get(\"{name}\").ok_or_else(\n\
                     || ::serde::json::Error::missing_field(\"{name}\", \"{type_name}\"),\n\
                 )?)?"
            )
        };
        body.push_str(&format!("{name}: {expression},\n"));
    }
    body.push_str("})");
    body
}

/// Emits a body decoding positional fields from `source` and building
/// `constructor(...)`: newtype from the value itself, otherwise from an
/// array of exactly `count` elements.
fn deserialize_tuple_fields(
    count: usize,
    type_name: &str,
    constructor: &str,
    source: &str,
) -> String {
    match count {
        0 => format!("let _ = {source};\nOk({constructor}())"),
        1 => format!("Ok({constructor}(::serde::Deserialize::deserialize_json({source})?))"),
        _ => {
            let mut body = format!(
                "let __items = {source}.as_array().ok_or_else(\n\
                     || ::serde::json::Error::expected(\"array\", \"{type_name}\"),\n\
                 )?;\n\
                 if __items.len() != {count} {{\n\
                     return Err(::serde::json::Error::new(::std::format!(\n\
                         \"expected {count} elements while decoding {type_name}, got {{}}\",\n\
                         __items.len(),\n\
                     )));\n\
                 }}\n\
                 Ok({constructor}(\n"
            );
            for index in 0..count {
                body.push_str(&format!(
                    "::serde::Deserialize::deserialize_json(&__items[{index}])?,\n"
                ));
            }
            body.push_str("))");
            body
        }
    }
}

/// Emits the enum decode body: unit variants from their tag string, payload
/// variants from an externally tagged single-key object.
fn deserialize_enum(variants: &[Variant], type_name: &str) -> String {
    let unit_names: Vec<&str> = variants
        .iter()
        .filter_map(|variant| match variant {
            Variant::Unit(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let payload_variants: Vec<&Variant> = variants
        .iter()
        .filter(|variant| !matches!(variant, Variant::Unit(_)))
        .collect();

    let mut unit_arms = String::new();
    for name in &unit_names {
        unit_arms.push_str(&format!("\"{name}\" => Ok(Self::{name}),\n"));
    }

    if payload_variants.is_empty() {
        return format!(
            "match value.as_str() {{\n\
                 Some(__tag) => match __tag {{\n\
                     {unit_arms}\
                     __other => Err(::serde::json::Error::unknown_variant(__other, \"{type_name}\")),\n\
                 }},\n\
                 None => Err(::serde::json::Error::expected(\"variant string\", \"{type_name}\")),\n\
             }}"
        );
    }

    let mut payload_arms = String::new();
    for variant in &payload_variants {
        match variant {
            Variant::Unit(_) => unreachable!("unit variants filtered above"),
            Variant::Tuple(name, count) => {
                let inner = deserialize_tuple_fields(
                    *count,
                    type_name,
                    &format!("Self::{name}"),
                    "__inner",
                );
                payload_arms.push_str(&format!("\"{name}\" => {{\n{inner}\n}}\n"));
            }
            Variant::Struct(name, fields) => {
                let inner = deserialize_named_fields(
                    fields,
                    type_name,
                    &format!("Self::{name}"),
                    "__inner",
                );
                payload_arms.push_str(&format!("\"{name}\" => {{\n{inner}\n}}\n"));
            }
        }
    }

    let unit_prelude = if unit_names.is_empty() {
        String::new()
    } else {
        format!(
            "if let Some(__tag) = value.as_str() {{\n\
                 return match __tag {{\n\
                     {unit_arms}\
                     __other => Err(::serde::json::Error::unknown_variant(__other, \"{type_name}\")),\n\
                 }};\n\
             }}\n"
        )
    };

    format!(
        "{unit_prelude}\
         let (__tag, __inner) = value.tagged().ok_or_else(\n\
             || ::serde::json::Error::expected(\"externally tagged variant\", \"{type_name}\"),\n\
         )?;\n\
         match __tag {{\n\
             {payload_arms}\
             __other => Err(::serde::json::Error::unknown_variant(__other, \"{type_name}\")),\n\
         }}"
    )
}

/// Tuple-variant body over destructured bindings.
fn serialize_tuple_fields_bound(bindings: &[String]) -> String {
    match bindings.len() {
        0 => "out.push_str(\"null\");".to_string(),
        1 => format!("::serde::Serialize::serialize_json({}, out);", bindings[0]),
        _ => {
            let mut body = String::from("out.push('[');\n");
            for (index, binding) in bindings.iter().enumerate() {
                if index > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json({binding}, out);\n"
                ));
            }
            body.push_str("out.push(']');");
            body
        }
    }
}
