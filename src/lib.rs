//! # febim-suite
//!
//! Umbrella crate of the FeBiM reproduction. It re-exports the public
//! surface of every member crate so the runnable examples and the
//! cross-crate integration tests can use one coherent namespace, and it
//! provides a [`prelude`] for quick starts.
//!
//! See the workspace `README.md` for the project overview, `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! results of every regenerated figure and table.
//!
//! # Example
//!
//! ```
//! use febim_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = iris_like(3)?;
//! let split = stratified_split(&dataset, 0.7, &mut seeded_rng(3))?;
//! let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
//! assert!(engine.evaluate(&split.test)?.accuracy > 0.85);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use febim_bayes as bayes;
pub use febim_circuit as circuit;
pub use febim_compare as compare;
pub use febim_core as core;
pub use febim_crossbar as crossbar;
pub use febim_data as data;
pub use febim_device as device;
pub use febim_quant as quant;

/// Commonly used items for examples and quick experiments.
///
/// The serving surface is re-exported here too — an engine becomes a
/// concurrent batch-serving pool in one call:
///
/// ```
/// use febim_suite::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = iris_like(11)?;
/// let split = stratified_split(&dataset, 0.7, &mut seeded_rng(11))?;
/// let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
/// let pool = ServingPool::replicate(&engine, 2, ServingConfig::febim_default())?;
/// let sample = split.test.sample(0).expect("sample").to_vec();
/// let outcome = pool.submit(sample)?.wait()?;
/// assert_eq!(outcome.prediction, engine.predict(split.test.sample(0).unwrap())?);
/// assert!(outcome.batch.reads >= 1);
/// let stats = pool.shutdown();
/// assert_eq!(stats.requests, 1);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use febim_bayes::{
        BayesianNetwork, CategoricalNaiveBayes, Evidence, GaussianNaiveBayes, Node,
    };
    pub use febim_compare::{ComparisonTable, FabricComparison};
    pub use febim_core::{
        epoch_accuracy, epoch_accuracy_with_backend, noise_campaign, performance_metrics,
        variation_sweep, variation_sweep_with_backend, BackendInfo, BackendKind, BatchTelemetry,
        CrossbarBackend, EngineConfig, FebimEngine, InferenceBackend, MetricsConfig, NoisePoint,
        NoiseScenario, PoolStats, RecalibrationPolicy, RecalibrationScheduler, ReplicaHealth,
        ScrubPolicy, ScrubReport, ScrubScheduler, ServeOutcome, ServingConfig, ServingError,
        ServingPool, SoftwareBackend, Ticket, TiledFabricBackend, WorkerReport,
    };
    pub use febim_crossbar::{FaultKind, FaultSchedule, ScheduledFault, ScrubOutcome, TileShape};
    pub use febim_data::rng::seeded_rng;
    pub use febim_data::split::{stratified_split, train_test_split};
    pub use febim_data::synthetic::{cancer_like, iris_like, wine_like};
    pub use febim_device::{
        NonIdealityStack, ReadDisturb, RetentionDrift, VariationModel, WireResistance,
    };
    pub use febim_quant::{QuantConfig, QuantizedGnbc};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let dataset = iris_like(1).expect("dataset");
        assert_eq!(dataset.n_samples(), 150);
        let _ = EngineConfig::febim_default();
        let _ = QuantConfig::febim_optimal();
        let _ = VariationModel::ideal();
        let _ = ComparisonTable::published();
    }
}
