//! Sequential vs concurrent batch-serving deployment comparison.
//!
//! The serving pool's pitch is throughput: N engine replicas answering
//! coalesced request batches should beat one engine answering one request
//! at a time, and the grouped reads should also price below the sequential
//! delay/energy baseline in the circuit model. This module assembles that
//! comparison — one [`ServingMeasurement`] row per (backend, replicas,
//! batch) configuration, aggregated into a [`ServingComparison`] table —
//! in the same spirit as the fabric deployment rows.

use serde::{Deserialize, Serialize};

use febim_core::{PoolStats, Table};

/// Measured telemetry of one serving configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMeasurement {
    /// Backend name (e.g. `tiled-fabric`).
    pub backend: String,
    /// Engine replicas (pool workers).
    pub replicas: usize,
    /// Batch-coalescing limit of the run.
    pub max_batch: usize,
    /// Requests served.
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Wall-clock nanoseconds per request of the sequential single-sample
    /// baseline (one engine, one scratch, one request at a time).
    pub sequential_ns_per_request: f64,
    /// Wall-clock nanoseconds per request of the grouped-read batched path
    /// (`infer_batch_into` in `max_batch`-sized groups on one engine — the
    /// per-replica service rate inside a pool worker).
    pub batched_ns_per_request: f64,
    /// Wall-clock nanoseconds per request through the serving pool
    /// (replicas, queue and coalescing included).
    pub serving_ns_per_request: f64,
    /// `sequential_ns_per_request / batched_ns_per_request` (> 1 means
    /// grouped reads out-serve sequential single-sample inference).
    pub batched_speedup: f64,
    /// `sequential_ns_per_request / serving_ns_per_request` (> 1 means the
    /// whole pool out-serves sequential inference; needs the cores to scale
    /// across).
    pub throughput_speedup: f64,
    /// Modeled amortized-over-sequential delay ratio of the grouped reads.
    pub amortized_delay_ratio: f64,
    /// Modeled amortized-over-sequential energy ratio of the grouped reads.
    pub amortized_energy_ratio: f64,
    /// Median nanoseconds a request waited in the submission rings before a
    /// worker picked it up.
    pub queue_wait_p50_ns: u64,
    /// 95th-percentile queue-wait nanoseconds.
    pub queue_wait_p95_ns: u64,
    /// 99th-percentile queue-wait nanoseconds — the tail the sharded rings
    /// exist to keep flat.
    pub queue_wait_p99_ns: u64,
    /// Median end-to-end nanoseconds from submission to batched-ticket
    /// completion.
    pub e2e_p50_ns: u64,
    /// 95th-percentile end-to-end nanoseconds.
    pub e2e_p95_ns: u64,
    /// 99th-percentile end-to-end nanoseconds.
    pub e2e_p99_ns: u64,
    /// Scrub passes that found defects during the run.
    #[serde(default)]
    pub scrubs: u64,
    /// Defective cells those passes detected.
    #[serde(default)]
    pub faults_detected: u64,
    /// Defective cells healed in place or via spare rows.
    #[serde(default)]
    pub faults_repaired: u64,
    /// Replica health transitions during the run.
    #[serde(default)]
    pub health_transitions: u64,
    /// Requests retried on a surviving replica after an inference failure.
    #[serde(default)]
    pub failovers: u64,
    /// Requests answered through the exact software fallback.
    #[serde(default)]
    pub fallback_served: u64,
    /// Replicas that ended the run quarantined.
    #[serde(default)]
    pub quarantined_workers: u64,
}

impl ServingMeasurement {
    /// Builds one row from a completed pool run and its measured timings.
    pub fn new(
        backend: impl Into<String>,
        replicas: usize,
        max_batch: usize,
        stats: &PoolStats,
        sequential_ns_per_request: f64,
        batched_ns_per_request: f64,
        serving_ns_per_request: f64,
    ) -> Self {
        Self {
            backend: backend.into(),
            replicas,
            max_batch,
            requests: stats.requests,
            batches: stats.batches,
            mean_batch_size: stats.mean_batch_size,
            sequential_ns_per_request,
            batched_ns_per_request,
            serving_ns_per_request,
            batched_speedup: sequential_ns_per_request / batched_ns_per_request,
            throughput_speedup: sequential_ns_per_request / serving_ns_per_request,
            amortized_delay_ratio: stats.delay_ratio(),
            amortized_energy_ratio: stats.energy_ratio(),
            queue_wait_p50_ns: stats.queue_wait.p50_ns(),
            queue_wait_p95_ns: stats.queue_wait.p95_ns(),
            queue_wait_p99_ns: stats.queue_wait.p99_ns(),
            e2e_p50_ns: stats.end_to_end.p50_ns(),
            e2e_p95_ns: stats.end_to_end.p95_ns(),
            e2e_p99_ns: stats.end_to_end.p99_ns(),
            scrubs: stats.scrubs,
            faults_detected: stats.faults_detected,
            faults_repaired: stats.faults_repaired,
            health_transitions: stats.health_transitions,
            failovers: stats.failovers,
            fallback_served: stats.fallback_served,
            quarantined_workers: stats.quarantined_workers,
        }
    }
}

/// A sweep of serving configurations over one request workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServingComparison {
    /// One row per measured (backend, replicas, batch) configuration.
    pub rows: Vec<ServingMeasurement>,
}

impl ServingComparison {
    /// An empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one measured configuration.
    pub fn push(&mut self, row: ServingMeasurement) {
        self.rows.push(row);
    }

    /// Best pool throughput speedup among rows of `backend` whose batch
    /// limit is at least `min_batch` (`None` when nothing matches).
    pub fn best_speedup(&self, backend: &str, min_batch: usize) -> Option<f64> {
        self.best_of(backend, min_batch, |row| row.throughput_speedup)
    }

    /// Best grouped-read (batched-path) speedup among rows of `backend`
    /// whose batch limit is at least `min_batch`.
    pub fn best_batched_speedup(&self, backend: &str, min_batch: usize) -> Option<f64> {
        self.best_of(backend, min_batch, |row| row.batched_speedup)
    }

    fn best_of(
        &self,
        backend: &str,
        min_batch: usize,
        metric: impl Fn(&ServingMeasurement) -> f64,
    ) -> Option<f64> {
        self.rows
            .iter()
            .filter(|row| row.backend == backend && row.max_batch >= min_batch)
            .map(metric)
            .fold(None, |best, speedup| {
                Some(best.map_or(speedup, |value: f64| value.max(speedup)))
            })
    }

    /// Renders the sweep as a report table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "serving_comparison",
            &[
                "backend",
                "replicas",
                "max_batch",
                "requests",
                "mean_batch",
                "sequential_ns",
                "batched_ns",
                "serving_ns",
                "batched_speedup",
                "pool_speedup",
                "delay_ratio",
                "energy_ratio",
                "wait_p50_ns",
                "wait_p99_ns",
                "e2e_p50_ns",
                "e2e_p99_ns",
                "scrubs",
                "faults_det",
                "faults_rep",
                "health_trans",
                "failovers",
                "fallback",
                "quarantined",
            ],
        );
        for row in &self.rows {
            table.push_row(&[
                row.backend.clone(),
                row.replicas.to_string(),
                row.max_batch.to_string(),
                row.requests.to_string(),
                format!("{:.2}", row.mean_batch_size),
                format!("{:.1}", row.sequential_ns_per_request),
                format!("{:.1}", row.batched_ns_per_request),
                format!("{:.1}", row.serving_ns_per_request),
                format!("{:.2}", row.batched_speedup),
                format!("{:.2}", row.throughput_speedup),
                format!("{:.4}", row.amortized_delay_ratio),
                format!("{:.4}", row.amortized_energy_ratio),
                row.queue_wait_p50_ns.to_string(),
                row.queue_wait_p99_ns.to_string(),
                row.e2e_p50_ns.to_string(),
                row.e2e_p99_ns.to_string(),
                row.scrubs.to_string(),
                row.faults_detected.to_string(),
                row.faults_repaired.to_string(),
                row.health_transitions.to_string(),
                row.failovers.to_string(),
                row.fallback_served.to_string(),
                row.quarantined_workers.to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_core::{EngineConfig, FebimEngine, ServingConfig, ServingPool};
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;

    #[test]
    fn rows_aggregate_pool_stats_and_render() {
        let dataset = iris_like(88).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(88)).unwrap();
        let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        let pool = ServingPool::replicate(&engine, 2, ServingConfig::febim_default()).unwrap();
        let samples: Vec<Vec<f64>> = (0..split.test.n_samples())
            .map(|index| split.test.sample(index).unwrap().to_vec())
            .collect();
        let answers = pool.serve(&samples);
        assert!(answers.iter().all(Result::is_ok));
        let stats = pool.shutdown();
        let row =
            ServingMeasurement::new("crossbar-single-array", 2, 8, &stats, 2000.0, 1000.0, 500.0);
        assert_eq!(row.requests, samples.len() as u64);
        assert!((row.throughput_speedup - 4.0).abs() < 1e-12);
        assert!((row.batched_speedup - 2.0).abs() < 1e-12);
        assert!(row.amortized_delay_ratio <= 1.0);
        assert!(row.amortized_energy_ratio <= 1.0);
        // The latency percentiles come straight from the pool's histograms:
        // ordered, and the end-to-end tail dominates the queue-wait tail
        // because completion happens after dispatch.
        assert!(row.queue_wait_p50_ns <= row.queue_wait_p95_ns);
        assert!(row.queue_wait_p95_ns <= row.queue_wait_p99_ns);
        assert!(row.e2e_p50_ns <= row.e2e_p95_ns);
        assert!(row.e2e_p95_ns <= row.e2e_p99_ns);
        assert!(row.e2e_p99_ns >= row.queue_wait_p99_ns);
        assert!(row.e2e_p50_ns > 0);
        let mut comparison = ServingComparison::new();
        comparison.push(row);
        assert_eq!(
            comparison.best_speedup("crossbar-single-array", 8),
            Some(4.0)
        );
        assert_eq!(
            comparison.best_batched_speedup("crossbar-single-array", 8),
            Some(2.0)
        );
        assert_eq!(comparison.best_speedup("crossbar-single-array", 9), None);
        assert_eq!(comparison.best_speedup("tiled-fabric", 1), None);
        let rendered = comparison.to_table().to_pretty();
        assert!(rendered.contains("crossbar-single-array"));
        assert!(rendered.contains("wait_p50_ns"));
        assert!(rendered.contains("e2e_p99_ns"));
        assert!(rendered.contains("quarantined"));
        assert!(rendered.contains("failovers"));
        let json = serde::json::to_string(&comparison);
        assert!(json.contains("\"throughput_speedup\""));
        assert!(json.contains("\"queue_wait_p99_ns\""));
        assert!(json.contains("\"e2e_p50_ns\""));
        assert!(json.contains("\"fallback_served\""));
        assert!(json.contains("\"health_transitions\""));
    }
}
