//! Monolithic-array vs. tiled-fabric deployment comparison.
//!
//! The paper's engine maps one model onto one crossbar; the tiled fabric
//! shards the same model across a grid of fixed-size tiles. Predictions are
//! bit-identical by construction, so the interesting comparison is the
//! deployment telemetry: per-read delay (tiles settle in parallel, the merge
//! bus adds a per-tile-column load), per-read energy (every tile row
//! re-drives its activated bitlines) and fabric utilization. This module
//! assembles that comparison from two [`EvaluationReport`]s and the
//! [`TilePlan`], in the same spirit as the Table 1 cross-technology rows.

use serde::{Deserialize, Serialize};

use febim_core::{EvaluationReport, Table};
use febim_crossbar::TilePlan;

/// Telemetry of one deployment (monolithic array or tiled fabric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricDeployment {
    /// Deployment label.
    pub name: String,
    /// Tile-grid rows (1 for a monolithic array).
    pub tile_rows: usize,
    /// Tile-grid columns (1 for a monolithic array).
    pub tile_cols: usize,
    /// Fraction of provisioned cells the model actually occupies.
    pub utilization: f64,
    /// Classification accuracy on the evaluation set.
    pub accuracy: f64,
    /// Mean per-inference delay in seconds.
    pub mean_delay_s: f64,
    /// Mean per-inference energy in joules.
    pub mean_energy_j: f64,
}

impl FabricDeployment {
    /// Deployment row of the paper's single-array engine (one tile, fully
    /// utilized by definition of its own layout).
    pub fn monolithic(report: &EvaluationReport) -> Self {
        Self {
            name: "monolithic array".to_string(),
            tile_rows: 1,
            tile_cols: 1,
            utilization: 1.0,
            accuracy: report.accuracy,
            mean_delay_s: report.mean_delay,
            mean_energy_j: report.mean_energy,
        }
    }

    /// Deployment row of a tiled fabric described by `plan`.
    pub fn tiled(report: &EvaluationReport, plan: &TilePlan) -> Self {
        Self {
            name: format!(
                "tiled fabric {}x{} ({}x{} tiles)",
                plan.row_tiles(),
                plan.col_tiles(),
                plan.shape().rows,
                plan.shape().columns,
            ),
            tile_rows: plan.row_tiles(),
            tile_cols: plan.col_tiles(),
            utilization: plan.utilization(),
            accuracy: report.accuracy,
            mean_delay_s: report.mean_delay,
            mean_energy_j: report.mean_energy,
        }
    }
}

/// Side-by-side comparison of the same model served monolithically and
/// through a tiled fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricComparison {
    /// The single-array deployment.
    pub monolithic: FabricDeployment,
    /// The tiled-fabric deployment.
    pub tiled: FabricDeployment,
}

impl FabricComparison {
    /// Builds the comparison from the two evaluation reports and the tile
    /// plan the fabric was deployed with.
    pub fn new(monolithic: &EvaluationReport, tiled: &EvaluationReport, plan: &TilePlan) -> Self {
        Self {
            monolithic: FabricDeployment::monolithic(monolithic),
            tiled: FabricDeployment::tiled(tiled, plan),
        }
    }

    /// Whether the two deployments decided every sample identically (they
    /// must: the fabric read path is bit-exact).
    pub fn accuracy_matches(&self) -> bool {
        self.monolithic.accuracy == self.tiled.accuracy
    }

    /// Tiled-over-monolithic mean delay ratio: the fabric settles its tiles
    /// in parallel but pays for every occupied bitline of the widest tile
    /// plus the partial-sum merge bus, so sparse reads (few activated
    /// columns) price above 1 while dense reads approach the parallel-tile
    /// win.
    pub fn delay_ratio(&self) -> f64 {
        self.tiled.mean_delay_s / self.monolithic.mean_delay_s
    }

    /// Tiled-over-monolithic mean energy ratio (> 1: row sharding re-drives
    /// activated bitlines once per tile row).
    pub fn energy_ratio(&self) -> f64 {
        self.tiled.mean_energy_j / self.monolithic.mean_energy_j
    }

    /// Renders the comparison as a two-row report table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "fabric_comparison",
            &[
                "deployment",
                "grid",
                "utilization",
                "accuracy",
                "mean_delay_s",
                "mean_energy_j",
            ],
        );
        for entry in [&self.monolithic, &self.tiled] {
            table.push_row(&[
                entry.name.clone(),
                format!("{}x{}", entry.tile_rows, entry.tile_cols),
                format!("{:.4}", entry.utilization),
                format!("{:.4}", entry.accuracy),
                format!("{:.3e}", entry.mean_delay_s),
                format!("{:.3e}", entry.mean_energy_j),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_core::{EngineConfig, FebimEngine};
    use febim_crossbar::TileShape;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;

    #[test]
    fn comparison_reports_identical_decisions_and_tiled_telemetry() {
        let dataset = iris_like(77).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(77)).unwrap();
        let config = EngineConfig::febim_default();
        let monolithic = FebimEngine::fit(&split.train, config.clone()).unwrap();
        let tiled =
            FebimEngine::fit_tiled(&split.train, config, TileShape::new(2, 24).unwrap()).unwrap();
        let comparison = FabricComparison::new(
            &monolithic.evaluate(&split.test).unwrap(),
            &tiled.evaluate(&split.test).unwrap(),
            tiled.tiled_program().plan(),
        );
        assert!(comparison.accuracy_matches());
        assert_eq!(comparison.tiled.tile_rows, 2);
        assert_eq!(comparison.tiled.tile_cols, 3);
        assert!(comparison.tiled.utilization > 0.0 && comparison.tiled.utilization <= 1.0);
        // Sharding is never free on this workload: the sparse iris reads
        // activate 4 of 64 columns, so the fabric pays for its occupied
        // bitlines and the merge bus (delay) and for per-tile-row drivers
        // (energy).
        assert!(comparison.delay_ratio() > 1.0 && comparison.delay_ratio().is_finite());
        assert!(comparison.energy_ratio() > 1.0 && comparison.energy_ratio().is_finite());
        let rendered = comparison.to_table().to_pretty();
        assert!(rendered.contains("tiled fabric"));
        // The comparison serializes for the fabric bench record.
        let json = serde::json::to_string(&comparison);
        assert!(json.contains("\"monolithic\""));
        assert!(json.contains("\"utilization\""));
    }
}
