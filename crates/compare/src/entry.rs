//! Per-technology cost-model entries for the Table 1 comparison.

use serde::{Deserialize, Serialize};

use febim_core::PerformanceMetrics;

/// How a technology stores the model probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceUsage {
    /// The device is used as a random number generator; probabilities are
    /// generated on demand rather than stored.
    RandomNumberGenerator,
    /// The device is used as memory holding the probabilities.
    Memory,
}

/// Cell configuration of the probability storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellConfiguration {
    /// Single-level cells.
    SingleLevel,
    /// Multi-level cells.
    MultiLevel,
}

/// One row of the Table 1 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyEntry {
    /// Reference label (e.g. `"MTJ RNG [13]"`).
    pub name: String,
    /// Underlying device technology.
    pub technology: String,
    /// How the device is used.
    pub device_usage: DeviceUsage,
    /// Cell configuration.
    pub cell_configuration: CellConfiguration,
    /// Clock cycles needed per inference (`None` when the source does not
    /// report a single number).
    pub clock_cycles_per_inference: Option<f64>,
    /// Storage density in Mb/mm² (`None` when probabilities are not stored).
    pub storage_density_mb_per_mm2: Option<f64>,
    /// Computing density in million operations per mm².
    pub computing_density_mo_per_mm2: Option<f64>,
    /// Computing efficiency in TOPS/W.
    pub efficiency_tops_per_watt: Option<f64>,
}

impl TechnologyEntry {
    /// The superparamagnetic MTJ random-number-generator implementation \[13\].
    pub fn mtj_rng() -> Self {
        Self {
            name: "MTJ RNG [13]".to_string(),
            technology: "MTJ".to_string(),
            device_usage: DeviceUsage::RandomNumberGenerator,
            cell_configuration: CellConfiguration::SingleLevel,
            clock_cycles_per_inference: Some(2000.0),
            storage_density_mb_per_mm2: None,
            computing_density_mo_per_mm2: Some(0.23),
            efficiency_tops_per_watt: Some(0.013),
        }
    }

    /// The two-dimensional memtransistor Bayesian-network implementation \[14\].
    pub fn memtransistor_rng() -> Self {
        Self {
            name: "Memtransistor RNG [14]".to_string(),
            technology: "Memtransistor".to_string(),
            device_usage: DeviceUsage::RandomNumberGenerator,
            cell_configuration: CellConfiguration::SingleLevel,
            clock_cycles_per_inference: Some(200.0),
            storage_density_mb_per_mm2: None,
            computing_density_mo_per_mm2: Some(0.033),
            efficiency_tops_per_watt: Some(0.0025),
        }
    }

    /// The memristor-based Bayesian machine \[16\] (the prior state of the art).
    ///
    /// The efficiency depends on the operation scheme (2.14–13.39 TOPS/W);
    /// the best-case figure is stored so that improvement ratios are
    /// conservative.
    pub fn memristor_bayesian_machine() -> Self {
        Self {
            name: "Memristor Bayesian machine [16]".to_string(),
            technology: "Memristor".to_string(),
            device_usage: DeviceUsage::Memory,
            cell_configuration: CellConfiguration::SingleLevel,
            clock_cycles_per_inference: Some(255.0),
            storage_density_mb_per_mm2: Some(2.47),
            computing_density_mo_per_mm2: Some(0.034),
            efficiency_tops_per_watt: Some(13.39),
        }
    }

    /// Builds the FeBiM entry from measured engine metrics.
    pub fn febim(metrics: &PerformanceMetrics) -> Self {
        Self {
            name: "FeBiM (this work)".to_string(),
            technology: "FeFET".to_string(),
            device_usage: DeviceUsage::Memory,
            cell_configuration: CellConfiguration::MultiLevel,
            clock_cycles_per_inference: Some(metrics.clock_cycles_per_inference),
            storage_density_mb_per_mm2: Some(metrics.storage_density_mb_per_mm2),
            computing_density_mo_per_mm2: Some(metrics.computing_density_mo_per_mm2),
            efficiency_tops_per_watt: Some(metrics.efficiency_tops_per_watt),
        }
    }

    /// The paper's published FeBiM numbers, useful for validating the
    /// reproduction without running the engine.
    pub fn febim_published() -> Self {
        Self {
            name: "FeBiM (published)".to_string(),
            technology: "FeFET".to_string(),
            device_usage: DeviceUsage::Memory,
            cell_configuration: CellConfiguration::MultiLevel,
            clock_cycles_per_inference: Some(1.0),
            storage_density_mb_per_mm2: Some(26.32),
            computing_density_mo_per_mm2: Some(0.69),
            efficiency_tops_per_watt: Some(581.40),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_entries_match_table_1() {
        let mtj = TechnologyEntry::mtj_rng();
        assert_eq!(mtj.device_usage, DeviceUsage::RandomNumberGenerator);
        assert_eq!(mtj.clock_cycles_per_inference, Some(2000.0));
        assert_eq!(mtj.storage_density_mb_per_mm2, None);

        let memtransistor = TechnologyEntry::memtransistor_rng();
        assert_eq!(memtransistor.efficiency_tops_per_watt, Some(0.0025));

        let memristor = TechnologyEntry::memristor_bayesian_machine();
        assert_eq!(memristor.device_usage, DeviceUsage::Memory);
        assert_eq!(memristor.storage_density_mb_per_mm2, Some(2.47));
        assert_eq!(memristor.efficiency_tops_per_watt, Some(13.39));
    }

    #[test]
    fn published_febim_entry_matches_the_abstract() {
        let febim = TechnologyEntry::febim_published();
        assert_eq!(febim.cell_configuration, CellConfiguration::MultiLevel);
        assert_eq!(febim.storage_density_mb_per_mm2, Some(26.32));
        assert_eq!(febim.efficiency_tops_per_watt, Some(581.40));
        assert_eq!(febim.clock_cycles_per_inference, Some(1.0));
    }
}
