//! # febim-compare
//!
//! Analytical cost models of prior NVM-based Bayesian inference hardware and
//! the assembly of the paper's Table 1 comparison: the MTJ RNG engine \[13\],
//! the memtransistor RNG engine \[14\], the memristor Bayesian machine \[16\] and
//! FeBiM itself (either from measured engine metrics or from the published
//! numbers).
//!
//! # Example
//!
//! ```
//! use febim_compare::ComparisonTable;
//!
//! let table = ComparisonTable::published();
//! let improvements = table.improvements();
//! // The paper reports a 10.7x storage density improvement over the
//! // state-of-the-art memristor Bayesian machine.
//! assert!(improvements.storage_density_vs_sota.unwrap() > 10.0);
//! ```

#![warn(missing_docs)]

pub mod entry;
pub mod fabric;
pub mod registry;
pub mod resilience;
pub mod serving;
pub mod table;

pub use entry::{CellConfiguration, DeviceUsage, TechnologyEntry};
pub use fabric::{FabricComparison, FabricDeployment};
pub use registry::{RegistryComparison, TenantMeasurement};
pub use resilience::{ResilienceComparison, ResilienceRow};
pub use serving::{ServingComparison, ServingMeasurement};
pub use table::{ComparisonTable, ImprovementSummary};

pub mod bayesian_machine;

pub use bayesian_machine::{BayesianMachine, BayesianMachineConfig, Lfsr, StochasticInference};
