//! Behavioural model of the memristor-based Bayesian machine of Harabi et
//! al. (Nature Electronics 2023) — the state-of-the-art baseline FeBiM is
//! compared against in Table 1.
//!
//! That design stores 8-bit quantized likelihoods in digital memristor
//! memory and computes posterior products with near-memory *stochastic
//! computing*: each probability is turned into a Bernoulli bitstream by
//! comparing an LFSR sample against the stored value, and the product of
//! probabilities becomes the AND of the bitstreams. The posterior estimate
//! therefore needs one clock cycle per bitstream sample (1–255 cycles
//! depending on the operating scheme), whereas FeBiM produces the exact
//! log-domain sum in a single cycle.
//!
//! The model here reproduces that behaviour functionally (LFSRs, bitstream
//! AND, majority read-out) so the accuracy-vs-cycles and cycles-per-inference
//! trade-off behind Table 1 can be measured rather than quoted.

use serde::{Deserialize, Serialize};

use febim_bayes::{argmax, GaussianNaiveBayes};
use febim_data::Dataset;
use febim_quant::{FeatureDiscretizer, QuantError};

/// 8-bit Galois linear-feedback shift register (maximal length, period 255).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfsr {
    state: u8,
}

impl Lfsr {
    /// Creates an LFSR from a non-zero seed (a zero seed is mapped to 1, the
    /// all-zero state being the single lock-up state of a Galois LFSR).
    pub fn new(seed: u8) -> Self {
        Self {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Advances the register and returns the new 8-bit state.
    pub fn next_sample(&mut self) -> u8 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            // Taps for the maximal-length polynomial x^8 + x^6 + x^5 + x^4 + 1.
            self.state ^= 0xB8;
        }
        self.state
    }
}

/// Configuration of the stochastic-computing Bayesian machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BayesianMachineConfig {
    /// Feature quantization precision in bits (the published design uses
    /// 8-bit quantized likelihoods addressed by discretized observations).
    pub feature_bits: u32,
    /// Bitstream length, i.e. clock cycles per inference (1–255).
    pub cycles_per_inference: u16,
    /// Energy per clock cycle and per likelihood column, in joules. The
    /// published machine dissipates on the order of a picojoule per full
    /// inference at 255 cycles; the default reproduces that order.
    pub energy_per_cycle_per_column: f64,
}

impl BayesianMachineConfig {
    /// The maximum-accuracy operating scheme (255-cycle bitstreams).
    pub fn full_precision() -> Self {
        Self {
            feature_bits: 4,
            cycles_per_inference: 255,
            energy_per_cycle_per_column: 1.0e-15,
        }
    }

    /// A fast, lower-accuracy scheme with short bitstreams.
    pub fn fast(cycles: u16) -> Self {
        Self {
            cycles_per_inference: cycles.clamp(1, 255),
            ..Self::full_precision()
        }
    }
}

impl Default for BayesianMachineConfig {
    fn default() -> Self {
        Self::full_precision()
    }
}

/// Result of one stochastic inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticInference {
    /// Predicted class.
    pub prediction: usize,
    /// Number of asserted cycles counted for each class (the posterior
    /// estimate numerators).
    pub counts: Vec<u32>,
    /// Clock cycles spent.
    pub cycles: u16,
    /// Energy estimate for this inference, in joules.
    pub energy: f64,
}

/// Behavioural stochastic-computing Bayesian machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianMachine {
    config: BayesianMachineConfig,
    discretizer: FeatureDiscretizer,
    /// `likelihood_p255[class][feature][bin]`: probability scaled to 0–255.
    likelihood_p255: Vec<Vec<Vec<u8>>>,
    /// `prior_p255[class]`.
    prior_p255: Vec<u8>,
    n_classes: usize,
    n_features: usize,
}

impl BayesianMachine {
    /// Builds the machine from a trained GNBC, mirroring how its likelihood
    /// memory would be programmed: per-column probabilities are normalized to
    /// the column maximum and stored with 8-bit precision.
    ///
    /// # Errors
    ///
    /// Propagates discretizer errors.
    pub fn from_gnbc(
        model: &GaussianNaiveBayes,
        train_data: &Dataset,
        config: BayesianMachineConfig,
    ) -> Result<Self, QuantError> {
        let discretizer = FeatureDiscretizer::fit(train_data, config.feature_bits)?;
        let n_classes = model.n_classes();
        let n_features = model.n_features();
        let bins = discretizer.bins();
        let mut likelihood_p255 = vec![vec![vec![0u8; bins]; n_features]; n_classes];
        // Columns are naturally (feature, bin)-major while the table is
        // class-major, so the write below scatters across the outer axis.
        #[allow(clippy::needless_range_loop)]
        for feature in 0..n_features {
            let width = discretizer.bin_width(feature)?;
            for bin in 0..bins {
                let center = discretizer.bin_center(feature, bin)?;
                let raw: Vec<f64> = (0..n_classes)
                    .map(|class| {
                        let log_pdf = model
                            .feature_log_likelihood(class, feature, center)
                            .expect("validated indices");
                        (log_pdf.exp() * width.max(f64::MIN_POSITIVE)).min(1.0)
                    })
                    .collect();
                let max = raw.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
                for (class, &p) in raw.iter().enumerate() {
                    let scaled = ((p / max) * 255.0).round().clamp(1.0, 255.0);
                    likelihood_p255[class][feature][bin] = scaled as u8;
                }
            }
        }
        let prior_max = model
            .classes()
            .iter()
            .map(|c| c.prior)
            .fold(f64::MIN_POSITIVE, f64::max);
        let prior_p255 = model
            .classes()
            .iter()
            .map(|c| ((c.prior / prior_max) * 255.0).round().clamp(1.0, 255.0) as u8)
            .collect();
        Ok(Self {
            config,
            discretizer,
            likelihood_p255,
            prior_p255,
            n_classes,
            n_features,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &BayesianMachineConfig {
        &self.config
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Clock cycles per inference (the Table 1 "clk./inf." column).
    pub fn cycles_per_inference(&self) -> u16 {
        self.config.cycles_per_inference
    }

    /// Runs one stochastic inference for a continuous sample.
    ///
    /// Each (feature, class) pair owns an independent LFSR; at every cycle a
    /// class's bit is the AND over the prior bit and all feature bits, and
    /// the per-class counters accumulate the asserted cycles. The class with
    /// the highest count wins.
    ///
    /// # Errors
    ///
    /// Propagates discretizer errors for malformed samples.
    pub fn infer(&self, sample: &[f64]) -> Result<StochasticInference, QuantError> {
        let bins = self.discretizer.discretize_sample(sample)?;
        let cycles = self.config.cycles_per_inference.max(1);
        let mut counts = vec![0u32; self.n_classes];
        for (class, count) in counts.iter_mut().enumerate() {
            // Deterministic but decorrelated seeds per class/feature pair.
            let mut prior_lfsr = Lfsr::new((class as u8).wrapping_mul(37).wrapping_add(11));
            let mut feature_lfsrs: Vec<Lfsr> = (0..self.n_features)
                .map(|feature| {
                    Lfsr::new(
                        (class as u8)
                            .wrapping_mul(53)
                            .wrapping_add((feature as u8).wrapping_mul(101))
                            .wrapping_add(29),
                    )
                })
                .collect();
            for _ in 0..cycles {
                let mut bit = prior_lfsr.next_sample() < self.prior_p255[class];
                for (feature, lfsr) in feature_lfsrs.iter_mut().enumerate() {
                    let threshold = self.likelihood_p255[class][feature][bins[feature]];
                    bit &= lfsr.next_sample() < threshold;
                }
                if bit {
                    *count += 1;
                }
            }
        }
        let prediction = argmax(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>())
            .expect("at least one class");
        let columns = self.n_features + 1;
        let energy = self.config.energy_per_cycle_per_column * columns as f64 * f64::from(cycles);
        Ok(StochasticInference {
            prediction,
            counts,
            cycles,
            energy,
        })
    }

    /// Classification accuracy on a labelled dataset.
    ///
    /// # Errors
    ///
    /// Propagates per-sample inference errors.
    pub fn score(&self, dataset: &Dataset) -> Result<f64, QuantError> {
        let mut correct = 0usize;
        for (sample, label) in dataset.iter() {
            if self.infer(sample)?.prediction == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / dataset.n_samples() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;

    fn trained() -> (GaussianNaiveBayes, Dataset, Dataset) {
        let dataset = iris_like(90).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(90)).unwrap();
        let model = GaussianNaiveBayes::fit(&split.train).unwrap();
        (model, split.train, split.test)
    }

    #[test]
    fn lfsr_has_maximal_period() {
        let mut lfsr = Lfsr::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..255 {
            assert!(seen.insert(lfsr.next_sample()));
        }
        // After 255 steps the sequence repeats.
        let mut repeat = Lfsr::new(1);
        let first: Vec<u8> = (0..10).map(|_| repeat.next_sample()).collect();
        for _ in 10..255 {
            repeat.next_sample();
        }
        let again: Vec<u8> = (0..10).map(|_| repeat.next_sample()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut lfsr = Lfsr::new(0);
        assert_ne!(lfsr.next_sample(), 0u8.wrapping_sub(1));
        // The register never locks up at zero over a full period.
        let mut any_zero = false;
        for _ in 0..255 {
            any_zero |= lfsr.next_sample() == 0;
        }
        assert!(!any_zero);
    }

    #[test]
    fn bitstream_frequency_tracks_the_stored_probability() {
        // Comparing the LFSR stream against a threshold yields a bitstream
        // whose duty cycle approximates the stored probability.
        for threshold in [32u8, 128, 224] {
            let mut lfsr = Lfsr::new(77);
            let ones = (0..255).filter(|_| lfsr.next_sample() < threshold).count();
            let duty = ones as f64 / 255.0;
            let expected = f64::from(threshold) / 255.0;
            assert!(
                (duty - expected).abs() < 0.02,
                "threshold {threshold}: duty {duty} expected {expected}"
            );
        }
    }

    #[test]
    fn machine_matches_gnbc_accuracy_at_full_bitstream_length() {
        let (model, train, test) = trained();
        let machine =
            BayesianMachine::from_gnbc(&model, &train, BayesianMachineConfig::full_precision())
                .unwrap();
        let software = model.score(&test).unwrap();
        let stochastic = machine.score(&test).unwrap();
        assert!(
            software - stochastic < 0.1,
            "software {software} vs stochastic {stochastic}"
        );
        assert_eq!(machine.cycles_per_inference(), 255);
    }

    #[test]
    fn short_bitstreams_lose_accuracy() {
        let (model, train, test) = trained();
        let full =
            BayesianMachine::from_gnbc(&model, &train, BayesianMachineConfig::full_precision())
                .unwrap()
                .score(&test)
                .unwrap();
        let short = BayesianMachine::from_gnbc(&model, &train, BayesianMachineConfig::fast(4))
            .unwrap()
            .score(&test)
            .unwrap();
        assert!(
            full >= short - 0.02,
            "255-cycle accuracy {full} vs 4-cycle accuracy {short}"
        );
    }

    #[test]
    fn inference_reports_cycles_and_energy() {
        let (model, train, test) = trained();
        let machine =
            BayesianMachine::from_gnbc(&model, &train, BayesianMachineConfig::fast(64)).unwrap();
        let outcome = machine.infer(test.sample(0).unwrap()).unwrap();
        assert_eq!(outcome.cycles, 64);
        assert_eq!(outcome.counts.len(), 3);
        assert!(outcome.energy > 0.0);
        // Many clock cycles per inference versus FeBiM's single cycle.
        assert!(machine.cycles_per_inference() > 1);
    }

    #[test]
    fn malformed_samples_rejected() {
        let (model, train, _) = trained();
        let machine =
            BayesianMachine::from_gnbc(&model, &train, BayesianMachineConfig::default()).unwrap();
        assert!(machine.infer(&[1.0]).is_err());
    }

    #[test]
    fn clamped_cycle_count() {
        let config = BayesianMachineConfig::fast(0);
        assert_eq!(config.cycles_per_inference, 1);
        let config = BayesianMachineConfig::fast(900);
        assert_eq!(config.cycles_per_inference, 255);
    }
}
