//! Assembly of the full Table 1 comparison and the headline improvement
//! ratios.

use serde::{Deserialize, Serialize};

use febim_core::PerformanceMetrics;

use crate::entry::TechnologyEntry;

/// The complete cross-technology comparison (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonTable {
    /// All rows, prior work first and FeBiM last.
    pub entries: Vec<TechnologyEntry>,
}

impl ComparisonTable {
    /// Builds the comparison with the FeBiM row derived from measured engine
    /// metrics.
    pub fn from_metrics(metrics: &PerformanceMetrics) -> Self {
        Self {
            entries: vec![
                TechnologyEntry::mtj_rng(),
                TechnologyEntry::memtransistor_rng(),
                TechnologyEntry::memristor_bayesian_machine(),
                TechnologyEntry::febim(metrics),
            ],
        }
    }

    /// Builds the comparison with the paper's published FeBiM numbers.
    pub fn published() -> Self {
        Self {
            entries: vec![
                TechnologyEntry::mtj_rng(),
                TechnologyEntry::memtransistor_rng(),
                TechnologyEntry::memristor_bayesian_machine(),
                TechnologyEntry::febim_published(),
            ],
        }
    }

    /// The FeBiM row (always the last entry).
    pub fn febim(&self) -> &TechnologyEntry {
        self.entries.last().expect("table always has entries")
    }

    /// The memristor Bayesian machine row (the state-of-the-art baseline the
    /// paper compares against).
    pub fn state_of_the_art(&self) -> &TechnologyEntry {
        &self.entries[2]
    }

    /// Headline improvement ratios of FeBiM over the state-of-the-art
    /// memristor Bayesian machine and the best RNG-based implementation.
    pub fn improvements(&self) -> ImprovementSummary {
        let febim = self.febim();
        let sota = self.state_of_the_art();
        let best_rng_computing_density = self.entries[..2]
            .iter()
            .filter_map(|e| e.computing_density_mo_per_mm2)
            .fold(f64::NEG_INFINITY, f64::max);
        ImprovementSummary {
            storage_density_vs_sota: ratio(
                febim.storage_density_mb_per_mm2,
                sota.storage_density_mb_per_mm2,
            ),
            efficiency_vs_sota: ratio(
                febim.efficiency_tops_per_watt,
                sota.efficiency_tops_per_watt,
            ),
            computing_density_vs_rng: ratio(
                febim.computing_density_mo_per_mm2,
                Some(best_rng_computing_density),
            ),
        }
    }
}

fn ratio(numerator: Option<f64>, denominator: Option<f64>) -> Option<f64> {
    match (numerator, denominator) {
        (Some(n), Some(d)) if d > 0.0 => Some(n / d),
        _ => None,
    }
}

/// The paper's headline improvement claims derived from the table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprovementSummary {
    /// Storage-density improvement over the memristor Bayesian machine
    /// (paper: 10.7×).
    pub storage_density_vs_sota: Option<f64>,
    /// Efficiency improvement over the memristor Bayesian machine
    /// (paper: 43.4×).
    pub efficiency_vs_sota: Option<f64>,
    /// Computing-density improvement over the best RNG-based implementation
    /// (paper: more than 3.0×).
    pub computing_density_vs_rng: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_table_reproduces_the_headline_ratios() {
        let table = ComparisonTable::published();
        assert_eq!(table.entries.len(), 4);
        let improvements = table.improvements();
        let density = improvements.storage_density_vs_sota.unwrap();
        let efficiency = improvements.efficiency_vs_sota.unwrap();
        let computing = improvements.computing_density_vs_rng.unwrap();
        // Paper: 10.7× storage density, 43.4× efficiency, > 3.0× computing
        // density.
        assert!((density - 10.7).abs() < 0.2, "density ratio {density}");
        assert!(
            (efficiency - 43.4).abs() < 0.5,
            "efficiency ratio {efficiency}"
        );
        assert!(computing > 2.9, "computing ratio {computing}");
    }

    #[test]
    fn febim_row_is_last_and_sota_is_memristor() {
        let table = ComparisonTable::published();
        assert!(table.febim().name.contains("FeBiM"));
        assert!(table.state_of_the_art().name.contains("Memristor"));
    }

    #[test]
    fn ratio_handles_missing_values() {
        assert_eq!(ratio(None, Some(1.0)), None);
        assert_eq!(ratio(Some(1.0), None), None);
        assert_eq!(ratio(Some(1.0), Some(0.0)), None);
        assert_eq!(ratio(Some(4.0), Some(2.0)), Some(2.0));
    }
}
