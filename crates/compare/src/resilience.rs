//! Drift-resilience comparison: accuracy retention with and without online
//! recalibration.
//!
//! The noise campaign (`febim_core::noise_campaign`) measures, per array
//! scale × non-ideality severity, the accuracy of a fresh array, the same
//! array after ageing, and after one recalibration pass. This module turns
//! those points into a comparison table in the spirit of Table 1: one
//! [`ResilienceRow`] per campaign cell, with the retention ratios and the
//! refresh energy amortized over the epochs, aggregated into a
//! [`ResilienceComparison`].

use serde::{Deserialize, Serialize};

use febim_core::{NoisePoint, Table};

/// One (array scale × severity) row of the drift-resilience comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Severity label of the scenario.
    pub label: String,
    /// Evidence columns of the programmed array (the scale axis).
    pub columns: usize,
    /// Ticks the array aged before the aged evaluation.
    pub age_ticks: u64,
    /// Mean accuracy of the freshly programmed array.
    pub fresh_accuracy: f64,
    /// Mean accuracy after ageing, before any refresh.
    pub aged_accuracy: f64,
    /// Mean accuracy after the recalibration pass.
    pub recovered_accuracy: f64,
    /// `aged / fresh` — what an uncalibrated deployment keeps.
    pub retention_without_refresh: f64,
    /// `recovered / fresh` — what the recalibrated deployment keeps.
    pub retention_with_refresh: f64,
    /// Cells reprogrammed by the recalibration passes, over all epochs.
    pub cells_refreshed: u64,
    /// Program pulses spent by the recalibration passes, over all epochs.
    pub refresh_pulses: u64,
    /// Refresh energy in joules, over all epochs.
    pub refresh_energy_j: f64,
}

impl ResilienceRow {
    /// Builds one row from a noise-campaign point.
    pub fn from_point(point: &NoisePoint) -> Self {
        let fresh = point.fresh.mean;
        let ratio = |value: f64| if fresh > 0.0 { value / fresh } else { 0.0 };
        Self {
            label: point.label.clone(),
            columns: point.columns,
            age_ticks: point.age_ticks,
            fresh_accuracy: fresh,
            aged_accuracy: point.aged.mean,
            recovered_accuracy: point.recovered.mean,
            retention_without_refresh: ratio(point.aged.mean),
            retention_with_refresh: ratio(point.recovered.mean),
            cells_refreshed: point.refresh.cells_refreshed,
            refresh_pulses: point.refresh.pulses_applied,
            refresh_energy_j: point.refresh.energy_joules,
        }
    }
}

/// The assembled drift-resilience comparison.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResilienceComparison {
    /// One row per (array scale × severity) campaign cell.
    pub rows: Vec<ResilienceRow>,
}

impl ResilienceComparison {
    /// Builds the comparison from the points of a noise campaign.
    pub fn from_points(points: &[NoisePoint]) -> Self {
        Self {
            rows: points.iter().map(ResilienceRow::from_point).collect(),
        }
    }

    /// Worst accuracy retention across the rows without any refresh
    /// (`None` when the comparison is empty).
    pub fn worst_retention_without_refresh(&self) -> Option<f64> {
        self.rows
            .iter()
            .map(|row| row.retention_without_refresh)
            .fold(None, |worst, value| {
                Some(worst.map_or(value, |w: f64| w.min(value)))
            })
    }

    /// Worst accuracy retention across the rows with recalibration.
    pub fn worst_retention_with_refresh(&self) -> Option<f64> {
        self.rows
            .iter()
            .map(|row| row.retention_with_refresh)
            .fold(None, |worst, value| {
                Some(worst.map_or(value, |w: f64| w.min(value)))
            })
    }

    /// Total refresh energy across the rows, in joules.
    pub fn total_refresh_energy_j(&self) -> f64 {
        self.rows.iter().map(|row| row.refresh_energy_j).sum()
    }

    /// Renders the comparison as a report table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "drift_resilience",
            &[
                "scenario",
                "columns",
                "age_ticks",
                "fresh",
                "aged",
                "recovered",
                "retention_aged",
                "retention_refreshed",
                "cells_refreshed",
                "refresh_pulses",
                "refresh_energy_j",
            ],
        );
        for row in &self.rows {
            table.push_row(&[
                row.label.clone(),
                row.columns.to_string(),
                row.age_ticks.to_string(),
                format!("{:.4}", row.fresh_accuracy),
                format!("{:.4}", row.aged_accuracy),
                format!("{:.4}", row.recovered_accuracy),
                format!("{:.4}", row.retention_without_refresh),
                format!("{:.4}", row.retention_with_refresh),
                row.cells_refreshed.to_string(),
                row.refresh_pulses.to_string(),
                format!("{:.3e}", row.refresh_energy_j),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_core::{noise_campaign, EngineConfig, NoiseScenario};
    use febim_data::synthetic::iris_like;
    use febim_device::{NonIdealityStack, ReadDisturb, RetentionDrift};
    use febim_quant::QuantConfig;

    #[test]
    fn resilience_rows_track_the_noise_campaign() {
        let dataset = iris_like(90).unwrap();
        let config = EngineConfig::febim_default();
        let scenarios = [
            NoiseScenario::new("ideal", NonIdealityStack::ideal(), 50_000),
            NoiseScenario::new(
                "drift+disturb",
                NonIdealityStack::ideal()
                    .with_drift(RetentionDrift::new(0.05, 100))
                    .with_disturb(ReadDisturb::new(64, 0.002)),
                50_000,
            ),
        ];
        let points = noise_campaign(
            &dataset,
            &config,
            &[QuantConfig::febim_optimal()],
            &scenarios,
            1e-6,
            0.7,
            2,
            90,
        )
        .unwrap();
        let comparison = ResilienceComparison::from_points(&points);
        assert_eq!(comparison.rows.len(), 2);
        let ideal = &comparison.rows[0];
        let noisy = &comparison.rows[1];
        // An ideal array keeps everything, refresh or not.
        assert_eq!(ideal.retention_without_refresh, 1.0);
        assert_eq!(ideal.retention_with_refresh, 1.0);
        assert_eq!(ideal.refresh_pulses, 0);
        // Recalibration restores the drifted array to its fresh accuracy
        // exactly (σ_VTH = 0), and it costs real refresh work.
        assert_eq!(noisy.retention_with_refresh, 1.0);
        assert!(noisy.cells_refreshed > 0);
        assert!(noisy.refresh_energy_j > 0.0);
        assert_eq!(comparison.worst_retention_with_refresh(), Some(1.0));
        assert!(comparison.worst_retention_without_refresh().unwrap() <= 1.0);
        assert!(comparison.total_refresh_energy_j() > 0.0);
        let rendered = comparison.to_table().to_pretty();
        assert!(rendered.contains("drift+disturb"));
        assert!(rendered.contains("retention_refreshed"));
        let json = serde::json::to_string(&comparison);
        assert!(json.contains("\"retention_with_refresh\""));
    }

    #[test]
    fn empty_comparison_has_no_worst_case() {
        let comparison = ResilienceComparison::default();
        assert_eq!(comparison.worst_retention_without_refresh(), None);
        assert_eq!(comparison.worst_retention_with_refresh(), None);
        assert_eq!(comparison.total_refresh_energy_j(), 0.0);
    }
}
