//! Multi-tenant registry deployment comparison.
//!
//! The model registry's pitch is consolidation: several tenants sharing one
//! bank fleet should serve each model bit-identically to a dedicated
//! single-tenant engine, while the hot-swap reprogramming that makes the
//! sharing possible stays an explicitly priced, bounded cost. This module
//! assembles that comparison — one [`TenantMeasurement`] row per tenant,
//! aggregated with the fleet's swap telemetry into a
//! [`RegistryComparison`] table — in the same spirit as the serving rows.

use serde::{Deserialize, Serialize};

use febim_core::Table;

/// Measured telemetry of one tenant served through the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMeasurement {
    /// Tenant model id.
    pub model: u64,
    /// Tiles the tenant's compiled program occupies on its bank.
    pub tiles: usize,
    /// Requests served against this tenant.
    pub requests: u64,
    /// Wall-clock nanoseconds per request of the tenant's dedicated
    /// single-tenant engine (one engine, one scratch, one request at a
    /// time) — the consolidation baseline.
    pub dedicated_ns_per_request: f64,
    /// Wall-clock nanoseconds per request through the shared registry
    /// (routing, queueing and ticket completion included).
    pub registry_ns_per_request: f64,
    /// `registry_ns_per_request / dedicated_ns_per_request` — the price of
    /// sharing the fleet instead of owning an engine.
    pub overhead_ratio: f64,
    /// Whether every registry answer matched the dedicated engine
    /// bit-for-bit (prediction, tie-break, delay and energy).
    pub bit_identical: bool,
}

/// A tenant-mix sweep over one registry deployment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistryComparison {
    /// One row per tenant.
    pub rows: Vec<TenantMeasurement>,
    /// Hot swaps (installs, evictions and fault-ins) the fleet ran.
    pub swaps: u64,
    /// Programming/erase pulses those swaps spent on the fabric.
    pub swap_pulses: u64,
    /// Energy (J) those pulse trains cost, priced through the Preisach
    /// programmer.
    pub swap_energy_j: f64,
}

impl RegistryComparison {
    /// An empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one tenant's row.
    pub fn push(&mut self, row: TenantMeasurement) {
        self.rows.push(row);
    }

    /// `true` when every tenant row answered bit-identically to its
    /// dedicated engine.
    pub fn all_bit_identical(&self) -> bool {
        self.rows.iter().all(|row| row.bit_identical)
    }

    /// Smallest registry ns/request among the tenant rows (`None` when no
    /// rows were measured).
    pub fn best_registry_ns(&self) -> Option<f64> {
        self.rows
            .iter()
            .map(|row| row.registry_ns_per_request)
            .fold(None, |best, ns| Some(best.map_or(ns, |b: f64| b.min(ns))))
    }

    /// Renders the sweep as a report table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "registry_comparison",
            &[
                "model",
                "tiles",
                "requests",
                "dedicated_ns",
                "registry_ns",
                "overhead",
                "bit_identical",
            ],
        );
        for row in &self.rows {
            table.push_row(&[
                row.model.to_string(),
                row.tiles.to_string(),
                row.requests.to_string(),
                format!("{:.1}", row.dedicated_ns_per_request),
                format!("{:.1}", row.registry_ns_per_request),
                format!("{:.2}", row.overhead_ratio),
                row.bit_identical.to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_aggregate_and_render() {
        let mut comparison = RegistryComparison::new();
        comparison.push(TenantMeasurement {
            model: 11,
            tiles: 6,
            requests: 32,
            dedicated_ns_per_request: 100.0,
            registry_ns_per_request: 400.0,
            overhead_ratio: 4.0,
            bit_identical: true,
        });
        comparison.push(TenantMeasurement {
            model: 22,
            tiles: 6,
            requests: 32,
            dedicated_ns_per_request: 120.0,
            registry_ns_per_request: 360.0,
            overhead_ratio: 3.0,
            bit_identical: true,
        });
        comparison.swaps = 3;
        comparison.swap_pulses = 420;
        comparison.swap_energy_j = 1.5e-9;
        assert!(comparison.all_bit_identical());
        assert_eq!(comparison.best_registry_ns(), Some(360.0));
        let rendered = comparison.to_table().to_pretty();
        assert!(rendered.contains("registry_comparison"));
        assert!(rendered.contains("bit_identical"));
        assert!(rendered.contains("22"));
        let json = serde::json::to_string(&comparison);
        assert!(json.contains("\"swap_pulses\""));
        assert!(json.contains("\"overhead_ratio\""));
        comparison.rows[1].bit_identical = false;
        assert!(!comparison.all_bit_identical());
        assert_eq!(RegistryComparison::new().best_registry_ns(), None);
    }
}
