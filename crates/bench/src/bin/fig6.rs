//! Regenerates Fig. 6: inference delay and energy of the crossbar plus
//! sensing module as the array geometry grows (2 rows with 2–256 columns,
//! and 2–32 rows with 32 columns), with every bitline activated.

use febim_bench::{emit, eng};
use febim_circuit::SensingChain;
use febim_core::{column_sweep, figure6_columns, figure6_rows, row_sweep, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chain = SensingChain::febim_calibrated();

    // Fig. 6(a)/(b): 2 rows, growing column count.
    let columns = figure6_columns();
    let column_points = column_sweep(2, &columns, &chain)?;
    let mut ab = Table::new(
        "fig6ab_delay_energy_vs_columns",
        &[
            "columns",
            "delay_s",
            "energy_array_j",
            "energy_sensing_j",
            "energy_total_j",
        ],
    );
    for point in &column_points {
        ab.push_numeric_row(&[
            point.columns as f64,
            point.delay,
            point.energy_array,
            point.energy_sensing,
            point.energy_total(),
        ]);
    }
    emit(&ab);
    println!("Fig. 6(a)/(b) summary (2 rows):");
    for point in &column_points {
        println!(
            "  {:>3} columns: delay {}, energy {} (array {} + sensing {})",
            point.columns,
            eng(point.delay, "s"),
            eng(point.energy_total(), "J"),
            eng(point.energy_array, "J"),
            eng(point.energy_sensing, "J"),
        );
    }

    // Fig. 6(c)/(d): 32 columns, growing row count.
    let rows = figure6_rows();
    let row_points = row_sweep(&rows, 32, &chain)?;
    let mut cd = Table::new(
        "fig6cd_delay_energy_vs_rows",
        &[
            "rows",
            "delay_s",
            "energy_array_j",
            "energy_sensing_j",
            "energy_total_j",
        ],
    );
    for point in &row_points {
        cd.push_numeric_row(&[
            point.rows as f64,
            point.delay,
            point.energy_array,
            point.energy_sensing,
            point.energy_total(),
        ]);
    }
    emit(&cd);
    println!("Fig. 6(c)/(d) summary (32 columns):");
    for point in &row_points {
        println!(
            "  {:>2} rows: delay {}, energy {} (array {} + sensing {})",
            point.rows,
            eng(point.delay, "s"),
            eng(point.energy_total(), "J"),
            eng(point.energy_array, "J"),
            eng(point.energy_sensing, "J"),
        );
    }
    Ok(())
}
