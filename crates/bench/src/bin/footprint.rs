//! Column-footprint benchmark: one-hot vs multi-bit bit-plane packing.
//!
//! The paper's one-hot layout spends one crossbar column per
//! `(feature, bin)` pair; the bit-plane encoding packs `bits / Q_l`
//! adjacent bins into one multi-bit cell and reconstructs the same integer
//! level sum with a shift-add merged read. This bench sweeps
//! encoding × cell width × model scale and answers three questions:
//!
//! 1. **How much smaller is the array?** Columns and programmed cells per
//!    engine, with the reduction factor against the one-hot baseline. The
//!    4-bit reduction at fig6 scale (64 classes × 32 features, the paper's
//!    largest array) is gated against the checked-in
//!    `min_column_reduction_fig6_4bit` of `FOOTPRINT_BUDGET.json`.
//! 2. **Does packing cost accuracy?** Test accuracy per encoding at
//!    σ_VTH = 0, gated to match one-hot within `max_accuracy_delta`
//!    (zero by default: the merged read is exact integer arithmetic).
//! 3. **What does the merged read cost?** Measured ns/inference of the
//!    packed read path at fig6 scale, gated against
//!    `packed_read_ns_per_inference_budget`, plus the sensing chain's
//!    modelled delay/energy per inference for every sweep point.
//!
//! Everything lands in `BENCH_footprint.json`.
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p febim-bench --bin footprint \
//!     [-- --quick] [--out PATH] [--budget PATH]
//! ```
//!
//! `--quick` shortens the measurement (used by the CI bench-smoke step);
//! `--out` overrides the output path (default `BENCH_footprint.json`);
//! `--budget` overrides the budget file path (default
//! `FOOTPRINT_BUDGET.json`).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde::Serialize;

use febim_core::{EngineConfig, FebimEngine, InferenceBackend, Table};
use febim_data::rng::seeded_rng;
use febim_data::split::{stratified_split, TrainTestSplit};
use febim_data::synthetic::{gaussian_blobs, iris_like};
use febim_data::Dataset;
use febim_quant::Encoding;

/// One encoding × scale sweep point.
#[derive(Debug, Serialize)]
struct FootprintPoint {
    dataset: String,
    encoding: String,
    /// Bits of storage per cell (the one-hot baseline reports its native
    /// `Q_l`).
    bits: u32,
    rows: usize,
    columns: usize,
    cells: usize,
    /// Programmable states per cell.
    states: usize,
    /// Column footprint of the one-hot baseline divided by this point's
    /// (1.0 for the baseline itself).
    column_reduction: f64,
    /// Test accuracy at σ_VTH = 0.
    accuracy: f64,
    /// `accuracy - one_hot_accuracy` on the same split.
    accuracy_delta: f64,
    /// Measured wall-clock ns per inference (best of several passes).
    read_ns_per_inference: f64,
    /// Modelled sensing-chain delay per inference (seconds, averaged over
    /// the test split).
    modeled_delay_s: f64,
    /// Modelled sensing-chain energy per inference (joules, averaged over
    /// the test split).
    modeled_energy_j: f64,
    /// This point's modelled energy divided by the one-hot baseline's on
    /// the same split (1.0 for the baseline itself). Above 1 means the
    /// multi-level refinement reads of the packed encoding cost extra
    /// energy per inference; the smaller array must not cost more than the
    /// checked-in factor.
    energy_ratio: f64,
}

/// The persisted record tracking the footprint trajectory.
#[derive(Debug, Serialize)]
struct FootprintRecord {
    bench: &'static str,
    generated_unix_s: u64,
    quick: bool,
    /// Inferences timed per measurement pass.
    inferences: usize,
    /// The gated fig6-scale 4-bit column reduction and its budget.
    fig6_column_reduction_4bit: f64,
    min_column_reduction_fig6_4bit: f64,
    /// The gated fig6-scale 4-bit packed read throughput and its budget.
    fig6_packed_read_ns_4bit: f64,
    packed_read_ns_per_inference_budget: f64,
    /// The gated fig6-scale 4-bit packed-over-one-hot modelled energy
    /// ratio and its budget (deterministic circuit model, no slack
    /// needed).
    fig6_packed_energy_ratio_4bit: f64,
    max_packed_energy_ratio_fig6_4bit: f64,
    /// The accuracy-delta tolerance every packed point was gated against.
    max_accuracy_delta: f64,
    points: Vec<FootprintPoint>,
}

/// ns/inference of `engine` over `samples`, best of `passes` passes.
fn measure_reads<B: InferenceBackend>(
    engine: &FebimEngine<B>,
    samples: &[Vec<f64>],
    passes: usize,
) -> f64 {
    let mut scratch = engine.make_scratch();
    let mut best_ns = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for sample in samples {
            engine.infer_into(sample, &mut scratch).expect("infer");
        }
        best_ns = best_ns.min(start.elapsed().as_nanos() as f64 / samples.len() as f64);
    }
    best_ns
}

/// Request stream: the test split cycled up to `count` samples.
fn request_stream(test: &Dataset, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|index| {
            test.sample(index % test.n_samples())
                .expect("sample")
                .to_vec()
        })
        .collect()
}

/// Modelled mean (delay, energy) per inference over the test split.
fn modeled_costs<B: InferenceBackend>(engine: &FebimEngine<B>, test: &Dataset) -> (f64, f64) {
    let mut scratch = engine.make_scratch();
    let mut delay = 0.0;
    let mut energy = 0.0;
    for index in 0..test.n_samples() {
        let step = engine
            .infer_into(test.sample(index).expect("sample"), &mut scratch)
            .expect("infer");
        delay += step.delay.total();
        energy += step.energy.total();
    }
    let n = test.n_samples() as f64;
    (delay / n, energy / n)
}

/// Fits an engine with `encoding` and measures one sweep point. The one-hot
/// baseline is passed back in as `(columns, accuracy)` to price reductions.
fn measure_point(
    dataset: &str,
    split: &TrainTestSplit,
    encoding: Encoding,
    baseline: Option<(usize, f64, f64)>,
    samples: &[Vec<f64>],
    passes: usize,
) -> FootprintPoint {
    let config = EngineConfig::febim_default().with_encoding(encoding);
    let likelihood_bits = config.quant.likelihood_bits;
    let engine = FebimEngine::fit(&split.train, config).expect("engine");
    let layout = *engine.program().layout();
    let accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;
    let (modeled_delay_s, modeled_energy_j) = modeled_costs(&engine, &split.test);
    let read_ns_per_inference = measure_reads(&engine, samples, passes);
    let (name, bits) = match encoding {
        Encoding::OneHot => ("one-hot".to_string(), likelihood_bits),
        Encoding::BitPlane { bits } => (format!("bit-plane/{bits}"), bits),
    };
    let (baseline_columns, baseline_accuracy, baseline_energy) =
        baseline.unwrap_or((layout.columns(), accuracy, modeled_energy_j));
    FootprintPoint {
        dataset: dataset.to_string(),
        encoding: name,
        bits,
        rows: layout.rows(),
        columns: layout.columns(),
        cells: layout.cells(),
        states: engine.program().state_count(),
        column_reduction: baseline_columns as f64 / layout.columns() as f64,
        accuracy,
        accuracy_delta: accuracy - baseline_accuracy,
        read_ns_per_inference,
        modeled_delay_s,
        modeled_energy_j,
        energy_ratio: modeled_energy_j / baseline_energy,
    }
}

/// Extracts `"<key>": <number>` from the checked-in budget file
/// (hand-parsed; the vendored serde shim serializes only).
fn load_budget(path: &str, key_name: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = format!("\"{key_name}\"");
    let after_key = &text[text.find(key.as_str())? + key.len()..];
    let value = after_key.trim_start().strip_prefix(':')?.trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_footprint.json".to_string());
    let budget_path = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "FOOTPRINT_BUDGET.json".to_string());
    let inferences = if quick { 2_000 } else { 10_000 };
    let passes = if quick { 3 } else { 5 };

    println!(
        "footprint: sweeping encoding x cell width x scale over {inferences} timed \
         inferences per point ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    // The two scales: the paper's iris case study and its largest array,
    // fig6 scale (64 classes x 32 features -> a 64x512 one-hot crossbar).
    let iris = iris_like(42).expect("iris");
    let fig6 = gaussian_blobs(64, 32, 12, 3.0, &mut seeded_rng(4242)).expect("blobs");
    let encodings = [
        Encoding::OneHot,
        Encoding::BitPlane { bits: 4 },
        Encoding::BitPlane { bits: 8 },
    ];

    let mut points = Vec::new();
    let mut fig6_reduction_4bit = 0.0;
    let mut fig6_packed_ns_4bit = f64::INFINITY;
    let mut fig6_energy_ratio_4bit = f64::INFINITY;
    for (label, dataset, seed) in [("iris", &iris, 42u64), ("fig6-64x512", &fig6, 4242)] {
        let split = stratified_split(dataset, 0.7, &mut seeded_rng(seed)).expect("split");
        let samples = request_stream(&split.test, inferences);
        let mut baseline = None;
        for encoding in encodings {
            let point = measure_point(label, &split, encoding, baseline, &samples, passes);
            println!(
                "{:<12} {:<12} {:>3}x{:<4} array ({:>6} cells) acc {:.4} ({:+.4}) \
                 read {:>8.1} ns ({:.2}x fewer columns, energy x{:.3})",
                point.dataset,
                point.encoding,
                point.rows,
                point.columns,
                point.cells,
                point.accuracy,
                point.accuracy_delta,
                point.read_ns_per_inference,
                point.column_reduction,
                point.energy_ratio,
            );
            if baseline.is_none() {
                baseline = Some((point.columns, point.accuracy, point.modeled_energy_j));
            }
            if label.starts_with("fig6") && encoding == (Encoding::BitPlane { bits: 4 }) {
                fig6_reduction_4bit = point.column_reduction;
                fig6_packed_ns_4bit = point.read_ns_per_inference;
                fig6_energy_ratio_4bit = point.energy_ratio;
            }
            points.push(point);
        }
    }

    let mut table = Table::new(
        "footprint",
        &[
            "dataset",
            "encoding",
            "columns",
            "cells",
            "reduction",
            "accuracy",
            "read_ns",
            "energy_x",
        ],
    );
    for point in &points {
        table.push_row(&[
            point.dataset.clone(),
            point.encoding.clone(),
            point.columns.to_string(),
            point.cells.to_string(),
            format!("{:.2}x", point.column_reduction),
            format!("{:.4}", point.accuracy),
            format!("{:.1}", point.read_ns_per_inference),
            format!("{:.3}", point.energy_ratio),
        ]);
    }
    println!("\n{}", table.to_pretty());

    // Gate 1: the packed array must actually be smaller — at least the
    // checked-in factor at fig6 scale with 4-bit cells.
    let min_reduction =
        load_budget(&budget_path, "min_column_reduction_fig6_4bit").unwrap_or_else(|| {
            eprintln!(
                "could not read min_column_reduction_fig6_4bit from {budget_path}; \
                 regenerate FOOTPRINT_BUDGET.json or pass --budget PATH"
            );
            std::process::exit(1);
        });
    assert!(
        fig6_reduction_4bit >= min_reduction,
        "the 4-bit bit-plane encoding must shrink the fig6-scale column footprint by at \
         least {min_reduction:.1}x (measured {fig6_reduction_4bit:.2}x)"
    );

    // Gate 2: packing must not cost accuracy at sigma=0 — the shift-add
    // merge is exact integer arithmetic, so the tolerance defaults to zero.
    let max_delta = load_budget(&budget_path, "max_accuracy_delta").unwrap_or_else(|| {
        eprintln!("could not read max_accuracy_delta from {budget_path}");
        std::process::exit(1);
    });
    for point in &points {
        assert!(
            point.accuracy_delta.abs() <= max_delta,
            "{} {} accuracy drifted {:+.4} from the one-hot baseline (tolerance {:.4})",
            point.dataset,
            point.encoding,
            point.accuracy_delta,
            max_delta
        );
    }

    // Gate 3: the merged read path must hold its throughput budget at fig6
    // scale. Re-measure with fresh passes before failing on a loaded host.
    let ns_budget = load_budget(&budget_path, "packed_read_ns_per_inference_budget")
        .unwrap_or_else(|| {
            eprintln!("could not read packed_read_ns_per_inference_budget from {budget_path}");
            std::process::exit(1);
        });
    if fig6_packed_ns_4bit > ns_budget {
        let split = stratified_split(&fig6, 0.7, &mut seeded_rng(4242)).expect("split");
        let samples = request_stream(&split.test, inferences);
        let config = EngineConfig::febim_default().with_encoding(Encoding::BitPlane { bits: 4 });
        let engine = FebimEngine::fit(&split.train, config).expect("engine");
        for attempt in 0..3 {
            if fig6_packed_ns_4bit <= ns_budget {
                break;
            }
            println!(
                "re-measuring the packed read path (attempt {}, {:.1} ns vs {:.1} ns budget)",
                attempt + 1,
                fig6_packed_ns_4bit,
                ns_budget
            );
            fig6_packed_ns_4bit =
                fig6_packed_ns_4bit.min(measure_reads(&engine, &samples, passes + 1));
        }
    }
    println!(
        "throughput: fig6 4-bit packed read {fig6_packed_ns_4bit:.1} ns/inference \
         (budget {ns_budget:.1} ns); column reduction {fig6_reduction_4bit:.2}x \
         (floor {min_reduction:.1}x)"
    );
    assert!(
        fig6_packed_ns_4bit <= ns_budget,
        "the packed read throughput regressed past the checked-in budget \
         ({fig6_packed_ns_4bit:.1} ns > {ns_budget:.1} ns); fix the regression or \
         re-baseline FOOTPRINT_BUDGET.json"
    );

    // Gate 4: the packed encoding's modelled energy per inference — the
    // multi-level refinement reads priced through the sensing chain — must
    // not exceed the one-hot baseline's by more than the checked-in
    // factor. The circuit model is deterministic, so no re-measurement.
    let max_energy_ratio = load_budget(&budget_path, "max_packed_energy_ratio_fig6_4bit")
        .unwrap_or_else(|| {
            eprintln!("could not read max_packed_energy_ratio_fig6_4bit from {budget_path}");
            std::process::exit(1);
        });
    println!(
        "energy: fig6 4-bit packed costs x{fig6_energy_ratio_4bit:.3} the one-hot modelled \
         energy per inference (cap x{max_energy_ratio:.3})"
    );
    assert!(
        fig6_energy_ratio_4bit <= max_energy_ratio,
        "the packed encoding's modelled energy per inference exceeded the checked-in cap \
         (x{fig6_energy_ratio_4bit:.3} > x{max_energy_ratio:.3} of one-hot); fix the \
         refinement pricing or re-baseline FOOTPRINT_BUDGET.json"
    );

    let record = FootprintRecord {
        bench: "footprint",
        generated_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        inferences,
        fig6_column_reduction_4bit: fig6_reduction_4bit,
        min_column_reduction_fig6_4bit: min_reduction,
        fig6_packed_read_ns_4bit: fig6_packed_ns_4bit,
        packed_read_ns_per_inference_budget: ns_budget,
        fig6_packed_energy_ratio_4bit: fig6_energy_ratio_4bit,
        max_packed_energy_ratio_fig6_4bit: max_energy_ratio,
        max_accuracy_delta: max_delta,
        points,
    };
    match std::fs::write(&out_path, serde::json::to_string_pretty(&record) + "\n") {
        Ok(()) => println!("(written to {out_path})"),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}
