//! Fabric-scale benchmark: tiled multi-array fabric vs. monolithic crossbar.
//!
//! Deploys the same compiled model on the paper's single array and on a
//! tiled [`TileGrid`] fabric, verifies the two decide every sample
//! identically (the fabric read path is bit-exact), measures tiled vs.
//! monolithic read/inference throughput at iris scale and at the Fig. 6
//! stress scale, times the epoch-parallel Monte-Carlo sweep running entirely
//! on the fabric backend, and writes everything — tile plan, per-workload
//! timings, deployment comparison and evaluation reports — to a JSON record
//! via the `serde` JSON emitters (no hand-rolled formatting).
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p febim-bench --bin fabric [-- --quick] [--out PATH]
//! ```
//!
//! `--quick` shortens the measurement window (used by the CI bench-smoke
//! step); `--out` overrides the output path (default `BENCH_fabric.json` in
//! the current directory).

use std::hint::black_box;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use serde::Serialize;

use febim_bench::{eng, measure_min_ns as measure};
use febim_compare::FabricComparison;
use febim_core::{
    variation_sweep_with_backend, EngineConfig, EvaluationReport, FebimEngine, TiledFabricBackend,
};
use febim_crossbar::{
    Activation, CrossbarArray, CrossbarLayout, ProgrammingMode, TileGrid, TilePlan, TileShape,
};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_data::Dataset;
use febim_device::LevelProgrammer;

/// One measured workload: nanoseconds per iteration on both deployments.
#[derive(Debug, Serialize)]
struct Workload {
    name: String,
    monolithic_ns: f64,
    tiled_ns: f64,
    /// `monolithic_ns / tiled_ns` (> 1 means the fabric is faster).
    tiled_speedup: f64,
}

impl Workload {
    fn new(name: &str, monolithic_ns: f64, tiled_ns: f64) -> Self {
        Self {
            name: name.to_string(),
            monolithic_ns,
            tiled_ns,
            tiled_speedup: monolithic_ns / tiled_ns,
        }
    }
}

/// Wall time of one epoch-parallel Monte-Carlo variation sweep run entirely
/// on the fabric backend, serial vs. parallel (its own record section: both
/// timings are *tiled*, so they do not belong in the monolithic-vs-tiled
/// workload rows).
#[derive(Debug, Serialize)]
struct MonteCarloTiming {
    epochs: usize,
    threads: usize,
    serial_ns: f64,
    parallel_ns: f64,
    parallel_speedup: f64,
}

/// The persisted record: everything a later commit needs to track the
/// fabric's performance trajectory.
#[derive(Debug, Serialize)]
struct FabricRecord {
    bench: &'static str,
    generated_unix_s: u64,
    quick: bool,
    /// Tile placement of the iris-scale engine under test.
    plan: TilePlan,
    workloads: Vec<Workload>,
    monte_carlo: MonteCarloTiming,
    comparison: FabricComparison,
    monolithic_report: EvaluationReport,
    tiled_report: EvaluationReport,
}

/// The Fig. 6-scale stress pair: a 64×512 model programmed identically onto
/// one monolithic array and onto a 2×4 grid of 32×128 tiles (the model
/// exceeds the tile in both dimensions).
fn fig6_scale_pair() -> (CrossbarArray, TileGrid) {
    let layout = CrossbarLayout::new(64, 32, 16, false).expect("layout");
    let programmer = LevelProgrammer::febim_default(10).expect("programmer");
    let shape = TileShape::new(32, 128).expect("shape");
    let plan = TilePlan::new(layout, shape).expect("plan");
    assert!(plan.row_tiles() >= 2 && plan.col_tiles() >= 2);
    let mut array = CrossbarArray::new(layout, programmer.clone());
    let mut grid = TileGrid::new(plan, programmer);
    let levels: Vec<Vec<Option<usize>>> = (0..layout.rows())
        .map(|row| {
            (0..layout.columns())
                .map(|column| Some((row + column) % 10))
                .collect()
        })
        .collect();
    array
        .program_matrix(&levels, ProgrammingMode::Ideal)
        .expect("program array");
    grid.program_matrix(&levels, ProgrammingMode::Ideal)
        .expect("program grid");
    (array, grid)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fabric.json".to_string());
    let target = if quick {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(400)
    };

    println!(
        "fabric: measuring tiled multi-array fabric vs. monolithic crossbar ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    // Iris workload: the paper's 3×64 model on 2×24 tiles — a 2 (class
    // shards) × 3 (evidence shards) grid; the model exceeds the tile in both
    // dimensions.
    let dataset = iris_like(42).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).expect("split");
    let config = EngineConfig::febim_default();
    let shape = TileShape::new(2, 24).expect("shape");
    let monolithic = FebimEngine::fit(&split.train, config.clone()).expect("engine");
    let tiled = FebimEngine::fit_tiled(&split.train, config.clone(), shape).expect("fabric");
    let plan = *tiled.tiled_program().plan();
    println!(
        "iris deployment: {}x{} grid of {}x{} tiles, utilization {:.1} %",
        plan.row_tiles(),
        plan.col_tiles(),
        plan.shape().rows,
        plan.shape().columns,
        plan.utilization() * 100.0
    );

    // Sanity: the fabric decides every sample exactly like the array.
    let monolithic_report = monolithic.evaluate(&split.test).expect("evaluate");
    let tiled_report = tiled.evaluate(&split.test).expect("evaluate");
    assert_eq!(
        monolithic_report.predictions, tiled_report.predictions,
        "tiled fabric must be bit-identical to the monolithic array"
    );

    let sample = split.test.sample(0).expect("sample").to_vec();
    let mut mono_scratch = monolithic.make_scratch();
    let mut tiled_scratch = tiled.make_scratch();
    let mut workloads = vec![Workload::new(
        "iris_inference_3x64/infer_into",
        measure(
            || {
                black_box(
                    monolithic
                        .infer_into(black_box(&sample), &mut mono_scratch)
                        .expect("infer"),
                );
            },
            target,
        ),
        measure(
            || {
                black_box(
                    tiled
                        .infer_into(black_box(&sample), &mut tiled_scratch)
                        .expect("infer"),
                );
            },
            target,
        ),
    )];

    // Raw read path at both scales: merged fabric reads vs. array reads.
    let iris_layout = *monolithic.array().layout();
    let evidence: Vec<usize> = (0..4).map(|node| node % 16).collect();
    let iris_sparse = Activation::from_observation(&iris_layout, &evidence).expect("activation");
    let iris_all = Activation::all_columns(&iris_layout);
    let (fig6_array, fig6_grid) = fig6_scale_pair();
    let fig6_evidence: Vec<usize> = (0..32).map(|node| node % 16).collect();
    let fig6_sparse =
        Activation::from_observation(fig6_array.layout(), &fig6_evidence).expect("activation");
    let fig6_all = Activation::all_columns(fig6_array.layout());
    let mut currents = Vec::new();
    for (name, array, grid, activation) in [
        (
            "iris_read_3x64/sparse_observation",
            monolithic.array(),
            tiled.grid(),
            &iris_sparse,
        ),
        (
            "iris_read_3x64/all_columns",
            monolithic.array(),
            tiled.grid(),
            &iris_all,
        ),
        (
            "fig6_read_64x512_on_2x4_grid/sparse_observation",
            &fig6_array,
            &fig6_grid,
            &fig6_sparse,
        ),
        (
            "fig6_read_64x512_on_2x4_grid/all_columns",
            &fig6_array,
            &fig6_grid,
            &fig6_all,
        ),
    ] {
        assert_eq!(
            array.wordline_currents(activation).expect("array read"),
            grid.wordline_currents(activation).expect("grid read"),
            "merged fabric read diverged on {name}"
        );
        workloads.push(Workload::new(
            name,
            measure(
                || {
                    array
                        .wordline_currents_into(black_box(activation), &mut currents)
                        .expect("read");
                    black_box(&currents);
                },
                target,
            ),
            measure(
                || {
                    grid.wordline_currents_into(black_box(activation), &mut currents)
                        .expect("read");
                    black_box(&currents);
                },
                target,
            ),
        ));
    }

    // Monte-Carlo on the fabric backend: epochs (each owning its own
    // multi-tile fabric) spread across the cores, serial run as baseline.
    let epochs = if quick { 2 } else { 8 };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let build_tiled = |train: &Dataset, epoch_config: EngineConfig| {
        FebimEngine::<TiledFabricBackend>::fit_tiled(train, epoch_config, shape)
    };
    let serial_start = Instant::now();
    let serial_sweep =
        variation_sweep_with_backend(&dataset, &config, &[45.0], 0.7, epochs, 7, 1, build_tiled)
            .expect("serial sweep");
    let serial_ns = serial_start.elapsed().as_nanos() as f64;
    let parallel_start = Instant::now();
    let parallel_sweep = variation_sweep_with_backend(
        &dataset,
        &config,
        &[45.0],
        0.7,
        epochs,
        7,
        parallelism,
        build_tiled,
    )
    .expect("parallel sweep");
    let parallel_ns = parallel_start.elapsed().as_nanos() as f64;
    assert_eq!(
        serial_sweep, parallel_sweep,
        "parallel fabric Monte-Carlo must be byte-identical to serial"
    );
    let monte_carlo = MonteCarloTiming {
        epochs,
        threads: parallelism,
        serial_ns,
        parallel_ns,
        parallel_speedup: serial_ns / parallel_ns,
    };

    for workload in &workloads {
        println!(
            "{:<50} monolithic {:>12}  tiled {:>12}  speedup {:>7.2}x",
            workload.name,
            eng(workload.monolithic_ns * 1e-9, "s"),
            eng(workload.tiled_ns * 1e-9, "s"),
            workload.tiled_speedup,
        );
    }
    println!(
        "{:<50} serial     {:>12}  parallel ({} threads) {:>12}  speedup {:>5.2}x",
        "monte_carlo_fabric_sweep",
        eng(monte_carlo.serial_ns * 1e-9, "s"),
        monte_carlo.threads,
        eng(monte_carlo.parallel_ns * 1e-9, "s"),
        monte_carlo.parallel_speedup,
    );

    let comparison = FabricComparison::new(&monolithic_report, &tiled_report, &plan);
    println!(
        "\ndeployment: delay ratio {:.3}, energy ratio {:.3}, accuracy matches: {}",
        comparison.delay_ratio(),
        comparison.energy_ratio(),
        comparison.accuracy_matches()
    );

    let record = FabricRecord {
        bench: "fabric",
        generated_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        plan,
        workloads,
        monte_carlo,
        comparison,
        monolithic_report,
        tiled_report,
    };
    match std::fs::write(&out_path, serde::json::to_string_pretty(&record) + "\n") {
        Ok(()) => println!("\n(written to {out_path})"),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}
