//! Serving-pool benchmark: concurrent batched serving vs sequential
//! single-sample inference, swept over replicas × batch size × backend on
//! two workload scales.
//!
//! For every backend (software reference, monolithic crossbar, tiled
//! fabric) the bench measures the sequential single-sample baseline (one
//! engine, one scratch, one request at a time), then serves the same
//! request stream through a [`ServingPool`] at every (replicas, max_batch)
//! point of the sweep, verifying the served predictions are identical to
//! the sequential ones before trusting any timing.
//!
//! Two workloads tell the two halves of the story:
//!
//! * **iris** (3×64): single-sample inference costs ~100 ns, so the pool's
//!   per-request messaging dominates — the recorded sub-1 speedups are the
//!   honest overhead floor of request-per-message serving at toy scale;
//! * **fig6** (64 classes × 512 columns on a 2×4 tile grid): inference is
//!   microseconds, batching amortizes it across replicas, and batched
//!   serving out-serves the sequential baseline — the headline
//!   `best_tiled_batched_speedup` the record asserts to be ≥ 1 at
//!   batch ≥ 8.
//!
//! Everything — the sweep table, the per-row modeled amortization ratios,
//! the per-row queue-wait and end-to-end latency percentiles and the
//! headline speedups — lands in `BENCH_serving.json`.
//!
//! Two regression gates run on every invocation (CI included, via
//! `--quick`):
//!
//! * **overhead gate**: the pool must serve within 2x of raw sequential
//!   `infer_into` at batch ≥ 8 on at least one backend
//!   (`best_pool_overhead_ratio ≤ 2`);
//! * **budget gate**: the best iris-scale pool ns/request at batch ≥ 8 —
//!   the pool's per-request overhead floor, where messaging dominates the
//!   ~100 ns inference — must stay at or under the checked-in
//!   `pool_ns_per_request_budget` of `SERVING_BUDGET.json`.
//!
//! Both gates re-measure the decisive configuration with fresh passes
//! before failing, so one noisy sweep on a loaded host doesn't flake CI.
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p febim-bench --bin serving \
//!     [-- --quick] [--out PATH] [--budget PATH]
//! ```
//!
//! `--quick` shortens the request stream (used by the CI bench-smoke step);
//! `--out` overrides the output path (default `BENCH_serving.json`);
//! `--budget` overrides the budget file path (default
//! `SERVING_BUDGET.json`).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde::Serialize;

use febim_compare::{ServingComparison, ServingMeasurement};
use febim_core::{
    CrossbarBackend, EngineConfig, FebimEngine, InferenceBackend, ServingConfig, ServingPool,
    SoftwareBackend, TiledFabricBackend,
};
use febim_crossbar::TileShape;
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_data::Dataset;

/// The persisted record tracking the serving-throughput trajectory.
#[derive(Debug, Serialize)]
struct ServingRecord {
    bench: &'static str,
    generated_unix_s: u64,
    quick: bool,
    requests: usize,
    replicas_swept: Vec<usize>,
    batches_swept: Vec<usize>,
    comparison: ServingComparison,
    /// Best tiled-fabric pool speedup over sequential inference among the
    /// batch ≥ 8 rows — the acceptance headline: ≥ 1 means batched serving
    /// out-serves sequential single-sample inference.
    best_tiled_batched_speedup: f64,
    /// Smallest `serving_ns / sequential_ns` ratio among all batch ≥ 8 rows
    /// — the overhead-gate headline: ≤ 2 means the pool serves within 2x of
    /// raw sequential `infer_into` on at least one backend.
    best_pool_overhead_ratio: f64,
    /// Best iris-scale pool ns/request at batch ≥ 8 — the pool's measured
    /// per-request overhead floor, gated against the checked-in budget.
    iris_pool_floor_ns_per_request: f64,
    /// The `pool_ns_per_request_budget` the floor was gated against.
    pool_ns_per_request_budget: f64,
}

/// Request stream: the test split cycled up to `count` samples.
fn request_stream(test: &Dataset, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|index| {
            test.sample(index % test.n_samples())
                .expect("sample")
                .to_vec()
        })
        .collect()
}

/// Sequential baseline: ns/request of one engine answering one request at a
/// time through one reused scratch (best of `passes` passes).
fn measure_sequential<B: InferenceBackend>(
    engine: &FebimEngine<B>,
    samples: &[Vec<f64>],
    passes: usize,
) -> (f64, Vec<usize>) {
    let mut scratch = engine.make_scratch();
    let mut predictions = Vec::with_capacity(samples.len());
    let mut best_ns = f64::INFINITY;
    for _ in 0..passes {
        predictions.clear();
        let start = Instant::now();
        for sample in samples {
            let step = engine.infer_into(sample, &mut scratch).expect("infer");
            predictions.push(step.prediction);
        }
        best_ns = best_ns.min(start.elapsed().as_nanos() as f64 / samples.len() as f64);
    }
    (best_ns, predictions)
}

/// Grouped-read path: ns/request of one engine answering the stream in
/// `max_batch`-sized groups through `infer_batch_into` — the service rate a
/// pool worker achieves inside a batch (best of `passes` passes, predictions
/// verified against the sequential baseline).
fn measure_batched<B: InferenceBackend>(
    engine: &FebimEngine<B>,
    samples: &[Vec<f64>],
    max_batch: usize,
    expected: &[usize],
    passes: usize,
) -> f64 {
    let mut scratch = engine.make_scratch();
    let mut steps = Vec::with_capacity(max_batch);
    let mut best_ns = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for chunk in samples.chunks(max_batch) {
            engine
                .infer_batch_into(chunk, &mut scratch, &mut steps)
                .expect("batched inference");
        }
        best_ns = best_ns.min(start.elapsed().as_nanos() as f64 / samples.len() as f64);
    }
    // Bit-identity spot check on the last pass's final chunk plus a full
    // verification pass.
    let mut offset = 0;
    for chunk in samples.chunks(max_batch) {
        engine
            .infer_batch_into(chunk, &mut scratch, &mut steps)
            .expect("batched inference");
        for (step, &prediction) in steps.iter().zip(&expected[offset..]) {
            assert_eq!(
                step.prediction, prediction,
                "batched prediction diverged from sequential inference"
            );
        }
        offset += chunk.len();
    }
    best_ns
}

/// One pool run: ns/request of serving the whole stream, plus the completed
/// pool statistics (best of `passes` fresh pools).
fn measure_pool<B: InferenceBackend + Clone + Send + 'static>(
    engine: &FebimEngine<B>,
    replicas: usize,
    config: ServingConfig,
    samples: &[Vec<f64>],
    expected: &[usize],
    passes: usize,
) -> (f64, febim_core::PoolStats) {
    let mut best_ns = f64::INFINITY;
    let mut best_stats = None;
    for _ in 0..passes {
        let pool = ServingPool::replicate(engine, replicas, config).expect("pool");
        let start = Instant::now();
        let answers = pool.serve(samples);
        let elapsed_ns = start.elapsed().as_nanos() as f64 / samples.len() as f64;
        for (answer, &prediction) in answers.iter().zip(expected) {
            assert_eq!(
                answer.as_ref().expect("served answer").prediction,
                prediction,
                "served prediction diverged from sequential inference"
            );
        }
        let stats = pool.shutdown();
        assert_eq!(stats.requests, samples.len() as u64);
        if elapsed_ns < best_ns {
            best_ns = elapsed_ns;
            best_stats = Some(stats);
        }
    }
    (best_ns, best_stats.expect("at least one pass"))
}

/// Sweeps one backend across the (replicas, max_batch) grid, labelling its
/// rows `workload/backend-name`.
#[allow(clippy::too_many_arguments)]
fn sweep_backend<B: InferenceBackend + Clone + Send + 'static>(
    comparison: &mut ServingComparison,
    workload: &str,
    engine: &FebimEngine<B>,
    samples: &[Vec<f64>],
    replicas_swept: &[usize],
    batches_swept: &[usize],
    passes: usize,
) {
    let name = format!("{workload}/{}", engine.backend_info().name);
    let (sequential_ns, expected) = measure_sequential(engine, samples, passes);
    for &max_batch in batches_swept {
        let batched_ns = measure_batched(engine, samples, max_batch, &expected, passes);
        for &replicas in replicas_swept {
            let config = ServingConfig::febim_default()
                .with_max_batch(max_batch)
                .with_queue_depth((replicas * max_batch * 4).max(64));
            let (serving_ns, stats) =
                measure_pool(engine, replicas, config, samples, &expected, passes);
            let row = ServingMeasurement::new(
                name.clone(),
                replicas,
                max_batch,
                &stats,
                sequential_ns,
                batched_ns,
                serving_ns,
            );
            println!(
                "{:<28} replicas {:>2}  batch {:>3}  mean batch {:>6.2}  sequential {:>8.1} ns  batched {:>8.1} ns ({:>5.2}x)  pool {:>8.1} ns ({:>5.2}x)  wait p50/p99 {:>6}/{:>6} ns  e2e p50/p99 {:>6}/{:>6} ns  delay x{:.3}  energy x{:.3}",
                row.backend,
                row.replicas,
                row.max_batch,
                row.mean_batch_size,
                row.sequential_ns_per_request,
                row.batched_ns_per_request,
                row.batched_speedup,
                row.serving_ns_per_request,
                row.throughput_speedup,
                row.queue_wait_p50_ns,
                row.queue_wait_p99_ns,
                row.e2e_p50_ns,
                row.e2e_p99_ns,
                row.amortized_delay_ratio,
                row.amortized_energy_ratio,
            );
            comparison.push(row);
        }
    }
}

/// Runs the full (replicas × batch) sweep for the three backends of one
/// workload.
#[allow(clippy::too_many_arguments)]
fn for_each_backend(
    comparison: &mut ServingComparison,
    workload: &str,
    software: &FebimEngine<SoftwareBackend>,
    crossbar: &FebimEngine<CrossbarBackend>,
    tiled: &FebimEngine<TiledFabricBackend>,
    samples: &[Vec<f64>],
    replicas_swept: &[usize],
    batches_swept: &[usize],
    passes: usize,
) {
    sweep_backend(
        comparison,
        workload,
        software,
        samples,
        replicas_swept,
        batches_swept,
        passes,
    );
    sweep_backend(
        comparison,
        workload,
        crossbar,
        samples,
        replicas_swept,
        batches_swept,
        passes,
    );
    sweep_backend(
        comparison,
        workload,
        tiled,
        samples,
        replicas_swept,
        batches_swept,
        passes,
    );
}

/// Smallest pool ns/request among rows whose backend label starts with
/// `prefix` and whose batch limit is at least `min_batch`.
fn best_pool_ns(comparison: &ServingComparison, prefix: &str, min_batch: usize) -> Option<f64> {
    comparison
        .rows
        .iter()
        .filter(|row| row.backend.starts_with(prefix) && row.max_batch >= min_batch)
        .map(|row| row.serving_ns_per_request)
        .fold(None, |best, ns| Some(best.map_or(ns, |b: f64| b.min(ns))))
}

/// Smallest `serving_ns / sequential_ns` ratio among all batch ≥ `min_batch`
/// rows — how close the pool gets to raw sequential inference on its best
/// backend.
fn best_overhead_ratio(comparison: &ServingComparison, min_batch: usize) -> Option<f64> {
    comparison
        .rows
        .iter()
        .filter(|row| row.max_batch >= min_batch)
        .map(|row| row.serving_ns_per_request / row.sequential_ns_per_request)
        .fold(None, |best, ratio| {
            Some(best.map_or(ratio, |b: f64| b.min(ratio)))
        })
}

/// Extracts `"pool_ns_per_request_budget": <number>` from the checked-in
/// budget file. Parsed by hand — the vendored serde shim serializes only, so
/// the budget record stays a plain JSON object anything can read.
fn load_budget(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"pool_ns_per_request_budget\"";
    let after_key = &text[text.find(key)? + key.len()..];
    let value = after_key.trim_start().strip_prefix(':')?.trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    let budget_path = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "SERVING_BUDGET.json".to_string());
    let requests = if quick { 1_500 } else { 12_000 };
    let passes = if quick { 2 } else { 3 };

    println!(
        "serving: sweeping replicas x batch x backend over {requests} requests ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut replicas_swept = vec![1, 2, cores.clamp(2, 4)];
    replicas_swept.dedup();
    let batches_swept = vec![1, 8, 32];
    let config = EngineConfig::febim_default();
    let mut comparison = ServingComparison::new();

    // Workload 1 — iris scale (3×64 on a 2×3 grid of 2×24 tiles): inference
    // is ~100 ns, so these rows record the pool's per-request overhead
    // floor. The software engine and stream outlive the block: the budget
    // gate re-measures them if the first sweep lands over budget.
    let iris_software;
    let iris_samples;
    {
        let dataset = iris_like(42).expect("dataset");
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).expect("split");
        let samples = request_stream(&split.test, requests);
        let software = FebimEngine::fit_software(&split.train, config.clone()).expect("software");
        let crossbar = FebimEngine::fit(&split.train, config.clone()).expect("crossbar");
        let tiled = FebimEngine::<TiledFabricBackend>::fit_tiled(
            &split.train,
            config.clone(),
            TileShape::new(2, 24).expect("tile shape"),
        )
        .expect("tiled fabric");
        assert!(tiled.tiled_program().plan().is_multi_tile());
        for_each_backend(
            &mut comparison,
            "iris",
            &software,
            &crossbar,
            &tiled,
            &samples,
            &replicas_swept,
            &batches_swept,
            passes,
        );
        iris_software = software;
        iris_samples = samples;
    }

    // Workload 2 — fig6 scale (64 classes × 32 features → a 64×512 layout
    // on a 2×4 grid of 32×128 tiles): inference costs microseconds, the
    // regime a serving pool exists for.
    let dataset = febim_data::synthetic::gaussian_blobs(64, 32, 12, 3.0, &mut seeded_rng(4242))
        .expect("blob dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(4242)).expect("split");
    let fig6_samples = request_stream(&split.test, requests);
    let fig6_tiled;
    let fig6_software;
    {
        let software = FebimEngine::fit_software(&split.train, config.clone()).expect("software");
        let crossbar = FebimEngine::fit(&split.train, config.clone()).expect("crossbar");
        let tiled = FebimEngine::<TiledFabricBackend>::fit_tiled(
            &split.train,
            config.clone(),
            TileShape::new(32, 128).expect("tile shape"),
        )
        .expect("tiled fabric");
        let plan = tiled.tiled_program().plan();
        assert!(plan.row_tiles() >= 2 && plan.col_tiles() >= 2);
        for_each_backend(
            &mut comparison,
            "fig6",
            &software,
            &crossbar,
            &tiled,
            &fig6_samples,
            &replicas_swept,
            &batches_swept,
            passes,
        );
        fig6_tiled = tiled;
        fig6_software = software;
    }

    // Headline: the grouped-read path must out-serve sequential
    // single-sample inference at batch >= 8 on the tiled backend. A loaded
    // host can produce one noisy sweep, so re-measure the decisive
    // configuration with fresh passes (recorded as additional honest rows)
    // before concluding.
    let mut best_tiled_batched_speedup = comparison
        .best_batched_speedup("fig6/tiled-fabric", 8)
        .expect("tiled rows swept");
    for attempt in 0..3 {
        if best_tiled_batched_speedup >= 1.0 {
            break;
        }
        println!(
            "\nre-measuring the tiled batch-32 configuration (attempt {}, measured {:.3}x)",
            attempt + 1,
            best_tiled_batched_speedup
        );
        sweep_backend(
            &mut comparison,
            "fig6",
            &fig6_tiled,
            &fig6_samples,
            &[1],
            &[32],
            passes + 1,
        );
        best_tiled_batched_speedup = comparison
            .best_batched_speedup("fig6/tiled-fabric", 8)
            .expect("tiled rows swept");
    }
    let best_tiled_pool_speedup = comparison
        .best_speedup("fig6/tiled-fabric", 8)
        .expect("tiled rows swept");
    println!(
        "\nheadline: tiled fabric at batch >= 8 — grouped-read speedup {best_tiled_batched_speedup:.2}x, \
         pool speedup {best_tiled_pool_speedup:.2}x over sequential single-sample inference"
    );
    assert!(
        best_tiled_batched_speedup >= 1.0,
        "batched serving must out-serve sequential single-sample inference on the tiled backend \
         (measured {best_tiled_batched_speedup:.3}x)"
    );

    // Overhead gate: the pool's full request path (rings, stealing, batched
    // ticket completion) must land within 2x of raw sequential `infer_into`
    // at batch >= 8 on at least one backend. Re-measure the strongest
    // configuration (fig6 software, where inference is expensive enough for
    // coalescing to pay) before failing a noisy sweep.
    let mut best_ratio = best_overhead_ratio(&comparison, 8).expect("batch >= 8 rows swept");
    for attempt in 0..3 {
        if best_ratio <= 2.0 {
            break;
        }
        println!(
            "\nre-measuring the fig6 software pool (attempt {}, overhead ratio {:.3}x)",
            attempt + 1,
            best_ratio
        );
        sweep_backend(
            &mut comparison,
            "fig6",
            &fig6_software,
            &fig6_samples,
            &[1],
            &[8],
            passes + 1,
        );
        best_ratio = best_overhead_ratio(&comparison, 8).expect("batch >= 8 rows swept");
    }
    println!(
        "\noverhead gate: pool within {best_ratio:.3}x of raw sequential inference at batch >= 8 \
         (limit 2x)"
    );
    assert!(
        best_ratio <= 2.0,
        "the serving pool must stay within 2x of raw sequential inference at batch >= 8 on at \
         least one backend (measured {best_ratio:.3}x)"
    );

    // Budget gate: the iris-scale pool floor — where messaging, not
    // inference, is the cost — must hold the checked-in ns/request budget.
    // Re-measure the floor configuration with fresh passes before failing.
    let budget = load_budget(&budget_path).unwrap_or_else(|| {
        eprintln!(
            "could not read pool_ns_per_request_budget from {budget_path}; \
             regenerate SERVING_BUDGET.json or pass --budget PATH"
        );
        std::process::exit(1);
    });
    let mut floor_ns = best_pool_ns(&comparison, "iris/", 8).expect("iris rows swept");
    for attempt in 0..3 {
        if floor_ns <= budget {
            break;
        }
        println!(
            "\nre-measuring the iris pool floor (attempt {}, {:.1} ns vs {:.1} ns budget)",
            attempt + 1,
            floor_ns,
            budget
        );
        sweep_backend(
            &mut comparison,
            "iris",
            &iris_software,
            &iris_samples,
            &[1, 2],
            &[32],
            passes + 1,
        );
        floor_ns = best_pool_ns(&comparison, "iris/", 8).expect("iris rows swept");
    }
    println!("budget gate: iris pool floor {floor_ns:.1} ns/request (budget {budget:.1} ns)");
    assert!(
        floor_ns <= budget,
        "the pool's per-request overhead floor regressed past the checked-in budget \
         ({floor_ns:.1} ns > {budget:.1} ns); fix the regression or re-baseline SERVING_BUDGET.json"
    );

    let record = ServingRecord {
        bench: "serving",
        generated_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        requests,
        replicas_swept,
        batches_swept,
        comparison,
        best_tiled_batched_speedup,
        best_pool_overhead_ratio: best_ratio,
        iris_pool_floor_ns_per_request: floor_ns,
        pool_ns_per_request_budget: budget,
    };
    match std::fs::write(&out_path, serde::json::to_string_pretty(&record) + "\n") {
        Ok(()) => println!("(written to {out_path})"),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}
