//! Regenerates Fig. 7: Gaussian naive Bayes accuracy on the iris-, wine- and
//! cancer-like datasets (a) versus the feature quantization precision `Q_f`
//! with 8-bit likelihoods, and (b) versus the likelihood quantization
//! precision `Q_l` with 8-bit features, each compared against the FP64
//! software baseline. The paper averages over 100 training/inference epochs
//! with a 0.7 test ratio.

use febim_bayes::GaussianNaiveBayes;
use febim_bench::emit;
use febim_core::Table;
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::{cancer_like, iris_like, wine_like};
use febim_data::{AccuracyStats, Dataset};
use febim_quant::{QuantConfig, QuantizedGnbc};

/// Number of train/test epochs. The paper uses 100; this default keeps the
/// default-profile run fast while preserving the trend. Override with the
/// `FEBIM_EPOCHS` environment variable.
fn epochs() -> usize {
    std::env::var("FEBIM_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn sweep(dataset: &Dataset, configs: &[(u32, u32)], epochs: usize, seed: u64) -> Vec<(f64, f64)> {
    // Returns (baseline mean, quantized mean) per configuration.
    configs
        .iter()
        .map(|&(qf, ql)| {
            let mut baseline = Vec::with_capacity(epochs);
            let mut quantized = Vec::with_capacity(epochs);
            for epoch in 0..epochs {
                let mut rng = seeded_rng(seed + epoch as u64);
                let split = stratified_split(dataset, 0.7, &mut rng).expect("split");
                let model = GaussianNaiveBayes::fit(&split.train).expect("fit");
                baseline.push(model.score(&split.test).expect("baseline"));
                let q = QuantizedGnbc::quantize(&model, &split.train, QuantConfig::new(qf, ql))
                    .expect("quantize");
                quantized.push(q.score(&split.test).expect("score"));
            }
            (
                AccuracyStats::from_values(&baseline).expect("stats").mean,
                AccuracyStats::from_values(&quantized).expect("stats").mean,
            )
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs = epochs();
    let datasets = [iris_like(7001)?, wine_like(7002)?, cancer_like(7003)?];
    println!("averaging over {epochs} train/inference epochs per point\n");

    // Fig. 7(a): Q_f from 1 to 8 bits with Q_l = 8 bits.
    let qf_configs: Vec<(u32, u32)> = (1..=8).map(|qf| (qf, 8)).collect();
    let mut fig7a = Table::new(
        "fig7a_accuracy_vs_feature_bits",
        &[
            "qf_bits",
            "iris_baseline",
            "iris_quantized",
            "wine_baseline",
            "wine_quantized",
            "cancer_baseline",
            "cancer_quantized",
        ],
    );
    let per_dataset_a: Vec<Vec<(f64, f64)>> = datasets
        .iter()
        .enumerate()
        .map(|(index, dataset)| sweep(dataset, &qf_configs, epochs, 7100 + index as u64))
        .collect();
    for (row, &(qf, _)) in qf_configs.iter().enumerate() {
        fig7a.push_numeric_row(&[
            qf as f64,
            per_dataset_a[0][row].0,
            per_dataset_a[0][row].1,
            per_dataset_a[1][row].0,
            per_dataset_a[1][row].1,
            per_dataset_a[2][row].0,
            per_dataset_a[2][row].1,
        ]);
    }
    emit(&fig7a);

    // Fig. 7(b): Q_l from 1 to 8 bits with Q_f = 8 bits.
    let ql_configs: Vec<(u32, u32)> = (1..=8).map(|ql| (8, ql)).collect();
    let mut fig7b = Table::new(
        "fig7b_accuracy_vs_likelihood_bits",
        &[
            "ql_bits",
            "iris_baseline",
            "iris_quantized",
            "wine_baseline",
            "wine_quantized",
            "cancer_baseline",
            "cancer_quantized",
        ],
    );
    let per_dataset_b: Vec<Vec<(f64, f64)>> = datasets
        .iter()
        .enumerate()
        .map(|(index, dataset)| sweep(dataset, &ql_configs, epochs, 7200 + index as u64))
        .collect();
    for (row, &(_, ql)) in ql_configs.iter().enumerate() {
        fig7b.push_numeric_row(&[
            ql as f64,
            per_dataset_b[0][row].0,
            per_dataset_b[0][row].1,
            per_dataset_b[1][row].0,
            per_dataset_b[1][row].1,
            per_dataset_b[2][row].0,
            per_dataset_b[2][row].1,
        ]);
    }
    emit(&fig7b);

    for (index, dataset) in datasets.iter().enumerate() {
        let drop_2bit_feature = per_dataset_a[index][7].1 - per_dataset_a[index][1].1;
        let drop_2bit_likelihood = per_dataset_b[index][7].1 - per_dataset_b[index][1].1;
        println!(
            "{}: accuracy change from 8-bit to 2-bit features {:.2} pp, to 2-bit likelihoods {:.2} pp",
            dataset.name(),
            -100.0 * drop_2bit_feature,
            -100.0 * drop_2bit_likelihood
        );
    }
    Ok(())
}
