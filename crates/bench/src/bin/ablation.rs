//! Ablation studies beyond the paper's headline figures:
//!
//! 1. the effect of the Eq. (6) column normalization on quantized accuracy,
//! 2. the sensitivity to the probability truncation floor (Fig. 4(a) step),
//! 3. FeBiM's single-cycle inference versus the stochastic-computing
//!    memristor Bayesian machine baseline at different bitstream lengths.

use febim_bayes::GaussianNaiveBayes;
use febim_bench::emit;
use febim_compare::{BayesianMachine, BayesianMachineConfig};
use febim_core::{EngineConfig, FebimEngine, Table};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_quant::{QuantConfig, QuantizedGnbc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = iris_like(6006)?;
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(6006))?;
    let model = GaussianNaiveBayes::fit(&split.train)?;
    let baseline = model.score(&split.test)?;
    println!(
        "FP64 software baseline accuracy: {:.2} %\n",
        100.0 * baseline
    );

    // 1. Column normalization ablation across likelihood precisions.
    let mut normalization = Table::new(
        "ablation_column_normalization",
        &["ql_bits", "with_eq6_normalization", "without_normalization"],
    );
    for ql in 1..=4u32 {
        let with = QuantizedGnbc::quantize(&model, &split.train, QuantConfig::new(4, ql))?
            .score(&split.test)?;
        let without = QuantizedGnbc::quantize(
            &model,
            &split.train,
            QuantConfig::new(4, ql).without_column_normalization(),
        )?
        .score(&split.test)?;
        normalization.push_numeric_row(&[ql as f64, with, without]);
    }
    emit(&normalization);

    // 2. Truncation floor sweep at the paper's operating point.
    let mut floors = Table::new(
        "ablation_truncation_floor",
        &["probability_floor", "quantized_accuracy"],
    );
    for floor in [0.5, 0.2, 0.1, 0.05, 0.01, 0.001, 1e-4] {
        let accuracy = QuantizedGnbc::quantize(
            &model,
            &split.train,
            QuantConfig::febim_optimal().with_floor(floor),
        )?
        .score(&split.test)?;
        floors.push_numeric_row(&[floor, accuracy]);
    }
    emit(&floors);

    // 3. FeBiM vs the stochastic-computing Bayesian machine baseline.
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
    let febim_report = engine.evaluate(&split.test)?;
    let mut comparison = Table::new(
        "ablation_febim_vs_stochastic_baseline",
        &["engine", "cycles_per_inference", "accuracy"],
    );
    comparison.push_row(&[
        "FeBiM (this work)".to_string(),
        "1".to_string(),
        format!("{:.4}", febim_report.accuracy),
    ]);
    for cycles in [8u16, 32, 255] {
        let machine =
            BayesianMachine::from_gnbc(&model, &split.train, BayesianMachineConfig::fast(cycles))?;
        comparison.push_row(&[
            format!("memristor Bayesian machine ({} cycles)", cycles),
            cycles.to_string(),
            format!("{:.4}", machine.score(&split.test)?),
        ]);
    }
    emit(&comparison);
    println!(
        "FeBiM reaches {:.2} % accuracy in a single clock cycle; the stochastic baseline needs \
         long bitstreams (up to 255 cycles) to approach the same accuracy.",
        100.0 * febim_report.accuracy
    );
    Ok(())
}
