//! Regenerates Fig. 1(c): multi-level I_D–V_G characteristics of a 2-bit
//! (four-state) FeFET, swept from −0.4 V to 1.2 V.

use febim_bench::{emit, eng};
use febim_core::Table;
use febim_device::{multilevel_iv_curves, FeFetParams, SweepConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = FeFetParams::febim_calibrated();
    let sweep = SweepConfig::febim_figure1();
    let curves = multilevel_iv_curves(&params, 4, &sweep)?;

    // Full sweep: one column per programmed state.
    let mut table = Table::new(
        "fig1c_id_vg_curves",
        &[
            "vg_v",
            "ids_state0_a",
            "ids_state1_a",
            "ids_state2_a",
            "ids_state3_a",
        ],
    );
    for index in 0..curves[0].points.len() {
        let vg = curves[0].points[index].vg;
        table.push_numeric_row(&[
            vg,
            curves[0].points[index].ids,
            curves[1].points[index].ids,
            curves[2].points[index].ids,
            curves[3].points[index].ids,
        ]);
    }
    emit(&table);

    // Summary at the read voltages, matching the annotations of the figure.
    let mut summary = Table::new(
        "fig1c_read_window",
        &[
            "state",
            "vth_v",
            "ids_at_von",
            "ids_at_voff",
            "on_off_ratio",
        ],
    );
    println!(
        "Read window at V_on = {} V / V_off = {} V:",
        params.v_on, params.v_off
    );
    for curve in &curves {
        let on = curve.current_at(params.v_on).unwrap_or(0.0);
        let off = curve.current_at(params.v_off).unwrap_or(0.0);
        println!(
            "  state {}: V_TH = {:.3} V, I_on = {}, I_off = {}",
            curve.level,
            curve.vth,
            eng(on, "A"),
            eng(off, "A")
        );
        summary.push_numeric_row(&[curve.level as f64, curve.vth, on, off, on / off.max(1e-30)]);
    }
    emit(&summary);
    Ok(())
}
