//! Self-healing benchmark: detection latency, repair cost and the price of
//! serving through a degraded pool.
//!
//! Four questions, one record:
//!
//! 1. **How fast are defects caught?** A seeded chaos campaign strikes a
//!    spared tiled fabric while a `ScrubScheduler` runs periodic signature
//!    checks; the run measures the worst detection latency in scrub
//!    periods and gates it against the checked-in
//!    `max_detection_periods` of `FAULT_BUDGET.json` (a defect must never
//!    outlive the check that closes its strike window).
//! 2. **What does repair cost?** The scrub outcome's programming-pulse and
//!    energy totals price the healing work; pulses per repaired cell are
//!    gated against `max_repair_pulses_per_cell`.
//! 3. **Is accuracy restored?** fresh → faulted → healed accuracy is
//!    measured on the same engine; the healed/fresh retention is gated
//!    against `min_healed_retention` (spare-row remaps and in-place
//!    repairs are bit-exact, so the retention must be exactly 1).
//! 4. **What does failover cost?** A healthy 2-replica pool is timed
//!    against the same pool with one replica quarantined by an
//!    unrepairable defect; the survivor's overhead factor is recorded
//!    (not gated — it is allowed to cost more, it just has to be honest)
//!    and every post-quarantine answer is verified bit-correct.
//!
//! Everything lands in `BENCH_faults.json`.
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p febim-bench --bin faults \
//!     [-- --quick] [--out PATH] [--budget PATH]
//! ```
//!
//! `--quick` shortens the measurement (used by the CI bench-smoke step);
//! `--out` overrides the output path (default `BENCH_faults.json`);
//! `--budget` overrides the budget file path (default `FAULT_BUDGET.json`).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use rand::Rng;
use serde::Serialize;

use febim_core::{
    EngineConfig, FebimEngine, ReplicaHealth, ScrubPolicy, ScrubScheduler, ServingConfig,
    ServingPool,
};
use febim_crossbar::{FaultKind, FaultSchedule, ScheduledFault, TileShape};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_data::Dataset;

/// The persisted record tracking the self-healing trajectory.
#[derive(Debug, Serialize)]
struct FaultRecord {
    bench: &'static str,
    generated_unix_s: u64,
    quick: bool,
    /// Chaos events scheduled against the scrubbed fabric.
    faults_scheduled: usize,
    /// Scrub checks actually run across the campaign.
    scrub_checks: u64,
    /// Due checks skipped because the state epoch had not moved.
    scrub_skips: u64,
    /// Defective cells the campaign detected (benign strikes — a stuck
    /// level equal to the programmed target — are invisible by design).
    faults_detected: usize,
    /// Cells healed in place or via spare rows.
    cells_repaired: u64,
    /// Wordlines remapped onto spare rows.
    rows_remapped: u64,
    /// Worst observed detection latency in scrub periods — the gated
    /// headline: no defect may outlive the check closing its window.
    detection_periods: u64,
    /// The `max_detection_periods` gate.
    max_detection_periods: f64,
    /// Programming pulses spent on repairs.
    repair_pulses: u64,
    /// Repair energy in joules.
    repair_energy_j: f64,
    /// Pulses per repaired cell — the gated repair-cost metric.
    repair_pulses_per_cell: f64,
    /// The `max_repair_pulses_per_cell` gate.
    max_repair_pulses_per_cell: f64,
    /// Accuracy of the fresh fabric.
    fresh_accuracy: f64,
    /// Accuracy with every chaos event struck and nothing healed.
    faulted_accuracy: f64,
    /// Accuracy after one full scrub pass over the struck fabric.
    healed_accuracy: f64,
    /// `healed / fresh` — gated to be exactly 1 (bit-exact repair).
    healed_retention: f64,
    /// The `min_healed_retention` gate.
    min_healed_retention: f64,
    /// Requests timed through each pool configuration.
    requests: usize,
    /// ns/request of the healthy 2-replica pool.
    healthy_ns_per_request: f64,
    /// ns/request of the same pool with one replica quarantined.
    degraded_ns_per_request: f64,
    /// `degraded / healthy` — what losing a replica costs (recorded, not
    /// gated).
    failover_overhead: f64,
    /// Replicas the degraded run ended with in quarantine.
    quarantined_workers: u64,
    /// Requests the degraded run answered through the software fallback
    /// (zero here: one survivor keeps the physical path alive).
    fallback_served: u64,
}

/// A deterministic chaos campaign: `events` transient stuck-at faults at
/// seeded random coordinates plus two permanent hits that must consume
/// spare rows.
fn chaos_schedule(seed: u64, events: usize, horizon: u64) -> FaultSchedule {
    let mut rng = seeded_rng(seed);
    let mut faults: Vec<ScheduledFault> = (0..events)
        .map(|_| ScheduledFault {
            at_tick: rng.gen_range(1..horizon),
            row: rng.gen_range(0..3),
            column: rng.gen_range(0..48),
            kind: if rng.gen_range(0..2_u32) == 0 {
                FaultKind::StuckErased
            } else {
                FaultKind::StuckProgrammed
            },
            permanent: false,
        })
        .collect();
    faults.push(ScheduledFault {
        at_tick: horizon / 3,
        row: 1,
        column: 3,
        kind: FaultKind::StuckErased,
        permanent: true,
    });
    faults.push(ScheduledFault {
        at_tick: 2 * horizon / 3,
        row: 2,
        column: 30,
        kind: FaultKind::StuckProgrammed,
        permanent: true,
    });
    FaultSchedule::new(faults)
}

/// Request stream: the test split cycled up to `count` samples.
fn request_stream(test: &Dataset, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|index| {
            test.sample(index % test.n_samples())
                .expect("sample")
                .to_vec()
        })
        .collect()
}

/// ns/request of one full `serve` pass over `requests`.
fn measure_pool(pool: &ServingPool, requests: &[Vec<f64>]) -> f64 {
    let start = Instant::now();
    let answers = pool.serve(requests);
    let elapsed = start.elapsed().as_nanos() as f64 / requests.len() as f64;
    assert!(
        answers.iter().all(Result::is_ok),
        "every timed request must be answered"
    );
    elapsed
}

/// Extracts `"<key>": <number>` from the checked-in budget file
/// (hand-parsed; the vendored serde shim serializes only).
fn load_budget(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let quoted = format!("\"{key}\"");
    let after_key = &text[text.find(&quoted)? + quoted.len()..];
    let value = after_key.trim_start().strip_prefix(':')?.trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_faults.json".to_string());
    let budget_path = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "FAULT_BUDGET.json".to_string());
    let transient_events = if quick { 8 } else { 24 };
    let horizon: u64 = if quick { 120 } else { 360 };
    let interval: u64 = 10;
    let request_count = if quick { 2_000 } else { 10_000 };

    let budget = |key: &str| {
        load_budget(&budget_path, key).unwrap_or_else(|| {
            eprintln!(
                "could not read {key} from {budget_path}; \
                 regenerate FAULT_BUDGET.json or pass --budget PATH"
            );
            std::process::exit(1);
        })
    };
    let max_detection_periods = budget("max_detection_periods");
    let max_repair_pulses_per_cell = budget("max_repair_pulses_per_cell");
    let min_healed_retention = budget("min_healed_retention");

    println!(
        "faults: {transient_events}+2 chaos events over {horizon} ticks, scrub every \
         {interval} ticks, {request_count} timed requests per pool ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let dataset = iris_like(42).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).expect("split");
    let config = EngineConfig::febim_default();
    let shape = TileShape::new(2, 24).expect("shape").with_spare_rows(2);
    let schedule = chaos_schedule(4242, transient_events, horizon);
    let faults_scheduled = schedule.events().len();

    // 1 + 2. Detection latency and repair cost: the scrubbed chaos
    // campaign. After every check the engine's worst effective threshold
    // shift must be zero — a surviving defect extends the observed
    // detection latency past one period.
    let mut engine =
        FebimEngine::fit_tiled(&split.train, config.clone(), shape).expect("fabric engine");
    let fresh_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;
    engine.set_fault_schedule(schedule.clone());
    let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(interval, 1e-6)).expect("scheduler");
    let mut dirty_streak = 0u64;
    let mut worst_streak = 0u64;
    let mut elapsed = 0u64;
    while elapsed < horizon + interval {
        scheduler.tick(&mut engine, interval).expect("scrub tick");
        elapsed += interval;
        if engine.worst_effective_shift() > 0.0 {
            dirty_streak += 1;
            worst_streak = worst_streak.max(dirty_streak);
        } else {
            dirty_streak = 0;
        }
    }
    let detection_periods = 1 + worst_streak;
    assert_eq!(engine.pending_faults(), 0, "the chaos horizon must elapse");
    assert_ne!(
        scheduler.health(),
        ReplicaHealth::Quarantined,
        "two spare rows per tile must absorb the two permanent hits"
    );
    let report = scheduler.report().clone();
    let faults_detected = report.outcome.reports.len();
    let repair_pulses_per_cell =
        report.outcome.pulses_applied as f64 / (report.outcome.cells_repaired.max(1)) as f64;
    println!(
        "chaos: {faults_detected}/{faults_scheduled} scheduled events detected as defects \
         ({} checks, {} epoch-skips), {} cells repaired, {} rows remapped",
        report.checks,
        report.skipped_checks,
        report.outcome.cells_repaired,
        report.outcome.rows_remapped,
    );
    println!(
        "detection: worst latency {detection_periods} scrub period(s) \
         (budget {max_detection_periods:.0}); repair: {} pulses, {:.3e} J, \
         {repair_pulses_per_cell:.2} pulses/cell (budget {max_repair_pulses_per_cell:.0})",
        report.outcome.pulses_applied, report.outcome.energy_joules,
    );
    assert!(
        (detection_periods as f64) <= max_detection_periods,
        "a defect outlived the scrub that closed its strike window \
         ({detection_periods} periods > budget {max_detection_periods})"
    );
    assert!(
        repair_pulses_per_cell <= max_repair_pulses_per_cell,
        "repair cost regressed past the checked-in budget \
         ({repair_pulses_per_cell:.2} pulses/cell > {max_repair_pulses_per_cell})"
    );

    // 3. Accuracy restoration: strike everything on a second engine with
    // no scrubbing, then heal it with one pass.
    let mut struck =
        FebimEngine::fit_tiled(&split.train, config.clone(), shape).expect("struck engine");
    struck.set_fault_schedule(schedule);
    struck.advance_time(horizon + 1);
    let faulted_accuracy = struck.evaluate(&split.test).expect("evaluate").accuracy;
    let outcome = struck.scrub(1e-6).expect("healing scrub");
    assert!(outcome.fully_repaired(), "spares must cover the chaos");
    let healed_accuracy = struck.evaluate(&split.test).expect("evaluate").accuracy;
    let healed_retention = healed_accuracy / fresh_accuracy;
    println!(
        "accuracy: fresh {fresh_accuracy:.4} -> faulted {faulted_accuracy:.4} -> healed \
         {healed_accuracy:.4} (retention {healed_retention:.4}, budget \
         {min_healed_retention:.2})"
    );
    assert!(
        healed_retention >= min_healed_retention,
        "healing must restore the fresh accuracy \
         ({healed_retention} < {min_healed_retention})"
    );

    // 4. Failover overhead: a healthy 2-replica pool vs the same pool
    // serving through one survivor after a quarantine.
    let requests = request_stream(&split.test, request_count);
    let reference = FebimEngine::fit(&split.train, config.clone()).expect("reference engine");
    let healthy_engine = FebimEngine::fit(&split.train, config.clone()).expect("healthy engine");
    let serving_config = ServingConfig::febim_default()
        .with_max_batch(8)
        .with_queue_depth(64)
        .with_scrub(ScrubPolicy::new(1_000_000, 1e-3));
    let healthy_pool =
        ServingPool::replicate(&healthy_engine, 2, serving_config).expect("healthy pool");
    let healthy_ns = measure_pool(&healthy_pool, &requests);
    healthy_pool.shutdown();

    let mut quarantine_me = FebimEngine::fit(&split.train, config).expect("doomed engine");
    quarantine_me.set_fault_schedule(FaultSchedule::new(vec![ScheduledFault {
        at_tick: 1,
        row: 1,
        column: 3,
        kind: FaultKind::StuckErased,
        permanent: true,
    }]));
    quarantine_me.advance_time(2);
    let degraded_pool = ServingPool::new(vec![quarantine_me, healthy_engine], serving_config)
        .expect("degraded pool");
    while degraded_pool
        .worker_health()
        .iter()
        .all(|health| health.is_serving())
    {
        degraded_pool.request_scrub();
        std::thread::yield_now();
    }
    assert_eq!(degraded_pool.serving_replicas(), 1);
    let degraded_ns = measure_pool(&degraded_pool, &requests);
    // Spot-check bit-correctness of the survivor's answers.
    for index in 0..split.test.n_samples() {
        let sample = split.test.sample(index).expect("sample");
        let outcome = degraded_pool
            .submit(sample.to_vec())
            .expect("submit")
            .wait()
            .expect("survivor answer");
        assert_eq!(outcome.worker, 1, "the quarantined replica must not serve");
        assert_eq!(
            outcome.prediction,
            reference.predict(sample).expect("reference prediction"),
            "post-quarantine answers must stay bit-correct"
        );
    }
    let degraded_stats = degraded_pool.shutdown();
    let failover_overhead = degraded_ns / healthy_ns;
    println!(
        "failover: healthy {healthy_ns:.1} ns/request, one-survivor {degraded_ns:.1} \
         ns/request ({failover_overhead:.2}x), {} quarantined, {} fallback-served",
        degraded_stats.quarantined_workers, degraded_stats.fallback_served,
    );
    assert_eq!(degraded_stats.quarantined_workers, 1);
    assert!(degraded_stats.scrubs >= 1);
    assert!(degraded_stats.faults_detected >= 1);

    let record = FaultRecord {
        bench: "faults",
        generated_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        faults_scheduled,
        scrub_checks: report.checks,
        scrub_skips: report.skipped_checks,
        faults_detected,
        cells_repaired: report.outcome.cells_repaired,
        rows_remapped: report.outcome.rows_remapped,
        detection_periods,
        max_detection_periods,
        repair_pulses: report.outcome.pulses_applied,
        repair_energy_j: report.outcome.energy_joules,
        repair_pulses_per_cell,
        max_repair_pulses_per_cell,
        fresh_accuracy,
        faulted_accuracy,
        healed_accuracy,
        healed_retention,
        min_healed_retention,
        requests: request_count,
        healthy_ns_per_request: healthy_ns,
        degraded_ns_per_request: degraded_ns,
        failover_overhead,
        quarantined_workers: degraded_stats.quarantined_workers,
        fallback_served: degraded_stats.fallback_served,
    };
    match std::fs::write(&out_path, serde::json::to_string_pretty(&record) + "\n") {
        Ok(()) => println!("(written to {out_path})"),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}
