//! Time-varying non-ideality benchmark: the cost of physical realism and
//! the drift-resilience campaign.
//!
//! Three questions, one record:
//!
//! 1. **What does the ideal mode cost?** An engine configured with
//!    `NonIdealityStack::ideal()` must read through the same epoch-versioned
//!    conductance cache as one with no stack at all — the ideal read path is
//!    the product's hot loop, so its ns/inference is gated against the
//!    checked-in `ideal_ns_per_inference_budget` of `NOISE_BUDGET.json`.
//! 2. **What does realism cost?** The same workload runs with a full
//!    drift + read-disturb + IR-drop stack; the slowdown factor is recorded
//!    (not gated — it is allowed to cost more, it just has to be honest).
//! 3. **Does recalibration work?** A Monte-Carlo noise campaign
//!    (`febim_core::noise_campaign`) measures fresh/aged/recovered accuracy
//!    per severity scenario, and the run asserts the recalibrated array
//!    recovers its fresh accuracy exactly (σ_VTH = 0 reprogramming is
//!    bit-exact) while doing real refresh work.
//!
//! Everything lands in `BENCH_noise.json`: the measured throughputs, the
//! realism overhead factor and the drift-resilience comparison table.
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p febim-bench --bin noise \
//!     [-- --quick] [--out PATH] [--budget PATH]
//! ```
//!
//! `--quick` shortens the measurement (used by the CI bench-smoke step);
//! `--out` overrides the output path (default `BENCH_noise.json`);
//! `--budget` overrides the budget file path (default `NOISE_BUDGET.json`).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde::Serialize;

use febim_compare::ResilienceComparison;
use febim_core::{noise_campaign, EngineConfig, FebimEngine, InferenceBackend, NoiseScenario};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_data::Dataset;
use febim_device::{NonIdealityStack, ReadDisturb, RetentionDrift, WireResistance};
use febim_quant::QuantConfig;

/// The persisted record tracking the realism-cost trajectory.
#[derive(Debug, Serialize)]
struct NoiseRecord {
    bench: &'static str,
    generated_unix_s: u64,
    quick: bool,
    /// Inferences timed per measurement pass.
    inferences: usize,
    /// ns/inference of the ideal-stack engine — the gated hot path.
    ideal_ns_per_inference: f64,
    /// The `ideal_ns_per_inference_budget` the ideal path was gated against.
    ideal_ns_per_inference_budget: f64,
    /// ns/inference with the full drift + disturb + IR-drop stack active.
    noisy_ns_per_inference: f64,
    /// `noisy / ideal` — what physical realism costs on the read path.
    realism_overhead: f64,
    /// Worst accuracy retention across the campaign without recalibration.
    worst_retention_without_refresh: f64,
    /// Worst accuracy retention across the campaign with recalibration
    /// (asserted to be exactly 1.0: σ_VTH = 0 refresh is bit-exact).
    worst_retention_with_refresh: f64,
    /// The drift-resilience campaign table.
    resilience: ResilienceComparison,
}

/// The full-severity stack: retention drift, tier-quantized read disturb and
/// wordline/bitline IR-drop together.
fn severe_stack() -> NonIdealityStack {
    NonIdealityStack::ideal()
        .with_drift(RetentionDrift::new(0.05, 100))
        .with_disturb(ReadDisturb::new(64, 0.002))
        .with_wire(WireResistance::uniform(2.0))
}

/// ns/inference of `engine` over `samples`, best of `passes` passes.
fn measure_reads<B: InferenceBackend>(
    engine: &FebimEngine<B>,
    samples: &[Vec<f64>],
    passes: usize,
) -> f64 {
    let mut scratch = engine.make_scratch();
    let mut best_ns = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for sample in samples {
            engine.infer_into(sample, &mut scratch).expect("infer");
        }
        best_ns = best_ns.min(start.elapsed().as_nanos() as f64 / samples.len() as f64);
    }
    best_ns
}

/// Request stream: the test split cycled up to `count` samples.
fn request_stream(test: &Dataset, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|index| {
            test.sample(index % test.n_samples())
                .expect("sample")
                .to_vec()
        })
        .collect()
}

/// Extracts `"ideal_ns_per_inference_budget": <number>` from the checked-in
/// budget file (hand-parsed; the vendored serde shim serializes only).
fn load_budget(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"ideal_ns_per_inference_budget\"";
    let after_key = &text[text.find(key)? + key.len()..];
    let value = after_key.trim_start().strip_prefix(':')?.trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_noise.json".to_string());
    let budget_path = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "NOISE_BUDGET.json".to_string());
    let inferences = if quick { 4_000 } else { 20_000 };
    let passes = if quick { 3 } else { 5 };
    let epochs = if quick { 2 } else { 8 };

    println!(
        "noise: timing the ideal vs non-ideal read path over {inferences} inferences \
         and running a {epochs}-epoch drift-resilience campaign ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let dataset = iris_like(42).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).expect("split");
    let samples = request_stream(&split.test, inferences);

    // 1. The gated hot path: an ideal-stack engine reads through the cached
    //    conductances with zero non-ideality bookkeeping on the hot loop.
    let ideal_config = EngineConfig::febim_default().with_non_idealities(NonIdealityStack::ideal());
    let ideal_engine = FebimEngine::fit(&split.train, ideal_config).expect("ideal engine");
    let mut ideal_ns = measure_reads(&ideal_engine, &samples, passes);

    // 2. The realism cost: the same reads with the full severity stack, aged
    //    far enough that drift, disturb tiers and IR-drop are all active.
    let noisy_config = EngineConfig::febim_default().with_non_idealities(severe_stack());
    let mut noisy_engine = FebimEngine::fit(&split.train, noisy_config).expect("noisy engine");
    noisy_engine.advance_time(100_000);
    let noisy_ns = measure_reads(&noisy_engine, &samples, passes);

    // 3. The drift-resilience campaign: fresh vs aged vs recovered accuracy
    //    per severity scenario, with the refresh work priced by the Preisach
    //    programming model.
    let scenarios = [
        NoiseScenario::new("ideal", NonIdealityStack::ideal(), 100_000),
        NoiseScenario::new(
            "drift-only",
            NonIdealityStack::ideal().with_drift(RetentionDrift::new(0.05, 100)),
            100_000,
        ),
        NoiseScenario::new("drift+disturb+ir", severe_stack(), 100_000),
    ];
    let points = noise_campaign(
        &dataset,
        &EngineConfig::febim_default(),
        &[QuantConfig::febim_optimal()],
        &scenarios,
        1e-6,
        0.7,
        epochs,
        42,
    )
    .expect("noise campaign");
    let resilience = ResilienceComparison::from_points(&points);
    println!("{}", resilience.to_table().to_pretty());

    let worst_without = resilience
        .worst_retention_without_refresh()
        .expect("campaign rows");
    let worst_with = resilience
        .worst_retention_with_refresh()
        .expect("campaign rows");
    println!(
        "resilience: worst retention {worst_without:.4} unrefreshed, {worst_with:.4} recalibrated"
    );
    assert!(
        (worst_with - 1.0).abs() < 1e-12,
        "recalibration must restore the fresh accuracy exactly under sigma=0 reprogramming \
         (measured {worst_with})"
    );
    assert!(
        points
            .iter()
            .filter(|point| point.label != "ideal")
            .all(|point| point.refresh.cells_refreshed > 0),
        "every drifted scenario must do real refresh work"
    );

    // Throughput gate: the ideal read path is the product's hot loop, so it
    // must hold the checked-in ns/inference budget. Re-measure with fresh
    // passes before failing a noisy run on a loaded host.
    let budget = load_budget(&budget_path).unwrap_or_else(|| {
        eprintln!(
            "could not read ideal_ns_per_inference_budget from {budget_path}; \
             regenerate NOISE_BUDGET.json or pass --budget PATH"
        );
        std::process::exit(1);
    });
    for attempt in 0..3 {
        if ideal_ns <= budget {
            break;
        }
        println!(
            "re-measuring the ideal read path (attempt {}, {:.1} ns vs {:.1} ns budget)",
            attempt + 1,
            ideal_ns,
            budget
        );
        ideal_ns = ideal_ns.min(measure_reads(&ideal_engine, &samples, passes + 1));
    }
    let realism_overhead = noisy_ns / ideal_ns;
    println!(
        "throughput: ideal {ideal_ns:.1} ns/inference (budget {budget:.1} ns), \
         full stack {noisy_ns:.1} ns/inference ({realism_overhead:.2}x)"
    );
    assert!(
        ideal_ns <= budget,
        "the ideal-mode read throughput regressed past the checked-in budget \
         ({ideal_ns:.1} ns > {budget:.1} ns); fix the regression or re-baseline NOISE_BUDGET.json"
    );

    let record = NoiseRecord {
        bench: "noise",
        generated_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        inferences,
        ideal_ns_per_inference: ideal_ns,
        ideal_ns_per_inference_budget: budget,
        noisy_ns_per_inference: noisy_ns,
        realism_overhead,
        worst_retention_without_refresh: worst_without,
        worst_retention_with_refresh: worst_with,
        resilience,
    };
    match std::fs::write(&out_path, serde::json::to_string_pretty(&record) + "\n") {
        Ok(()) => println!("(written to {out_path})"),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}
