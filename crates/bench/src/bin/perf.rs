//! Before/after performance record of the inference hot path.
//!
//! Measures the conductance-cached, zero-allocation read/inference path
//! ("after") against the uncached dense reference path that re-evaluates the
//! FeFET I-V model per cell ("before" — the pre-cache implementation), and
//! writes the results to a JSON record so the repository's perf trajectory
//! accumulates over time.
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p febim-bench --bin perf [-- --quick] [--out PATH]
//! ```
//!
//! `--quick` shortens the measurement window (used by the CI bench-smoke
//! step); `--out` overrides the output path (default `BENCH_inference.json`
//! in the current directory).

use std::hint::black_box;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::Serialize;

use febim_bench::{eng, measure_min_ns as measure};
use febim_core::{EngineConfig, FebimEngine};
use febim_crossbar::{Activation, CrossbarArray, CrossbarLayout, ProgrammingMode};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_device::LevelProgrammer;

/// One measured workload: nanoseconds per iteration before and after.
#[derive(Debug, Serialize)]
struct Record {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
    speedup: f64,
}

impl Record {
    fn new(name: &'static str, before_ns: f64, after_ns: f64) -> Self {
        Self {
            name,
            before_ns,
            after_ns,
            speedup: before_ns / after_ns,
        }
    }
}

/// The persisted perf record (serialized to JSON by the `serde` shim).
#[derive(Debug, Serialize)]
struct PerfRecord {
    bench: &'static str,
    generated_unix_s: u64,
    quick: bool,
    workloads: Vec<Record>,
}

/// Builds the Fig. 6-scale stress array: 64 wordlines, 32 evidence nodes of
/// 16 levels each (512 bitlines), programmed with the staggered pattern of
/// the scalability sweeps.
fn fig6_array() -> CrossbarArray {
    let layout = CrossbarLayout::new(64, 32, 16, false).expect("layout");
    let programmer = LevelProgrammer::febim_default(10).expect("programmer");
    let mut array = CrossbarArray::new(layout, programmer);
    for row in 0..64 {
        for column in 0..array.layout().columns() {
            array
                .program_cell(row, column, (row + column) % 10, ProgrammingMode::Ideal)
                .expect("program");
        }
    }
    array
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_inference.json".to_string());
    let target = if quick {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(400)
    };

    println!(
        "perf: measuring cached sparse read path vs. uncached dense reference ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    // Iris-like workload: the paper's 3×64 crossbar.
    let dataset = iris_like(42).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).expect("split");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let sample = split.test.sample(0).expect("sample").to_vec();
    let mut scratch = engine.make_scratch();

    // The "before" path replicates the pre-cache implementation: allocate the
    // evidence vector and activation per sample, run the dense per-cell
    // device-model read, then the allocating sensing chain.
    let infer_reference = |sample: &[f64]| -> usize {
        let evidence = engine.quantized().discretize_sample(sample).expect("bins");
        let activation =
            Activation::from_observation(engine.array().layout(), &evidence).expect("activation");
        let currents = engine
            .array()
            .wordline_currents_reference(&activation)
            .expect("read");
        engine
            .sensing()
            .sense(&currents, activation.len())
            .expect("sense")
            .winner
    };

    // Sanity: both paths agree before we time them.
    assert_eq!(
        infer_reference(&sample),
        engine
            .infer_into(&sample, &mut scratch)
            .expect("infer")
            .prediction
    );

    let single = Record::new(
        "inference_single_sample/in_memory_engine",
        measure(
            || {
                black_box(infer_reference(black_box(&sample)));
            },
            target,
        ),
        measure(
            || {
                black_box(
                    engine
                        .infer_into(black_box(&sample), &mut scratch)
                        .expect("infer"),
                );
            },
            target,
        ),
    );

    let full_set = Record::new(
        "inference_full_test_set/in_memory_engine",
        measure(
            || {
                let mut correct = 0usize;
                for (sample, label) in split.test.iter() {
                    if infer_reference(sample) == label {
                        correct += 1;
                    }
                }
                black_box(correct);
            },
            target,
        ),
        measure(
            || {
                black_box(engine.evaluate(black_box(&split.test)).expect("evaluate"));
            },
            target,
        ),
    );

    // Fig. 6-scale layout: 64×512 reads, sparse observation and all-columns.
    let array = fig6_array();
    let evidence: Vec<usize> = (0..32).map(|node| node % 16).collect();
    let sparse = Activation::from_observation(array.layout(), &evidence).expect("activation");
    let all = Activation::all_columns(array.layout());
    let mut currents = array.wordline_currents(&sparse).expect("warm-up");
    assert_eq!(
        array.wordline_currents(&all).expect("cached"),
        array.wordline_currents_reference(&all).expect("reference")
    );

    let fig6_sparse = Record::new(
        "fig6_read_64x512/sparse_observation",
        measure(
            || {
                black_box(
                    array
                        .wordline_currents_reference(black_box(&sparse))
                        .expect("read"),
                );
            },
            target,
        ),
        measure(
            || {
                array
                    .wordline_currents_into(black_box(&sparse), &mut currents)
                    .expect("read");
                black_box(&currents);
            },
            target,
        ),
    );

    let fig6_all = Record::new(
        "fig6_read_64x512/all_columns",
        measure(
            || {
                black_box(
                    array
                        .wordline_currents_reference(black_box(&all))
                        .expect("read"),
                );
            },
            target,
        ),
        measure(
            || {
                array
                    .wordline_currents_into(black_box(&all), &mut currents)
                    .expect("read");
                black_box(&currents);
            },
            target,
        ),
    );

    let records = vec![single, full_set, fig6_sparse, fig6_all];
    for record in &records {
        println!(
            "{:<45} before {:>12}  after {:>12}  speedup {:>8.1}x",
            record.name,
            eng(record.before_ns * 1e-9, "s"),
            eng(record.after_ns * 1e-9, "s"),
            record.speedup,
        );
    }

    let record = PerfRecord {
        bench: "inference",
        generated_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        workloads: records,
    };
    match std::fs::write(&out_path, serde::json::to_string_pretty(&record) + "\n") {
        Ok(()) => println!("\n(written to {out_path})"),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}
