//! Regenerates Fig. 4: (a) the truncation → log → normalization → quantization
//! → I_DS mapping of an example probability column, and (b) the gate pulse
//! number required to program each FeFET state.

use febim_bench::{emit, eng};
use febim_core::Table;
use febim_quant::{column_normalized, truncated_log, LevelCurrentMap, UniformQuantizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 4(a): the paper's illustrative example uses probabilities spanning
    // [0.001, 1.0], a truncation floor of 0.1, 10 quantization levels and the
    // 0.1 uA - 1.0 uA current window.
    let probabilities = [1.0, 0.75, 0.5, 0.35, 0.25, 0.18, 0.12, 0.08, 0.03, 0.001];
    let floor = 0.1;
    let logs: Vec<f64> = probabilities
        .iter()
        .map(|&p| truncated_log(p, floor))
        .collect();
    let normalized = column_normalized(&logs);
    let low = normalized.iter().copied().fold(f64::INFINITY, f64::min);
    let quantizer = UniformQuantizer::new(low, 1.0, 10)?;
    let current_map = LevelCurrentMap::febim_default(10)?;

    let mut mapping = Table::new(
        "fig4a_probability_mapping",
        &["p", "p_truncated_log", "p_prime", "level", "ids_a"],
    );
    for (index, &p) in probabilities.iter().enumerate() {
        let level = quantizer.quantize(normalized[index]);
        mapping.push_numeric_row(&[
            p,
            logs[index],
            normalized[index],
            level as f64,
            current_map.current_for_level(level)?,
        ]);
    }
    emit(&mapping);
    println!(
        "normalized log-probability range: [{:.2}, 1.00] (paper: [-1.3, 1.0])",
        low
    );

    // Fig. 4(b): pulse count vs programmed state for the ten-level window.
    let states = current_map.programmed_states()?;
    let mut pulses = Table::new(
        "fig4b_pulse_count_vs_state",
        &["level", "target_ids_a", "polarization", "gate_pulse_count"],
    );
    for state in &states {
        pulses.push_numeric_row(&[
            state.level as f64,
            state.target_current,
            state.polarization.value(),
            state.write_config.pulse_count as f64,
        ]);
    }
    emit(&pulses);
    println!(
        "pulse count range: {} pulses for {} up to {} pulses for {} (paper: ~40 to ~70)",
        states.first().unwrap().write_config.pulse_count,
        eng(states.first().unwrap().target_current, "A"),
        states.last().unwrap().write_config.pulse_count,
        eng(states.last().unwrap().target_current, "A"),
    );
    Ok(())
}
