//! Regenerates Fig. 8: (a) the iris accuracy heat map over the feature and
//! likelihood quantization precisions, (b) the programmed 3×64 crossbar state
//! map at the chosen Q_f = 4 / Q_l = 2 operating point, and (c) the accuracy
//! distribution under FeFET threshold-voltage variation.

use febim_bench::{emit, eng};
use febim_core::{epoch_accuracy, variation_sweep, EngineConfig, FebimEngine, Table};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_quant::QuantConfig;

fn epochs() -> usize {
    std::env::var("FEBIM_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = iris_like(8000)?;
    let epochs = epochs();
    println!("averaging over {epochs} train/inference epochs per point\n");

    // Fig. 8(a): accuracy heat map over (Q_f, Q_l) in [1, 8]^2 for the
    // in-memory iris classifier, plus the software baseline for the Δacc
    // comparison.
    let mut heatmap = Table::new(
        "fig8a_accuracy_heatmap",
        &[
            "qf_bits",
            "ql_bits",
            "in_memory_accuracy",
            "software_baseline",
            "delta_acc",
        ],
    );
    let mut baseline_at_operating_point = 0.0;
    let mut accuracy_at_operating_point = 0.0;
    for qf in 1..=8u32 {
        for ql in 1..=8u32 {
            let config = EngineConfig::febim_default().with_quant(QuantConfig::new(qf, ql));
            let result =
                epoch_accuracy(&dataset, &config, 0.7, epochs, 8100 + (qf * 8 + ql) as u64)?;
            let delta = result.software.mean - result.in_memory.mean;
            heatmap.push_numeric_row(&[
                qf as f64,
                ql as f64,
                result.in_memory.mean,
                result.software.mean,
                delta,
            ]);
            if qf == 4 && ql == 2 {
                baseline_at_operating_point = result.software.mean;
                accuracy_at_operating_point = result.in_memory.mean;
            }
        }
    }
    emit(&heatmap);
    println!(
        "operating point Q_f = 4 bit / Q_l = 2 bit: in-memory accuracy {:.2} % vs software {:.2} % (paper: 94.64 %)",
        100.0 * accuracy_at_operating_point,
        100.0 * baseline_at_operating_point
    );

    // Fig. 8(b): programmed crossbar state map (read currents) at the chosen
    // operating point.
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(8000))?;
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
    let map = engine.current_map();
    let mut state_map = Table::new(
        "fig8b_crossbar_state_map",
        &["row", "column", "ids_a", "level"],
    );
    let levels = engine.program().levels();
    for (row, currents) in map.iter().enumerate() {
        for (column, &current) in currents.iter().enumerate() {
            let level = levels[row][column].map(|l| l as f64).unwrap_or(-1.0);
            state_map.push_numeric_row(&[row as f64, column as f64, current, level]);
        }
    }
    emit(&state_map);
    println!(
        "crossbar geometry: {} rows x {} columns, read currents between {} and {}",
        map.len(),
        map[0].len(),
        eng(
            map.iter().flatten().copied().fold(f64::INFINITY, f64::min),
            "A"
        ),
        eng(
            map.iter()
                .flatten()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            "A"
        )
    );

    // Fig. 8(c): accuracy distribution vs σ_VTH.
    let sigmas = [0.0, 15.0, 30.0, 45.0];
    let points = variation_sweep(
        &dataset,
        &EngineConfig::febim_default(),
        &sigmas,
        0.7,
        epochs,
        8300,
    )?;
    let mut variation = Table::new(
        "fig8c_accuracy_vs_variation",
        &[
            "sigma_vth_mv",
            "mean_accuracy",
            "std_accuracy",
            "min_accuracy",
            "max_accuracy",
        ],
    );
    for point in &points {
        variation.push_numeric_row(&[
            point.sigma_vth_mv,
            point.stats.mean,
            point.stats.std_dev,
            point.stats.min,
            point.stats.max,
        ]);
    }
    emit(&variation);
    let drop = points.first().unwrap().stats.mean - points.last().unwrap().stats.mean;
    println!(
        "mean accuracy drop at sigma_VTH = 45 mV: {:.2} percentage points (paper: ~5 %)",
        100.0 * drop
    );
    Ok(())
}
