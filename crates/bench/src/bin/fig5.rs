//! Regenerates Fig. 5: (a)/(b) theoretical vs circuit-computed wordline
//! current for two cells storing P'_a and P'_b, and (c) the WTA transient
//! separating winner from loser in under 300 ps.

use febim_bench::{emit, eng};
use febim_circuit::{SensingChain, TransientConfig};
use febim_core::Table;
use febim_crossbar::{Activation, CrossbarArray, CrossbarLayout, ProgrammingMode};
use febim_device::LevelProgrammer;
use febim_quant::UniformQuantizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 5(a)/(b): sweep P'_a and P'_b over the paper's [-1.3, 1.0] range
    // (10 levels each), program two cells on the same wordline and compare the
    // accumulated wordline current against the sum of the target currents.
    let levels = 10usize;
    let quantizer = UniformQuantizer::new(-1.3, 1.0, levels)?;
    let programmer = LevelProgrammer::febim_default(levels)?;
    let layout = CrossbarLayout::new(1, 2, levels, false)?;

    let mut sweep = Table::new(
        "fig5ab_two_cell_accumulation",
        &[
            "p_prime_a",
            "p_prime_b",
            "iwl_theoretical_a",
            "iwl_simulated_a",
            "relative_error",
        ],
    );
    let mut worst_error = 0.0f64;
    for level_a in 0..levels {
        for level_b in 0..levels {
            let mut array = CrossbarArray::new(layout, programmer.clone());
            array.program_cell(0, level_a, level_a, ProgrammingMode::Ideal)?;
            array.program_cell(0, levels + level_b, level_b, ProgrammingMode::Ideal)?;
            let activation =
                Activation::from_columns(array.layout(), &[level_a, levels + level_b])?;
            let simulated = array.wordline_current(0, &activation)?;
            let theoretical =
                programmer.target_current(level_a)? + programmer.target_current(level_b)?;
            let error = (simulated - theoretical).abs() / theoretical;
            worst_error = worst_error.max(error);
            sweep.push_numeric_row(&[
                quantizer.dequantize(level_a)?,
                quantizer.dequantize(level_b)?,
                theoretical,
                simulated,
                error,
            ]);
        }
    }
    emit(&sweep);
    println!(
        "worst-case relative mismatch between theoretical and simulated I_WL: {:.3} % (paper: exact match)",
        100.0 * worst_error
    );

    // Fig. 5(c): WTA transient for two wordlines at 0.2 uA and 2.0 uA (and the
    // reverse), sampled over 400 ps.
    let chain = SensingChain::febim_calibrated();
    let config = TransientConfig::new(5e-12, 400e-12)?;
    let mut transient = Table::new(
        "fig5c_wta_transient",
        &[
            "time_s",
            "iout_winner_case1_a",
            "iout_loser_case1_a",
            "iout_winner_case2_a",
            "iout_loser_case2_a",
        ],
    );
    let case1 = chain.transient(&[2.0e-6, 0.2e-6], &config)?;
    let case2 = chain.transient(&[0.2e-6, 2.0e-6], &config)?;
    for index in 0..case1.outputs[0].points.len() {
        transient.push_numeric_row(&[
            case1.outputs[0].points[index].time,
            case1.outputs[0].points[index].value,
            case1.outputs[1].points[index].value,
            case2.outputs[1].points[index].value,
            case2.outputs[0].points[index].value,
        ]);
    }
    emit(&transient);
    println!(
        "case 1 (I_WL1 > I_WL2): winner row {}, settling {}",
        case1.decision.winner,
        eng(case1.decision.settling_time, "s")
    );
    println!(
        "case 2 (I_WL2 > I_WL1): winner row {}, settling {}",
        case2.decision.winner,
        eng(case2.decision.settling_time, "s")
    );

    // Worst-case gap inside the Fig. 5(c) current range.
    let worst = chain.sense(&[0.2e-6, 0.3e-6], 2)?;
    println!(
        "worst-case (0.1 uA gap) WTA resolution: {} (paper: < 300 ps)",
        eng(worst.decision.settling_time, "s")
    );
    Ok(())
}
