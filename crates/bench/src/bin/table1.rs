//! Regenerates Table 1: the cross-technology comparison between FeBiM and
//! prior NVM-based Bayesian inference hardware, with the FeBiM row derived
//! from an actual engine run on the iris-like GNBC workload.

use febim_bench::{emit, eng};
use febim_compare::ComparisonTable;
use febim_core::{performance_metrics, EngineConfig, FebimEngine, MetricsConfig, Table};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build and evaluate the iris-GNBC engine at the paper's operating point.
    let dataset = iris_like(9000)?;
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(9000))?;
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
    let report = engine.evaluate(&split.test)?;
    let metrics = performance_metrics(
        engine.program(),
        &report,
        &MetricsConfig::febim_calibrated(),
    )?;
    println!(
        "iris-GNBC run: accuracy {:.2} %, mean energy {} per inference, delay {}",
        100.0 * report.accuracy,
        eng(metrics.energy_per_inference, "J"),
        eng(report.mean_delay, "s")
    );

    let comparison = ComparisonTable::from_metrics(&metrics);
    let mut table = Table::new(
        "table1_comparison",
        &[
            "reference",
            "technology",
            "device_usage",
            "cell_configuration",
            "clk_per_inference",
            "storage_density_mb_mm2",
            "computing_density_mo_mm2",
            "efficiency_tops_w",
        ],
    );
    for entry in &comparison.entries {
        table.push_row(&[
            entry.name.clone(),
            entry.technology.clone(),
            format!("{:?}", entry.device_usage),
            format!("{:?}", entry.cell_configuration),
            entry
                .clock_cycles_per_inference
                .map(|v| format!("{v}"))
                .unwrap_or_else(|| "-".to_string()),
            entry
                .storage_density_mb_per_mm2
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string()),
            entry
                .computing_density_mo_per_mm2
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".to_string()),
            entry
                .efficiency_tops_per_watt
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    emit(&table);

    let improvements = comparison.improvements();
    let published = ComparisonTable::published().improvements();
    let mut ratios = Table::new(
        "table1_improvement_ratios",
        &["metric", "measured_ratio", "paper_ratio"],
    );
    ratios.push_row(&[
        "storage density vs memristor Bayesian machine".to_string(),
        format!(
            "{:.1}x",
            improvements.storage_density_vs_sota.unwrap_or(f64::NAN)
        ),
        format!(
            "{:.1}x",
            published.storage_density_vs_sota.unwrap_or(f64::NAN)
        ),
    ]);
    ratios.push_row(&[
        "efficiency vs memristor Bayesian machine".to_string(),
        format!(
            "{:.1}x",
            improvements.efficiency_vs_sota.unwrap_or(f64::NAN)
        ),
        format!("{:.1}x", published.efficiency_vs_sota.unwrap_or(f64::NAN)),
    ]);
    ratios.push_row(&[
        "computing density vs best RNG design".to_string(),
        format!(
            "{:.1}x",
            improvements.computing_density_vs_rng.unwrap_or(f64::NAN)
        ),
        format!(
            "{:.1}x",
            published.computing_density_vs_rng.unwrap_or(f64::NAN)
        ),
    ]);
    emit(&ratios);
    Ok(())
}
