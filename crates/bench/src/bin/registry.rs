//! Multi-tenant registry benchmark: a fleet of tile-grid banks hosting
//! more models than it has capacity for, served through per-request model
//! routing with hot-swap reprogramming.
//!
//! Five iris-scale tenants are registered onto a two-bank fleet sized for
//! four, so the fifth registration evicts the least-recently-served tenant
//! and later requests for cold models fault them back in — every install,
//! eviction and fault-in a priced pulse train on the fabric. The bench
//! measures, per tenant:
//!
//! * the **dedicated baseline** — the tenant's own engine answering its
//!   request stream one sample at a time (`infer_into`);
//! * the **registry path** — the same stream through
//!   `ModelRegistry::serve`, with routing, queueing, ticket completion and
//!   any fault-in swaps included;
//!
//! and verifies the two are **bit-identical** (prediction, tie-break,
//! delay and energy) before trusting any timing — the consolidation
//! contract: sharing the fleet never changes an answer. A concurrent
//! tenant-mix phase then serves every resident tenant from its own client
//! thread at once (distinct banks serve in parallel; same-bank tenants
//! interleave), and a snapshot/restore phase round-trips one tenant
//! through the JSON serde shim into a fresh fleet and re-verifies
//! bit-identity against the original engine.
//!
//! Two gates run on every invocation (CI included, via `--quick`):
//!
//! * **identity gate**: every tenant row must be bit-identical to its
//!   dedicated engine (hard assert, no tolerance);
//! * **budget gate**: the best per-tenant registry ns/request must stay at
//!   or under the checked-in `registry_ns_per_request_budget` of
//!   `REGISTRY_BUDGET.json`, re-measured with fresh passes before failing
//!   so one noisy sweep on a loaded host doesn't flake CI.
//!
//! The tenant table, the placements (with their swap pulse/energy prices),
//! the fleet's swap telemetry and the gate outcomes land in
//! `BENCH_registry.json`.
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p febim-bench --bin registry \
//!     [-- --quick] [--out PATH] [--budget PATH]
//! ```

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde::Serialize;

use febim_compare::{RegistryComparison, TenantMeasurement};
use febim_core::{
    EngineConfig, FebimEngine, InferenceStep, ModelRegistry, RegistryConfig, RegistryReport,
    TenantPlacement, TiledFabricBackend,
};
use febim_crossbar::TileShape;
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_data::Dataset;

/// The persisted record tracking the multi-tenant serving trajectory.
#[derive(Debug, Serialize)]
struct RegistryRecord {
    bench: &'static str,
    generated_unix_s: u64,
    quick: bool,
    tenants: usize,
    banks: usize,
    tiles_per_bank: usize,
    requests_per_tenant: usize,
    /// Where each registration landed, with the swap (erase + program
    /// pulse trains) that placed it.
    placements: Vec<TenantPlacement>,
    comparison: RegistryComparison,
    /// Fleet occupancy after the serial sweep (before shutdown).
    occupancy: RegistryReport,
    /// Wall-clock ns/request of the concurrent tenant mix (every resident
    /// tenant served from its own client thread at once).
    mixed_ns_per_request: f64,
    /// Resident tenants the concurrent mix spanned.
    mixed_tenants: usize,
    /// Smallest per-tenant registry ns/request — the budget-gate headline.
    best_registry_ns_per_request: f64,
    /// The `registry_ns_per_request_budget` the headline was gated against.
    registry_ns_per_request_budget: f64,
    /// Whether the snapshot/restore round trip served bit-identically.
    snapshot_round_trip_bit_identical: bool,
}

struct Tenant {
    id: u64,
    engine: FebimEngine<TiledFabricBackend>,
    samples: Vec<Vec<f64>>,
    reference: Vec<InferenceStep>,
    dedicated_ns: f64,
}

/// Request stream: the test split cycled up to `count` samples.
fn request_stream(test: &Dataset, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|index| {
            test.sample(index % test.n_samples())
                .expect("sample")
                .to_vec()
        })
        .collect()
}

/// Fits one tenant and measures its dedicated sequential baseline (best of
/// `passes` passes), keeping the per-sample reference steps for the
/// bit-identity gate.
fn build_tenant(id: u64, seed: u64, requests: usize, passes: usize) -> Tenant {
    let dataset = iris_like(seed).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).expect("split");
    let engine = FebimEngine::fit_tiled(
        &split.train,
        EngineConfig::febim_default(),
        TileShape::new(2, 24).expect("tile shape"),
    )
    .expect("tiled engine");
    let samples = request_stream(&split.test, requests);
    let mut scratch = engine.make_scratch();
    let reference: Vec<InferenceStep> = samples
        .iter()
        .map(|sample| engine.infer_into(sample, &mut scratch).expect("infer"))
        .collect();
    let mut dedicated_ns = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for sample in &samples {
            engine.infer_into(sample, &mut scratch).expect("infer");
        }
        dedicated_ns = dedicated_ns.min(start.elapsed().as_nanos() as f64 / samples.len() as f64);
    }
    Tenant {
        id,
        engine,
        samples,
        reference,
        dedicated_ns,
    }
}

/// Serves one tenant's stream through the registry (best of `passes`
/// passes), verifying every answer bit-for-bit against the dedicated
/// engine's reference steps.
fn measure_registry(registry: &ModelRegistry, tenant: &Tenant, passes: usize) -> (f64, bool) {
    let mut best_ns = f64::INFINITY;
    let mut identical = true;
    for _ in 0..passes {
        let start = Instant::now();
        let answers = registry.serve_many(tenant.id, &tenant.samples);
        best_ns = best_ns.min(start.elapsed().as_nanos() as f64 / tenant.samples.len() as f64);
        for (answer, step) in answers.iter().zip(&tenant.reference) {
            let outcome = answer.as_ref().expect("served answer");
            identical &= outcome.prediction == step.prediction
                && outcome.tie_broken == step.tie_broken
                && outcome.delay == step.delay
                && outcome.energy == step.energy;
        }
    }
    (best_ns, identical)
}

/// Extracts `"registry_ns_per_request_budget": <number>` from the
/// checked-in budget file (parsed by hand, same as the other bench bins).
fn load_budget(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"registry_ns_per_request_budget\"";
    let after_key = &text[text.find(key)? + key.len()..];
    let value = after_key.trim_start().strip_prefix(':')?.trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_registry.json".to_string());
    let budget_path = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "REGISTRY_BUDGET.json".to_string());
    let requests = if quick { 300 } else { 2_000 };
    let passes = if quick { 2 } else { 3 };
    const TENANTS: usize = 5;

    println!(
        "registry: {TENANTS} tenants on a 2-bank fleet sized for 4, {requests} requests/tenant \
         ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let tenants: Vec<Tenant> = (0..TENANTS)
        .map(|index| build_tenant(index as u64 + 1, 1000 + index as u64, requests, passes))
        .collect();
    let tiles = tenants[0].engine.tiled_program().plan().tile_count();
    let banks = 2;
    let tiles_per_bank = 2 * tiles;

    // Register every tenant: the fleet holds four, so the fifth install
    // evicts the least-recently-served resident — a priced hot swap.
    let registry =
        ModelRegistry::new(RegistryConfig::new(banks, tiles_per_bank)).expect("registry");
    let mut placements = Vec::with_capacity(TENANTS);
    for tenant in &tenants {
        let placement = registry
            .register_engine(tenant.id, tenant.engine.clone())
            .expect("register");
        let swap = placement.swap.as_ref().expect("install swap");
        println!(
            "registered model {} -> bank {} ({} tiles, evicted {:?}, program {} pulses / {:.3e} J)",
            placement.model,
            placement.bank,
            placement.tiles,
            placement.evicted,
            swap.program.pulses,
            swap.program.energy_j
        );
        placements.push(placement);
    }
    assert!(
        placements.iter().any(|p| !p.evicted.is_empty()),
        "an over-subscribed fleet must evict at least once"
    );

    // Serial sweep: every tenant's stream through the shared fleet, cold
    // tenants faulting back in as their turn comes.
    let mut comparison = RegistryComparison::new();
    for tenant in &tenants {
        let (registry_ns, identical) = measure_registry(&registry, tenant, passes);
        let row = TenantMeasurement {
            model: tenant.id,
            tiles,
            requests: tenant.samples.len() as u64,
            dedicated_ns_per_request: tenant.dedicated_ns,
            registry_ns_per_request: registry_ns,
            overhead_ratio: registry_ns / tenant.dedicated_ns,
            bit_identical: identical,
        };
        println!(
            "model {:<2} dedicated {:>8.1} ns  registry {:>9.1} ns ({:>6.2}x)  bit-identical {}",
            row.model,
            row.dedicated_ns_per_request,
            row.registry_ns_per_request,
            row.overhead_ratio,
            row.bit_identical,
        );
        comparison.push(row);
    }

    // Identity gate: consolidation must never change an answer.
    assert!(
        comparison.all_bit_identical(),
        "a tenant served through the registry diverged from its dedicated engine"
    );

    // Concurrent tenant mix: every currently resident tenant served from
    // its own client thread at once. Residents only — the mix measures
    // shared-fleet serving, not fault-in churn (the serial sweep above
    // already priced that).
    let resident: Vec<&Tenant> = tenants
        .iter()
        .filter(|tenant| registry.residence_of(tenant.id).is_some())
        .collect();
    let mixed_requests: usize = resident.iter().map(|t| t.samples.len()).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tenant in &resident {
            // Capture only the Sync parts: the engine itself (interior
            // tile-grid caches) stays on this thread.
            let (id, samples, reference) = (tenant.id, &tenant.samples, &tenant.reference);
            let registry = &registry;
            scope.spawn(move || {
                let answers = registry.serve_many(id, samples);
                for (answer, step) in answers.iter().zip(reference) {
                    let outcome = answer.as_ref().expect("mixed answer");
                    assert_eq!(
                        outcome.prediction, step.prediction,
                        "mixed-serve divergence"
                    );
                }
            });
        }
    });
    let mixed_ns_per_request = start.elapsed().as_nanos() as f64 / mixed_requests as f64;
    println!(
        "\ntenant mix: {} resident tenants served concurrently at {:.1} ns/request",
        resident.len(),
        mixed_ns_per_request
    );

    // Snapshot/restore round trip: one tenant through the JSON serde shim
    // into a fresh single-bank fleet, re-verified against the original
    // dedicated engine.
    let snapshot = registry.snapshot(tenants[0].id).expect("snapshot");
    let restored_fleet = ModelRegistry::new(RegistryConfig::new(1, tiles)).expect("fresh fleet");
    restored_fleet.restore(&snapshot).expect("restore");
    let (_, snapshot_identical) = measure_registry(&restored_fleet, &tenants[0], 1);
    restored_fleet.shutdown();
    assert!(
        snapshot_identical,
        "a restored model diverged from the engine its snapshot was taken from"
    );
    println!(
        "snapshot round trip: model {} restored bit-identically",
        tenants[0].id
    );

    // Budget gate: the best per-tenant registry ns/request must hold the
    // checked-in budget. Re-measure the fastest tenant with fresh passes
    // before failing a noisy sweep.
    let budget = load_budget(&budget_path).unwrap_or_else(|| {
        eprintln!(
            "could not read registry_ns_per_request_budget from {budget_path}; \
             regenerate REGISTRY_BUDGET.json or pass --budget PATH"
        );
        std::process::exit(1);
    });
    let mut best_ns = comparison.best_registry_ns().expect("tenant rows measured");
    for attempt in 0..3 {
        if best_ns <= budget {
            break;
        }
        println!(
            "\nre-measuring the fastest tenant (attempt {}, {:.1} ns vs {:.1} ns budget)",
            attempt + 1,
            best_ns,
            budget
        );
        for tenant in &tenants {
            let (registry_ns, identical) = measure_registry(&registry, tenant, passes + 1);
            assert!(identical, "re-measured tenant diverged");
            best_ns = best_ns.min(registry_ns);
        }
    }
    println!("\nbudget gate: best registry path {best_ns:.1} ns/request (budget {budget:.1} ns)");
    assert!(
        best_ns <= budget,
        "the registry's per-request overhead regressed past the checked-in budget \
         ({best_ns:.1} ns > {budget:.1} ns); fix the regression or re-baseline \
         REGISTRY_BUDGET.json"
    );

    let occupancy = registry.report();
    let stats = registry.shutdown();
    assert_eq!(stats.failed_requests, 0, "no request may fail in the sweep");
    assert_eq!(stats.unrouted, 0, "no request may lose its route mid-sweep");
    assert!(stats.swaps >= TENANTS as u64, "every install is a swap");
    assert!(stats.swap_pulses > 0 && stats.swap_energy_j > 0.0);
    comparison.swaps = stats.swaps;
    comparison.swap_pulses = stats.swap_pulses;
    comparison.swap_energy_j = stats.swap_energy_j;
    println!(
        "fleet swap telemetry: {} swaps, {} pulses, {:.3e} J",
        stats.swaps, stats.swap_pulses, stats.swap_energy_j
    );

    let record = RegistryRecord {
        bench: "registry",
        generated_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        tenants: TENANTS,
        banks,
        tiles_per_bank,
        requests_per_tenant: requests,
        placements,
        comparison,
        occupancy,
        mixed_ns_per_request,
        mixed_tenants: resident.len(),
        best_registry_ns_per_request: best_ns,
        registry_ns_per_request_budget: budget,
        snapshot_round_trip_bit_identical: snapshot_identical,
    };
    match std::fs::write(&out_path, serde::json::to_string_pretty(&record) + "\n") {
        Ok(()) => println!("(written to {out_path})"),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}
