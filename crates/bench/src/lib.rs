//! # febim-bench
//!
//! Figure/table regeneration binaries and Criterion micro-benchmarks for the
//! FeBiM reproduction.
//!
//! Every data figure and table of the paper's evaluation section has a
//! dedicated binary that regenerates it, prints the series to the console and
//! writes CSV files under `target/experiments/`:
//!
//! | Binary   | Paper content |
//! |----------|---------------|
//! | `fig1c`  | Multi-level I_D-V_G characteristics |
//! | `fig4`   | Probability-to-state mapping and pulse counts |
//! | `fig5`   | Two-cell accumulation and WTA transient |
//! | `fig6`   | Delay/energy vs. array geometry |
//! | `fig7`   | Accuracy vs. feature/likelihood quantization |
//! | `fig8`   | Quantization heat map, crossbar state map, variation Monte-Carlo |
//! | `table1` | Cross-technology comparison |
//!
//! The extra `perf` binary records the before/after speedup of the
//! conductance-cached read path into `BENCH_inference.json`, the `fabric`
//! binary records tiled-fabric vs. monolithic-array throughput (plus the
//! tile plan and deployment telemetry) into `BENCH_fabric.json`, and the
//! `serving` binary sweeps the concurrent batch-serving pool over
//! replicas × batch size × backend into `BENCH_serving.json`.
//!
//! Run, for example, `cargo run -p febim-bench --bin fig6 --release`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use febim_core::{default_experiment_dir, Table};

/// Minimum per-iteration wall time of `routine` in nanoseconds, measured in
/// calibrated batches until `target` total time has elapsed. The minimum
/// over batches is robust against scheduler noise. Shared by the `perf` and
/// `fabric` record bins.
pub fn measure_min_ns<F: FnMut()>(mut routine: F, target: Duration) -> f64 {
    routine(); // warm-up (also warms any conductance caches)
    let mut iters = 1u64;
    let mut elapsed;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(5) || iters >= 1 << 22 {
            break;
        }
        iters *= 2;
    }
    let mut best = elapsed.as_nanos() as f64 / iters as f64;
    let mut total = elapsed;
    while total < target {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let batch = start.elapsed();
        best = best.min(batch.as_nanos() as f64 / iters as f64);
        total += batch;
    }
    best
}

/// Prints a table to the console and persists it as CSV under the default
/// experiment directory, reporting where it was written.
pub fn emit(table: &Table) {
    println!("{}", table.to_pretty());
    match table.write_csv(&default_experiment_dir()) {
        Ok(path) => println!("(written to {})\n", path.display()),
        Err(err) => println!("(could not write CSV: {err})\n"),
    }
}

/// Formats a physical quantity with an engineering prefix (fJ, ps, uA, ...).
pub fn eng(value: f64, unit: &str) -> String {
    let (scaled, prefix) = if value == 0.0 {
        (0.0, "")
    } else {
        let exponent = value.abs().log10().floor() as i32;
        match exponent {
            e if e <= -13 => (value * 1e15, "f"),
            e if e <= -10 => (value * 1e12, "p"),
            e if e <= -7 => (value * 1e9, "n"),
            e if e <= -4 => (value * 1e6, "u"),
            e if e <= -1 => (value * 1e3, "m"),
            e if e <= 2 => (value, ""),
            e if e <= 5 => (value * 1e-3, "k"),
            e if e <= 8 => (value * 1e-6, "M"),
            e if e <= 11 => (value * 1e-9, "G"),
            _ => (value * 1e-12, "T"),
        }
    };
    format!("{scaled:.2} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formatting_covers_common_ranges() {
        assert_eq!(eng(17.2e-15, "J"), "17.20 fJ");
        assert_eq!(eng(233.0e-12, "s"), "233.00 ps");
        assert_eq!(eng(0.5e-6, "A"), "500.00 nA");
        assert_eq!(eng(1.0e-6, "A"), "1.00 uA");
        assert_eq!(eng(581.4e12, "OPS/W"), "581.40 TOPS/W");
        assert_eq!(eng(26.32e6, "b/mm2"), "26.32 Mb/mm2");
        assert_eq!(eng(0.0, "J"), "0.00 J");
    }

    #[test]
    fn emit_writes_csv() {
        let mut table = Table::new("bench_lib_smoke", &["k", "v"]);
        table.push_row(&["a".to_string(), "1".to_string()]);
        emit(&table);
        let path = default_experiment_dir().join("bench_lib_smoke.csv");
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }
}
