//! Criterion micro-benchmarks of device and crossbar programming: pulse-train
//! vs ideal programming of a single FeFET and of the full iris crossbar.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use febim_bayes::GaussianNaiveBayes;
use febim_core::{compile, EngineConfig, FebimEngine};
use febim_crossbar::{CrossbarArray, ProgrammingMode};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_device::{FeFet, FeFetParams, LevelProgrammer};
use febim_quant::{Encoding, QuantConfig, QuantizedGnbc};

fn programming_benches(c: &mut Criterion) {
    let programmer = LevelProgrammer::febim_default(10).expect("programmer");

    let mut group = c.benchmark_group("device_programming");
    group.bench_function("single_cell_pulse_train", |b| {
        b.iter_batched(
            || FeFet::new(FeFetParams::febim_calibrated()),
            |mut device| {
                programmer
                    .program_with_pulses(&mut device, 7)
                    .expect("program")
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("single_cell_ideal", |b| {
        b.iter_batched(
            || FeFet::new(FeFetParams::febim_calibrated()),
            |mut device| programmer.program_ideal(&mut device, 7).expect("program"),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // Full 3x64 iris crossbar programming.
    let dataset = iris_like(43).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(43)).expect("split");
    let model = GaussianNaiveBayes::fit(&split.train).expect("fit");
    let quantized = QuantizedGnbc::quantize(&model, &split.train, QuantConfig::febim_optimal())
        .expect("quantize");
    let program = compile(&quantized, false, Encoding::OneHot).expect("compile");
    let array_programmer = LevelProgrammer::new(
        FeFetParams::febim_calibrated(),
        program.state_count(),
        febim_device::programming::DEFAULT_MIN_READ_CURRENT,
        febim_device::programming::DEFAULT_MAX_READ_CURRENT,
    )
    .expect("programmer");

    let mut group = c.benchmark_group("crossbar_programming_3x64");
    group.sample_size(30);
    for (label, mode) in [
        ("ideal", ProgrammingMode::Ideal),
        ("pulse_train_with_disturb", ProgrammingMode::PulseTrain),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || CrossbarArray::new(*program.layout(), array_programmer.clone()),
                |mut array| {
                    array
                        .program_matrix(program.levels(), mode)
                        .expect("program")
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // Engine construction end to end (train + quantize + compile + program).
    let mut group = c.benchmark_group("engine_construction");
    group.sample_size(20);
    group.bench_function("fit_iris_engine", |b| {
        b.iter(|| {
            FebimEngine::fit(
                std::hint::black_box(&split.train),
                EngineConfig::febim_default(),
            )
            .expect("engine")
        })
    });
    group.finish();
}

criterion_group!(benches, programming_benches);
criterion_main!(benches);
