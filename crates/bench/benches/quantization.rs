//! Criterion micro-benchmarks of the quantization pipeline: GNBC training,
//! quantization at several precisions and feature discretization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use febim_bayes::GaussianNaiveBayes;
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::{cancer_like, iris_like};
use febim_quant::{FeatureDiscretizer, QuantConfig, QuantizedGnbc};

fn quantization_benches(c: &mut Criterion) {
    let iris = iris_like(44).expect("iris");
    let cancer = cancer_like(44).expect("cancer");
    let iris_split = stratified_split(&iris, 0.7, &mut seeded_rng(44)).expect("split");
    let cancer_split = stratified_split(&cancer, 0.7, &mut seeded_rng(44)).expect("split");
    let iris_model = GaussianNaiveBayes::fit(&iris_split.train).expect("fit");
    let cancer_model = GaussianNaiveBayes::fit(&cancer_split.train).expect("fit");

    let mut group = c.benchmark_group("gnbc_training");
    group.bench_function("iris_45_samples", |b| {
        b.iter(|| GaussianNaiveBayes::fit(std::hint::black_box(&iris_split.train)).expect("fit"))
    });
    group.bench_function("cancer_171_samples", |b| {
        b.iter(|| GaussianNaiveBayes::fit(std::hint::black_box(&cancer_split.train)).expect("fit"))
    });
    group.finish();

    let mut group = c.benchmark_group("model_quantization");
    for bits in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("iris_qf_ql", bits), &bits, |b, &bits| {
            b.iter(|| {
                QuantizedGnbc::quantize(
                    &iris_model,
                    &iris_split.train,
                    QuantConfig::new(bits, bits),
                )
                .expect("quantize")
            })
        });
        group.bench_with_input(BenchmarkId::new("cancer_qf_ql", bits), &bits, |b, &bits| {
            b.iter(|| {
                QuantizedGnbc::quantize(
                    &cancer_model,
                    &cancer_split.train,
                    QuantConfig::new(bits, bits),
                )
                .expect("quantize")
            })
        });
    }
    group.finish();

    let discretizer = FeatureDiscretizer::fit(&iris_split.train, 4).expect("discretizer");
    let sample = iris_split.test.sample(0).expect("sample").to_vec();
    c.bench_function("feature_discretization_single_sample", |b| {
        b.iter(|| {
            discretizer
                .discretize_sample(std::hint::black_box(&sample))
                .expect("bins")
        })
    });
}

criterion_group!(benches, quantization_benches);
criterion_main!(benches);
