//! Criterion micro-benchmarks of the array-scaling simulation (the machinery
//! behind Fig. 6): wordline accumulation and sensing for growing geometries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use febim_circuit::SensingChain;
use febim_core::measure_geometry;
use febim_crossbar::{Activation, CrossbarArray, CrossbarLayout, ProgrammingMode};
use febim_device::{FeFetParams, LevelProgrammer};

fn build_array(rows: usize, columns: usize) -> CrossbarArray {
    let layout = CrossbarLayout::new(rows, columns, 1, false).expect("layout");
    let programmer = LevelProgrammer::new(
        FeFetParams::febim_calibrated(),
        10,
        febim_device::programming::DEFAULT_MIN_READ_CURRENT,
        febim_device::programming::DEFAULT_MAX_READ_CURRENT,
    )
    .expect("programmer");
    let mut array = CrossbarArray::new(layout, programmer);
    for row in 0..rows {
        for column in 0..columns {
            array
                .program_cell(row, column, (row + column) % 10, ProgrammingMode::Ideal)
                .expect("program");
        }
    }
    array
}

fn scaling_benches(c: &mut Criterion) {
    let chain = SensingChain::febim_calibrated();

    let mut group = c.benchmark_group("wordline_accumulation");
    for columns in [32usize, 128, 256] {
        let array = build_array(2, columns);
        let activation = Activation::all_columns(array.layout());
        group.bench_with_input(BenchmarkId::new("2_rows", columns), &columns, |b, _| {
            b.iter(|| {
                array
                    .wordline_currents(std::hint::black_box(&activation))
                    .expect("currents")
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sensing_chain");
    for rows in [2usize, 8, 32] {
        let currents: Vec<f64> = (0..rows).map(|r| 0.5e-6 + r as f64 * 0.05e-6).collect();
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, _| {
            b.iter(|| {
                chain
                    .sense(std::hint::black_box(&currents), 32)
                    .expect("sense")
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("figure6_point");
    group.sample_size(20);
    for (rows, columns) in [(2usize, 256usize), (32, 32)] {
        group.bench_with_input(
            BenchmarkId::new("geometry", format!("{rows}x{columns}")),
            &(rows, columns),
            |b, &(rows, columns)| {
                b.iter(|| measure_geometry(rows, columns, &chain, 10).expect("measure"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, scaling_benches);
criterion_main!(benches);
