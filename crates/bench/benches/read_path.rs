//! Criterion micro-benchmarks of the crossbar read path: the
//! conductance-cached sparse accumulation against the uncached dense
//! reference, at the iris geometry (3×64) and at a Fig. 6-scale geometry
//! (64 rows × 512 columns).

use criterion::{criterion_group, criterion_main, Criterion};

use febim_crossbar::{Activation, CrossbarArray, CrossbarLayout, ProgrammingMode};
use febim_device::LevelProgrammer;

/// Builds a fully programmed crossbar with a deterministic staggered level
/// pattern (the same scheme the Fig. 6 sweeps use).
fn programmed_array(rows: usize, nodes: usize, levels_per_node: usize) -> CrossbarArray {
    let layout = CrossbarLayout::new(rows, nodes, levels_per_node, false).expect("layout");
    let programmer = LevelProgrammer::febim_default(10).expect("programmer");
    let mut array = CrossbarArray::new(layout, programmer);
    for row in 0..rows {
        for column in 0..array.layout().columns() {
            let level = (row + column) % 10;
            array
                .program_cell(row, column, level, ProgrammingMode::Ideal)
                .expect("program");
        }
    }
    array
}

fn bench_geometry(c: &mut Criterion, name: &str, rows: usize, nodes: usize, levels: usize) {
    let array = programmed_array(rows, nodes, levels);
    // One observation-style activation (one column per evidence node) and the
    // all-columns stress pattern of the scalability study.
    let evidence: Vec<usize> = (0..nodes).map(|node| node % levels).collect();
    let sparse = Activation::from_observation(array.layout(), &evidence).expect("activation");
    let all = Activation::all_columns(array.layout());
    // Warm the conductance cache outside the timed region.
    let mut currents = array.wordline_currents(&sparse).expect("warm-up read");

    let mut group = c.benchmark_group(name);
    group.sample_size(20);
    group.bench_function("cached_sparse", |b| {
        b.iter(|| {
            array
                .wordline_currents_into(std::hint::black_box(&sparse), &mut currents)
                .expect("read")
        })
    });
    group.bench_function("cached_all_columns", |b| {
        b.iter(|| {
            array
                .wordline_currents_into(std::hint::black_box(&all), &mut currents)
                .expect("read")
        })
    });
    group.bench_function("reference_dense_sparse_activation", |b| {
        b.iter(|| {
            array
                .wordline_currents_reference(std::hint::black_box(&sparse))
                .expect("read")
        })
    });
    group.bench_function("reference_dense_all_columns", |b| {
        b.iter(|| {
            array
                .wordline_currents_reference(std::hint::black_box(&all))
                .expect("read")
        })
    });
    group.finish();
}

fn read_path_benches(c: &mut Criterion) {
    // The iris geometry of Fig. 8(b): 3 wordlines, 4 nodes × 16 levels.
    bench_geometry(c, "read_path_iris_3x64", 3, 4, 16);
    // A Fig. 6-scale stress geometry: 64 wordlines, 32 nodes × 16 levels.
    bench_geometry(c, "read_path_fig6_64x512", 64, 32, 16);
}

criterion_group!(benches, read_path_benches);
criterion_main!(benches);
