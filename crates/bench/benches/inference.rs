//! Criterion micro-benchmarks of the inference paths: FP64 software GNBC,
//! quantized software model and the full in-memory (crossbar + sensing)
//! engine, on the iris-like workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use febim_bayes::GaussianNaiveBayes;
use febim_core::{EngineConfig, FebimEngine};
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::synthetic::iris_like;
use febim_quant::{QuantConfig, QuantizedGnbc};

fn inference_benches(c: &mut Criterion) {
    let dataset = iris_like(42).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).expect("split");
    let model = GaussianNaiveBayes::fit(&split.train).expect("fit");
    let quantized = QuantizedGnbc::quantize(&model, &split.train, QuantConfig::febim_optimal())
        .expect("quantize");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let sample = split.test.sample(0).expect("sample").to_vec();

    let mut group = c.benchmark_group("inference_single_sample");
    group.bench_function("software_fp64", |b| {
        b.iter(|| {
            model
                .predict(std::hint::black_box(&sample))
                .expect("predict")
        })
    });
    group.bench_function("quantized_software", |b| {
        b.iter(|| {
            quantized
                .predict(std::hint::black_box(&sample))
                .expect("predict")
        })
    });
    group.bench_function("in_memory_engine", |b| {
        b.iter(|| {
            engine
                .predict(std::hint::black_box(&sample))
                .expect("predict")
        })
    });
    group.finish();

    let mut group = c.benchmark_group("inference_full_test_set");
    group.sample_size(20);
    group.bench_function("software_fp64", |b| {
        b.iter(|| {
            model
                .score(std::hint::black_box(&split.test))
                .expect("score")
        })
    });
    group.bench_function("in_memory_engine", |b| {
        b.iter_batched(
            || split.test.clone(),
            |test| engine.evaluate(&test).expect("evaluate"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, inference_benches);
criterion_main!(benches);
