//! Fault injection for reliability studies.
//!
//! Beyond the Gaussian V_TH variation studied in Fig. 8(c), realistic FeFET
//! arrays suffer hard defects: cells stuck in the erased state (open defects,
//! endurance failures) or stuck at a fixed programmed level (ferroelectric
//! imprint). This module injects such defects into a programmed crossbar so
//! the classification robustness against hard faults can be quantified.
//!
//! Two injection surfaces exist:
//!
//! * **Program-time** — [`FaultModel::inject`] / [`FaultModel::inject_grid`]
//!   defect the array once, right after programming (the PR 4 surface; its
//!   RNG draw order is frozen).
//! * **Time-indexed** — [`FaultModel::draw_schedule`] produces a seeded
//!   [`FaultSchedule`] of faults stamped with the array-clock tick at which
//!   they strike, so a serving pool can be chaos-tested with defects landing
//!   *mid-traffic*. Scheduled faults may be **transient** (the polarization
//!   is corrupted but the cell still accepts write pulses — a refresh heals
//!   it) or **permanent** (the cell is [`Cell::is_stuck`] afterwards and
//!   only spare-row remapping can route around it).
//!
//! Detection and repair live next door: [`CrossbarArray::scrub`] and
//! [`TileGrid::scrub`](crate::TileGrid::scrub) classify defective cells
//! against the program's expected conductance pattern and report the
//! unrepairable ones as typed [`FaultReport`]s inside a [`ScrubOutcome`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use febim_device::Polarization;

use crate::array::CrossbarArray;
use crate::cell::Cell;
use crate::errors::{CrossbarError, Result};
use crate::tiling::TileGrid;

/// The kind of hard defect injected into a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The cell reads as fully erased (no current contribution).
    StuckErased,
    /// The cell reads as fully programmed (maximum polarization), regardless
    /// of the level it should store.
    StuckProgrammed,
}

/// A fault injected at a specific cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Row (wordline) of the faulty cell.
    pub row: usize,
    /// Column (bitline) of the faulty cell.
    pub column: usize,
    /// The defect type.
    pub kind: FaultKind,
}

/// Random hard-fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that any given cell is defective.
    pub cell_fault_rate: f64,
    /// Fraction of defective cells that are stuck erased (the rest are stuck
    /// programmed).
    pub stuck_erased_fraction: f64,
}

impl FaultModel {
    /// Creates a fault model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidLayout`] when either fraction is
    /// outside `[0, 1]`.
    pub fn new(cell_fault_rate: f64, stuck_erased_fraction: f64) -> Result<Self> {
        for (name, value) in [
            ("cell_fault_rate", cell_fault_rate),
            ("stuck_erased_fraction", stuck_erased_fraction),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(CrossbarError::InvalidLayout {
                    reason: format!("{name} must lie in [0, 1], got {value}"),
                });
            }
        }
        Ok(Self {
            cell_fault_rate,
            stuck_erased_fraction,
        })
    }

    /// A defect-free model.
    pub fn none() -> Self {
        Self {
            cell_fault_rate: 0.0,
            stuck_erased_fraction: 1.0,
        }
    }

    /// Injects faults into every cell of the array independently with the
    /// configured probability and returns the list of injected defects.
    pub fn inject<R: Rng + ?Sized>(
        &self,
        array: &mut CrossbarArray,
        rng: &mut R,
    ) -> Result<Vec<InjectedFault>> {
        let rows = array.layout().rows();
        let columns = array.layout().columns();
        self.draw_faults(rows, columns, rng, |row, column, kind| {
            apply_fault(array, row, column, kind)
        })
    }

    /// Injects faults into every occupied cell of a tiled fabric, drawing in
    /// **global row-major order** — the same RNG consumption order as
    /// [`FaultModel::inject`] on a monolithic array, so a shared seed defects
    /// exactly the same global coordinates on both deployments.
    pub fn inject_grid<R: Rng + ?Sized>(
        &self,
        grid: &mut TileGrid,
        rng: &mut R,
    ) -> Result<Vec<InjectedFault>> {
        let rows = grid.layout().rows();
        let columns = grid.layout().columns();
        self.draw_faults(rows, columns, rng, |row, column, kind| {
            apply_grid_fault(grid, row, column, kind)
        })
    }

    /// Shared row-major fault-drawing loop of the two deployments.
    fn draw_faults<R: Rng + ?Sized>(
        &self,
        rows: usize,
        columns: usize,
        rng: &mut R,
        mut apply: impl FnMut(usize, usize, FaultKind) -> Result<()>,
    ) -> Result<Vec<InjectedFault>> {
        let mut faults = Vec::new();
        for row in 0..rows {
            for column in 0..columns {
                if self.cell_fault_rate == 0.0 || rng.gen::<f64>() >= self.cell_fault_rate {
                    continue;
                }
                let kind = if rng.gen::<f64>() < self.stuck_erased_fraction {
                    FaultKind::StuckErased
                } else {
                    FaultKind::StuckProgrammed
                };
                apply(row, column, kind)?;
                faults.push(InjectedFault { row, column, kind });
            }
        }
        Ok(faults)
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// One fault scheduled to strike at a specific array-clock tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Array-clock tick at which the defect manifests.
    pub at_tick: u64,
    /// Row (wordline) of the faulty cell.
    pub row: usize,
    /// Column (bitline) of the faulty cell.
    pub column: usize,
    /// The defect type.
    pub kind: FaultKind,
    /// Whether the cell is permanently stuck afterwards (reprogramming
    /// cannot heal it) or merely corrupted (a refresh restores it).
    pub permanent: bool,
}

/// A deterministic, time-ordered queue of faults to inject as the array
/// clock advances — the chaos-injection surface of the self-healing tests
/// and benches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultSchedule {
    /// Faults sorted by [`ScheduledFault::at_tick`] (stable for equal ticks).
    events: Vec<ScheduledFault>,
    /// Index of the first not-yet-delivered event.
    #[serde(default)]
    next: usize,
}

impl FaultSchedule {
    /// Builds a schedule from an arbitrary event list (sorted by strike
    /// tick, stable for equal ticks, so delivery order is deterministic).
    pub fn new(mut events: Vec<ScheduledFault>) -> Self {
        events.sort_by_key(|event| event.at_tick);
        Self { events, next: 0 }
    }

    /// An empty schedule.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Every scheduled event, delivered or not, in strike order.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Number of events not yet delivered.
    pub fn pending(&self) -> usize {
        self.events.len() - self.next
    }

    /// Removes and returns every event due at or before `now` (array-clock
    /// ticks), in strike order. Subsequent calls never re-deliver an event.
    pub fn take_due(&mut self, now: u64) -> Vec<ScheduledFault> {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].at_tick <= now {
            self.next += 1;
        }
        self.events[start..self.next].to_vec()
    }
}

impl FaultModel {
    /// Draws a seeded, time-indexed fault schedule: each cell of a
    /// `rows × columns` array is defected independently with
    /// `cell_fault_rate`, visiting cells in row-major order; every drawn
    /// fault is stamped with a strike tick uniform in
    /// `[start_tick, end_tick)` and is permanent with probability
    /// `permanent_fraction`.
    ///
    /// This is a **new** RNG consumption order — the frozen program-time
    /// order of [`FaultModel::inject`] / [`FaultModel::inject_grid`] is
    /// untouched, so old call sites keep drawing byte-identical faults.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidLayout`] when `permanent_fraction`
    /// is outside `[0, 1]` or the tick window is empty.
    pub fn draw_schedule<R: Rng + ?Sized>(
        &self,
        rows: usize,
        columns: usize,
        start_tick: u64,
        end_tick: u64,
        permanent_fraction: f64,
        rng: &mut R,
    ) -> Result<FaultSchedule> {
        if !(0.0..=1.0).contains(&permanent_fraction) || !permanent_fraction.is_finite() {
            return Err(CrossbarError::InvalidLayout {
                reason: format!("permanent_fraction must lie in [0, 1], got {permanent_fraction}"),
            });
        }
        if start_tick >= end_tick {
            return Err(CrossbarError::InvalidLayout {
                reason: format!("empty fault window [{start_tick}, {end_tick})"),
            });
        }
        let span = (end_tick - start_tick) as f64;
        let mut events = Vec::new();
        for row in 0..rows {
            for column in 0..columns {
                if self.cell_fault_rate == 0.0 || rng.gen::<f64>() >= self.cell_fault_rate {
                    continue;
                }
                let kind = if rng.gen::<f64>() < self.stuck_erased_fraction {
                    FaultKind::StuckErased
                } else {
                    FaultKind::StuckProgrammed
                };
                let at_tick = start_tick + (rng.gen::<f64>() * span) as u64;
                let permanent = rng.gen::<f64>() < permanent_fraction;
                events.push(ScheduledFault {
                    at_tick: at_tick.min(end_tick - 1),
                    row,
                    column,
                    kind,
                    permanent,
                });
            }
        }
        Ok(FaultSchedule::new(events))
    }
}

/// One defective cell found by a scrub pass, in logical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Logical row (wordline) of the defective cell.
    pub row: usize,
    /// Logical column (bitline) of the defective cell.
    pub column: usize,
    /// Defect classification from the read signature (a stuck cell reading
    /// far above its target is [`FaultKind::StuckProgrammed`]; far below,
    /// [`FaultKind::StuckErased`]).
    pub kind: FaultKind,
    /// Whether the scrub repaired the cell (refresh or spare-row remap).
    /// `false` marks an unrepairable defect the owner must route around —
    /// a serving pool quarantines the replica.
    pub repaired: bool,
}

/// The result of one BIST-style scrub pass over an array or fabric.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[must_use = "maintenance outcomes carry repair counters and energy costs that must be merged into reports"]
pub struct ScrubOutcome {
    /// Programmed cells whose read signature was checked.
    pub cells_checked: u64,
    /// Defective cells healed in place by reprogramming (transient faults).
    pub cells_repaired: u64,
    /// Logical rows remapped onto spare physical rows (tiled fabrics only).
    pub rows_remapped: u64,
    /// Defective cells that survived a repair attempt (stuck).
    pub stuck_cells: u64,
    /// Total programming pulses spent on repairs.
    pub pulses_applied: u64,
    /// Total repair write energy in joules.
    pub energy_joules: f64,
    /// One report per defective cell found, repaired or not.
    pub reports: Vec<FaultReport>,
}

impl ScrubOutcome {
    /// Whether the pass found no defective cells at all.
    pub fn is_clean(&self) -> bool {
        self.reports.is_empty()
    }

    /// Whether every defect found was repaired (vacuously true when clean).
    pub fn fully_repaired(&self) -> bool {
        self.reports.iter().all(|report| report.repaired)
    }

    /// The unrepairable defects (empty when the fabric healed completely).
    pub fn unrepaired(&self) -> impl Iterator<Item = &FaultReport> {
        self.reports.iter().filter(|report| !report.repaired)
    }

    /// Folds another pass's counters and reports into this one.
    pub fn merge(&mut self, other: &ScrubOutcome) {
        self.cells_checked += other.cells_checked;
        self.cells_repaired += other.cells_repaired;
        self.rows_remapped += other.rows_remapped;
        self.stuck_cells += other.stuck_cells;
        self.pulses_applied += other.pulses_applied;
        self.energy_joules += other.energy_joules;
        self.reports.extend_from_slice(&other.reports);
    }
}

/// Applies a single hard fault to one cell.
///
/// # Errors
///
/// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside the
/// array.
pub fn apply_fault(
    array: &mut CrossbarArray,
    row: usize,
    column: usize,
    kind: FaultKind,
) -> Result<()> {
    fault_cell(array.cell_mut(row, column)?, kind);
    Ok(())
}

/// Applies a single hard fault to one cell of a tiled fabric, addressed by
/// its **global** coordinates (the defect lands in whichever tile owns the
/// cell). The defective device state is identical to [`apply_fault`] on a
/// monolithic array, so a fabric with the same faulty global cells degrades
/// identically.
///
/// # Errors
///
/// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside the
/// fabric's logical layout.
pub fn apply_grid_fault(
    grid: &mut TileGrid,
    row: usize,
    column: usize,
    kind: FaultKind,
) -> Result<()> {
    fault_cell(grid.cell_mut(row, column)?, kind);
    Ok(())
}

/// Applies one [`ScheduledFault`] (minus its timestamp) to a monolithic
/// array: the transient device corruption of [`apply_fault`], plus the
/// permanent [`Cell::is_stuck`] latch when the fault is permanent.
///
/// # Errors
///
/// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside the
/// array.
pub fn apply_scheduled_fault(
    array: &mut CrossbarArray,
    row: usize,
    column: usize,
    kind: FaultKind,
    permanent: bool,
) -> Result<()> {
    let cell = array.cell_mut(row, column)?;
    fault_cell(cell, kind);
    if permanent {
        cell.set_stuck(true);
    }
    Ok(())
}

/// Applies one [`ScheduledFault`] (minus its timestamp) to a tiled fabric,
/// addressed by global coordinates — the grid analogue of
/// [`apply_scheduled_fault`].
///
/// # Errors
///
/// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside the
/// fabric's logical layout.
pub fn apply_scheduled_grid_fault(
    grid: &mut TileGrid,
    row: usize,
    column: usize,
    kind: FaultKind,
    permanent: bool,
) -> Result<()> {
    let cell = grid.cell_mut(row, column)?;
    fault_cell(cell, kind);
    if permanent {
        cell.set_stuck(true);
    }
    Ok(())
}

/// The defective device state shared by both deployments.
fn fault_cell(cell: &mut Cell, kind: FaultKind) {
    let polarization = match kind {
        FaultKind::StuckErased => Polarization::ERASED,
        FaultKind::StuckProgrammed => Polarization::SATURATED,
    };
    cell.device_mut().set_polarization(polarization);
    cell.device_mut().set_vth_offset(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ProgrammingMode;
    use crate::layout::CrossbarLayout;
    use crate::read::Activation;
    use febim_device::{LevelProgrammer, VariationModel};

    fn programmed_array() -> CrossbarArray {
        let layout = CrossbarLayout::new(2, 4, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut array = CrossbarArray::new(layout, programmer);
        for row in 0..2 {
            for column in 0..16 {
                array
                    .program_cell(row, column, (row + column) % 10, ProgrammingMode::Ideal)
                    .unwrap();
            }
        }
        array
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(FaultModel::new(-0.1, 0.5).is_err());
        assert!(FaultModel::new(0.1, 1.5).is_err());
        assert!(FaultModel::new(f64::NAN, 0.5).is_err());
        assert!(FaultModel::new(0.05, 0.5).is_ok());
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut array = programmed_array();
        let before = array.current_map();
        let mut rng = VariationModel::seeded_rng(1);
        let faults = FaultModel::none().inject(&mut array, &mut rng).unwrap();
        assert!(faults.is_empty());
        assert_eq!(array.current_map(), before);
    }

    #[test]
    fn full_rate_faults_every_cell() {
        let mut array = programmed_array();
        let mut rng = VariationModel::seeded_rng(2);
        let faults = FaultModel::new(1.0, 1.0)
            .unwrap()
            .inject(&mut array, &mut rng)
            .unwrap();
        assert_eq!(faults.len(), 32);
        // Every stuck-erased cell stops conducting.
        let activation = Activation::all_columns(array.layout());
        for current in array.wordline_currents(&activation).unwrap() {
            assert!(current < 1e-8, "current {current}");
        }
    }

    #[test]
    fn stuck_programmed_cells_read_above_the_mapped_window() {
        let mut array = programmed_array();
        apply_fault(&mut array, 0, 3, FaultKind::StuckProgrammed).unwrap();
        let current = array.cell(0, 3).unwrap().read_current_on();
        // Fully saturated polarization exceeds the 1.0 uA top of the window.
        assert!(current > 1.0e-6);
    }

    #[test]
    fn stuck_erased_cells_stop_conducting() {
        let mut array = programmed_array();
        let before = array.cell(1, 5).unwrap().read_current_on();
        assert!(before > 1e-7);
        apply_fault(&mut array, 1, 5, FaultKind::StuckErased).unwrap();
        assert!(array.cell(1, 5).unwrap().read_current_on() < 1e-9);
    }

    #[test]
    fn out_of_bounds_fault_rejected() {
        let mut array = programmed_array();
        assert!(apply_fault(&mut array, 9, 0, FaultKind::StuckErased).is_err());
    }

    #[test]
    fn grid_injection_matches_monolithic_injection_per_seed() {
        use crate::tiling::{TilePlan, TileShape};
        let layout = CrossbarLayout::new(3, 4, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let plan = TilePlan::new(layout, TileShape::new(2, 9).unwrap()).unwrap();
        let mut array = CrossbarArray::new(layout, programmer.clone());
        let mut grid = crate::tiling::TileGrid::new(plan, programmer);
        let levels: Vec<Vec<Option<usize>>> = (0..layout.rows())
            .map(|row| {
                (0..layout.columns())
                    .map(|column| Some((row + column) % 10))
                    .collect()
            })
            .collect();
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        grid.program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        let model = FaultModel::new(0.25, 0.5).unwrap();
        let array_faults = model
            .inject(&mut array, &mut VariationModel::seeded_rng(9))
            .unwrap();
        let grid_faults = model
            .inject_grid(&mut grid, &mut VariationModel::seeded_rng(9))
            .unwrap();
        // Same seed, same row-major draw order → same defects, and the two
        // faulty deployments read identically everywhere.
        assert_eq!(array_faults, grid_faults);
        assert!(!grid_faults.is_empty());
        let activation = Activation::all_columns(&layout);
        assert_eq!(
            array.wordline_currents(&activation).unwrap(),
            grid.wordline_currents(&activation).unwrap()
        );
        assert!(apply_grid_fault(&mut grid, 9, 0, FaultKind::StuckErased).is_err());
    }

    #[test]
    fn injection_is_reproducible_per_seed() {
        let model = FaultModel::new(0.2, 0.5).unwrap();
        let mut a = programmed_array();
        let mut b = programmed_array();
        let faults_a = model
            .inject(&mut a, &mut VariationModel::seeded_rng(7))
            .unwrap();
        let faults_b = model
            .inject(&mut b, &mut VariationModel::seeded_rng(7))
            .unwrap();
        assert_eq!(faults_a, faults_b);
        assert!(!faults_a.is_empty());
    }

    /// The program-time injection RNG order is frozen: re-deriving the draw
    /// loop by hand from the same seed must reproduce `inject` exactly, so
    /// adding the time-indexed schedule surface cannot have shifted a single
    /// draw for old call sites.
    #[test]
    fn inject_rng_order_is_frozen() {
        let model = FaultModel::new(0.2, 0.5).unwrap();
        let mut array = programmed_array();
        let faults = model
            .inject(&mut array, &mut VariationModel::seeded_rng(7))
            .unwrap();
        let mut rng = VariationModel::seeded_rng(7);
        let mut expected = Vec::new();
        for row in 0..2 {
            for column in 0..16 {
                if rng.gen::<f64>() >= model.cell_fault_rate {
                    continue;
                }
                let kind = if rng.gen::<f64>() < model.stuck_erased_fraction {
                    FaultKind::StuckErased
                } else {
                    FaultKind::StuckProgrammed
                };
                expected.push(InjectedFault { row, column, kind });
            }
        }
        assert_eq!(faults, expected);
    }

    #[test]
    fn schedules_are_seed_deterministic_and_time_ordered() {
        let model = FaultModel::new(0.3, 0.5).unwrap();
        let a = model
            .draw_schedule(4, 8, 100, 1_000, 0.5, &mut VariationModel::seeded_rng(13))
            .unwrap();
        let b = model
            .draw_schedule(4, 8, 100, 1_000, 0.5, &mut VariationModel::seeded_rng(13))
            .unwrap();
        assert_eq!(a, b);
        assert!(!a.events().is_empty());
        for pair in a.events().windows(2) {
            assert!(pair[0].at_tick <= pair[1].at_tick);
        }
        for event in a.events() {
            assert!((100..1_000).contains(&event.at_tick));
            assert!(event.row < 4 && event.column < 8);
        }
        assert!(a.events().iter().any(|event| event.permanent));
        assert!(a.events().iter().any(|event| !event.permanent));
    }

    #[test]
    fn take_due_delivers_each_event_exactly_once() {
        let events = vec![
            ScheduledFault {
                at_tick: 50,
                row: 1,
                column: 2,
                kind: FaultKind::StuckErased,
                permanent: true,
            },
            ScheduledFault {
                at_tick: 10,
                row: 0,
                column: 0,
                kind: FaultKind::StuckProgrammed,
                permanent: false,
            },
            ScheduledFault {
                at_tick: 50,
                row: 0,
                column: 1,
                kind: FaultKind::StuckErased,
                permanent: false,
            },
        ];
        let mut schedule = FaultSchedule::new(events);
        assert_eq!(schedule.pending(), 3);
        assert!(schedule.take_due(9).is_empty());
        let first = schedule.take_due(10);
        assert_eq!(first.len(), 1);
        assert_eq!((first[0].row, first[0].column), (0, 0));
        assert_eq!(schedule.pending(), 2);
        // Equal ticks deliver in insertion order (stable sort).
        let due = schedule.take_due(1_000);
        assert_eq!(due.len(), 2);
        assert_eq!((due[0].row, due[0].column), (1, 2));
        assert_eq!((due[1].row, due[1].column), (0, 1));
        assert_eq!(schedule.pending(), 0);
        assert!(schedule.take_due(u64::MAX).is_empty());
    }

    #[test]
    fn invalid_schedule_parameters_rejected() {
        let model = FaultModel::new(0.3, 0.5).unwrap();
        let mut rng = VariationModel::seeded_rng(1);
        assert!(model.draw_schedule(2, 2, 0, 10, -0.1, &mut rng).is_err());
        assert!(model.draw_schedule(2, 2, 0, 10, 1.5, &mut rng).is_err());
        assert!(model.draw_schedule(2, 2, 10, 10, 0.5, &mut rng).is_err());
        assert!(model.draw_schedule(2, 2, 20, 10, 0.5, &mut rng).is_err());
    }

    #[test]
    fn permanent_faults_latch_the_stuck_flag() {
        let mut array = programmed_array();
        apply_scheduled_fault(&mut array, 0, 3, FaultKind::StuckErased, false).unwrap();
        assert!(!array.cell(0, 3).unwrap().is_stuck());
        apply_scheduled_fault(&mut array, 1, 4, FaultKind::StuckProgrammed, true).unwrap();
        assert!(array.cell(1, 4).unwrap().is_stuck());
        assert!(apply_scheduled_fault(&mut array, 9, 0, FaultKind::StuckErased, true).is_err());
    }

    #[test]
    fn scrub_outcome_merges_and_classifies() {
        let mut outcome = ScrubOutcome {
            cells_checked: 10,
            cells_repaired: 1,
            reports: vec![FaultReport {
                row: 0,
                column: 1,
                kind: FaultKind::StuckErased,
                repaired: true,
            }],
            ..ScrubOutcome::default()
        };
        assert!(!outcome.is_clean());
        assert!(outcome.fully_repaired());
        let other = ScrubOutcome {
            cells_checked: 5,
            stuck_cells: 1,
            pulses_applied: 7,
            energy_joules: 1e-12,
            reports: vec![FaultReport {
                row: 2,
                column: 3,
                kind: FaultKind::StuckProgrammed,
                repaired: false,
            }],
            ..ScrubOutcome::default()
        };
        outcome.merge(&other);
        assert_eq!(outcome.cells_checked, 15);
        assert_eq!(outcome.reports.len(), 2);
        assert!(!outcome.fully_repaired());
        assert_eq!(outcome.unrepaired().count(), 1);
        assert!(ScrubOutcome::default().is_clean());
    }
}
