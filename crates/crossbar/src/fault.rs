//! Fault injection for reliability studies.
//!
//! Beyond the Gaussian V_TH variation studied in Fig. 8(c), realistic FeFET
//! arrays suffer hard defects: cells stuck in the erased state (open defects,
//! endurance failures) or stuck at a fixed programmed level (ferroelectric
//! imprint). This module injects such defects into a programmed crossbar so
//! the classification robustness against hard faults can be quantified.

use rand::Rng;
use serde::{Deserialize, Serialize};

use febim_device::Polarization;

use crate::array::CrossbarArray;
use crate::cell::Cell;
use crate::errors::{CrossbarError, Result};
use crate::tiling::TileGrid;

/// The kind of hard defect injected into a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The cell reads as fully erased (no current contribution).
    StuckErased,
    /// The cell reads as fully programmed (maximum polarization), regardless
    /// of the level it should store.
    StuckProgrammed,
}

/// A fault injected at a specific cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Row (wordline) of the faulty cell.
    pub row: usize,
    /// Column (bitline) of the faulty cell.
    pub column: usize,
    /// The defect type.
    pub kind: FaultKind,
}

/// Random hard-fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that any given cell is defective.
    pub cell_fault_rate: f64,
    /// Fraction of defective cells that are stuck erased (the rest are stuck
    /// programmed).
    pub stuck_erased_fraction: f64,
}

impl FaultModel {
    /// Creates a fault model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidLayout`] when either fraction is
    /// outside `[0, 1]`.
    pub fn new(cell_fault_rate: f64, stuck_erased_fraction: f64) -> Result<Self> {
        for (name, value) in [
            ("cell_fault_rate", cell_fault_rate),
            ("stuck_erased_fraction", stuck_erased_fraction),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(CrossbarError::InvalidLayout {
                    reason: format!("{name} must lie in [0, 1], got {value}"),
                });
            }
        }
        Ok(Self {
            cell_fault_rate,
            stuck_erased_fraction,
        })
    }

    /// A defect-free model.
    pub fn none() -> Self {
        Self {
            cell_fault_rate: 0.0,
            stuck_erased_fraction: 1.0,
        }
    }

    /// Injects faults into every cell of the array independently with the
    /// configured probability and returns the list of injected defects.
    pub fn inject<R: Rng + ?Sized>(
        &self,
        array: &mut CrossbarArray,
        rng: &mut R,
    ) -> Result<Vec<InjectedFault>> {
        let rows = array.layout().rows();
        let columns = array.layout().columns();
        self.draw_faults(rows, columns, rng, |row, column, kind| {
            apply_fault(array, row, column, kind)
        })
    }

    /// Injects faults into every occupied cell of a tiled fabric, drawing in
    /// **global row-major order** — the same RNG consumption order as
    /// [`FaultModel::inject`] on a monolithic array, so a shared seed defects
    /// exactly the same global coordinates on both deployments.
    pub fn inject_grid<R: Rng + ?Sized>(
        &self,
        grid: &mut TileGrid,
        rng: &mut R,
    ) -> Result<Vec<InjectedFault>> {
        let rows = grid.layout().rows();
        let columns = grid.layout().columns();
        self.draw_faults(rows, columns, rng, |row, column, kind| {
            apply_grid_fault(grid, row, column, kind)
        })
    }

    /// Shared row-major fault-drawing loop of the two deployments.
    fn draw_faults<R: Rng + ?Sized>(
        &self,
        rows: usize,
        columns: usize,
        rng: &mut R,
        mut apply: impl FnMut(usize, usize, FaultKind) -> Result<()>,
    ) -> Result<Vec<InjectedFault>> {
        let mut faults = Vec::new();
        for row in 0..rows {
            for column in 0..columns {
                if self.cell_fault_rate == 0.0 || rng.gen::<f64>() >= self.cell_fault_rate {
                    continue;
                }
                let kind = if rng.gen::<f64>() < self.stuck_erased_fraction {
                    FaultKind::StuckErased
                } else {
                    FaultKind::StuckProgrammed
                };
                apply(row, column, kind)?;
                faults.push(InjectedFault { row, column, kind });
            }
        }
        Ok(faults)
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Applies a single hard fault to one cell.
///
/// # Errors
///
/// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside the
/// array.
pub fn apply_fault(
    array: &mut CrossbarArray,
    row: usize,
    column: usize,
    kind: FaultKind,
) -> Result<()> {
    fault_cell(array.cell_mut(row, column)?, kind);
    Ok(())
}

/// Applies a single hard fault to one cell of a tiled fabric, addressed by
/// its **global** coordinates (the defect lands in whichever tile owns the
/// cell). The defective device state is identical to [`apply_fault`] on a
/// monolithic array, so a fabric with the same faulty global cells degrades
/// identically.
///
/// # Errors
///
/// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside the
/// fabric's logical layout.
pub fn apply_grid_fault(
    grid: &mut TileGrid,
    row: usize,
    column: usize,
    kind: FaultKind,
) -> Result<()> {
    fault_cell(grid.cell_mut(row, column)?, kind);
    Ok(())
}

/// The defective device state shared by both deployments.
fn fault_cell(cell: &mut Cell, kind: FaultKind) {
    let polarization = match kind {
        FaultKind::StuckErased => Polarization::ERASED,
        FaultKind::StuckProgrammed => Polarization::SATURATED,
    };
    cell.device_mut().set_polarization(polarization);
    cell.device_mut().set_vth_offset(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ProgrammingMode;
    use crate::layout::CrossbarLayout;
    use crate::read::Activation;
    use febim_device::{LevelProgrammer, VariationModel};

    fn programmed_array() -> CrossbarArray {
        let layout = CrossbarLayout::new(2, 4, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut array = CrossbarArray::new(layout, programmer);
        for row in 0..2 {
            for column in 0..16 {
                array
                    .program_cell(row, column, (row + column) % 10, ProgrammingMode::Ideal)
                    .unwrap();
            }
        }
        array
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(FaultModel::new(-0.1, 0.5).is_err());
        assert!(FaultModel::new(0.1, 1.5).is_err());
        assert!(FaultModel::new(f64::NAN, 0.5).is_err());
        assert!(FaultModel::new(0.05, 0.5).is_ok());
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut array = programmed_array();
        let before = array.current_map();
        let mut rng = VariationModel::seeded_rng(1);
        let faults = FaultModel::none().inject(&mut array, &mut rng).unwrap();
        assert!(faults.is_empty());
        assert_eq!(array.current_map(), before);
    }

    #[test]
    fn full_rate_faults_every_cell() {
        let mut array = programmed_array();
        let mut rng = VariationModel::seeded_rng(2);
        let faults = FaultModel::new(1.0, 1.0)
            .unwrap()
            .inject(&mut array, &mut rng)
            .unwrap();
        assert_eq!(faults.len(), 32);
        // Every stuck-erased cell stops conducting.
        let activation = Activation::all_columns(array.layout());
        for current in array.wordline_currents(&activation).unwrap() {
            assert!(current < 1e-8, "current {current}");
        }
    }

    #[test]
    fn stuck_programmed_cells_read_above_the_mapped_window() {
        let mut array = programmed_array();
        apply_fault(&mut array, 0, 3, FaultKind::StuckProgrammed).unwrap();
        let current = array.cell(0, 3).unwrap().read_current_on();
        // Fully saturated polarization exceeds the 1.0 uA top of the window.
        assert!(current > 1.0e-6);
    }

    #[test]
    fn stuck_erased_cells_stop_conducting() {
        let mut array = programmed_array();
        let before = array.cell(1, 5).unwrap().read_current_on();
        assert!(before > 1e-7);
        apply_fault(&mut array, 1, 5, FaultKind::StuckErased).unwrap();
        assert!(array.cell(1, 5).unwrap().read_current_on() < 1e-9);
    }

    #[test]
    fn out_of_bounds_fault_rejected() {
        let mut array = programmed_array();
        assert!(apply_fault(&mut array, 9, 0, FaultKind::StuckErased).is_err());
    }

    #[test]
    fn grid_injection_matches_monolithic_injection_per_seed() {
        use crate::tiling::{TilePlan, TileShape};
        let layout = CrossbarLayout::new(3, 4, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let plan = TilePlan::new(layout, TileShape::new(2, 9).unwrap()).unwrap();
        let mut array = CrossbarArray::new(layout, programmer.clone());
        let mut grid = crate::tiling::TileGrid::new(plan, programmer);
        let levels: Vec<Vec<Option<usize>>> = (0..layout.rows())
            .map(|row| {
                (0..layout.columns())
                    .map(|column| Some((row + column) % 10))
                    .collect()
            })
            .collect();
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        grid.program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        let model = FaultModel::new(0.25, 0.5).unwrap();
        let array_faults = model
            .inject(&mut array, &mut VariationModel::seeded_rng(9))
            .unwrap();
        let grid_faults = model
            .inject_grid(&mut grid, &mut VariationModel::seeded_rng(9))
            .unwrap();
        // Same seed, same row-major draw order → same defects, and the two
        // faulty deployments read identically everywhere.
        assert_eq!(array_faults, grid_faults);
        assert!(!grid_faults.is_empty());
        let activation = Activation::all_columns(&layout);
        assert_eq!(
            array.wordline_currents(&activation).unwrap(),
            grid.wordline_currents(&activation).unwrap()
        );
        assert!(apply_grid_fault(&mut grid, 9, 0, FaultKind::StuckErased).is_err());
    }

    #[test]
    fn injection_is_reproducible_per_seed() {
        let model = FaultModel::new(0.2, 0.5).unwrap();
        let mut a = programmed_array();
        let mut b = programmed_array();
        let faults_a = model
            .inject(&mut a, &mut VariationModel::seeded_rng(7))
            .unwrap();
        let faults_b = model
            .inject(&mut b, &mut VariationModel::seeded_rng(7))
            .unwrap();
        assert_eq!(faults_a, faults_b);
        assert!(!faults_a.is_empty());
    }
}
