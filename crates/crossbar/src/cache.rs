//! Precomputed per-cell conductances for the sparse read path.
//!
//! FeBiM's efficiency claim rests on the crossbar accumulating quantized
//! log-posteriors in a single read cycle; evaluating the FeFET I-V equation
//! (a transcendental softplus) for every cell on every inference throws that
//! away in software. This cache mirrors the hardware instead: the on/off read
//! current of every cell is computed once per programming/variation event,
//! and a read becomes a sparse sum over the activated columns only:
//!
//! ```text
//! I_row = Σ_all off[row][c]  +  Σ_active (on[row][c] - off[row][c])
//!       = row_off_sum[row]   +  Σ_active delta
//! ```
//!
//! so one inference is O(rows × activated columns) with no device-model
//! calls. [`crate::CrossbarArray`] rebuilds the cache lazily after any
//! mutation (programming, variation injection, direct cell access).
//!
//! ## The committed summation order
//!
//! The delta sum is evaluated by [`lane_delta_sum`]: four independent
//! accumulator lanes striped over the activation order in chunks of four
//! (an autovectorizable f64x4 shape on stable Rust), a scalar tail for the
//! remainder, combined as
//!
//! ```text
//! ((lane0 + lane1) + (lane2 + lane3)) + tail
//! ```
//!
//! and finally added onto `row_off_sum`. Floating-point addition is not
//! associative, so this order **is** the bit-exactness contract: the cached
//! kernel, the tiled fabric's merged read and the uncached reference oracles
//! all evaluate it identically, and the crate's property tests pin every
//! remainder case (0–3 trailing columns).

use crate::read::{Activation, LevelLadder};

/// On/off delta sum over the activated columns in the committed 4-lane
/// order (see the module docs): lanes striped over activation order,
/// combined as `((lane0 + lane1) + (lane2 + lane3)) + tail`.
///
/// `deltas` is indexed by column; every fast and reference read path in
/// this crate funnels through this one function so the floating-point
/// accumulation order can never silently diverge.
#[inline]
pub(crate) fn lane_delta_sum(deltas: &[f64], active_columns: &[usize]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = active_columns.chunks_exact(4);
    for chunk in &mut chunks {
        lanes[0] += deltas[chunk[0]];
        lanes[1] += deltas[chunk[1]];
        lanes[2] += deltas[chunk[2]];
        lanes[3] += deltas[chunk[3]];
    }
    let mut tail = 0.0;
    for &column in chunks.remainder() {
        tail += deltas[column];
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// Bit-plane variant of [`lane_delta_sum`]: sums `bit(slot)` for slots
/// `0..count` in the committed 4-lane striping and
/// `((lane0 + lane1) + (lane2 + lane3)) + tail` combine. The closure lets
/// the monolithic array and the tiled fabric plug in their own per-slot
/// bit extraction (cache-backed or uncached-oracle) while guaranteeing the
/// identical summation structure — the same contract [`lane_delta_sum`]
/// pins for analog reads. The summands are exact 0.0/1.0 values, so the
/// partial sums are exact integers in `f64`.
#[inline]
pub(crate) fn lane_bit_sum(count: usize, mut bit: impl FnMut(usize) -> f64) -> f64 {
    let mut lanes = [0.0f64; 4];
    let full = count / 4 * 4;
    let mut slot = 0;
    while slot < full {
        lanes[0] += bit(slot);
        lanes[1] += bit(slot + 1);
        lanes[2] += bit(slot + 2);
        lanes[3] += bit(slot + 3);
        slot += 4;
    }
    let mut tail = 0.0;
    for slot in full..count {
        tail += bit(slot);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// One wordline's per-plane partial sums of a packed bit-plane read,
/// appended to `out` (`planes` values, plane 0 = LSB first).
///
/// Every activated column's effective on-current is digitized **once**
/// through the ladder into `level_scratch` (the caller-provided hoist that
/// keeps the per-plane loops free of ladder arithmetic); plane `q` then
/// counts, in the committed 4-lane order, the activated columns whose
/// effective level has bit `bit_offsets[slot] + q` set. Both the cached
/// kernels and the uncached reference oracles — monolithic and tiled —
/// funnel through this one function with their own `on_current` accessor,
/// so packed partial sums can never diverge between them.
pub(crate) fn row_plane_partials(
    mut on_current: impl FnMut(usize) -> f64,
    active_columns: &[usize],
    bit_offsets: &[u8],
    planes: usize,
    ladder: &LevelLadder,
    level_scratch: &mut Vec<usize>,
    out: &mut Vec<f64>,
) {
    level_scratch.clear();
    level_scratch.reserve(active_columns.len());
    for &column in active_columns {
        level_scratch.push(ladder.level_for_current(on_current(column)));
    }
    for plane in 0..planes {
        out.push(lane_bit_sum(active_columns.len(), |slot| {
            f64::from(((level_scratch[slot] >> (bit_offsets[slot] as usize + plane)) & 1) as u32)
        }));
    }
}

/// Struct-of-arrays conductance snapshot of a programmed crossbar.
///
/// All vectors are row-major; `on`/`off`/`delta` hold one entry per cell
/// (`delta = on - off`, precomputed so the read kernel is a pure gather-sum)
/// and `row_off_sums` one entry per row (the accumulated leakage of a fully
/// inhibited wordline, summed in column order).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ConductanceCache {
    columns: usize,
    on: Vec<f64>,
    off: Vec<f64>,
    delta: Vec<f64>,
    row_off_sums: Vec<f64>,
}

impl ConductanceCache {
    /// Builds a cache from an arbitrary per-cell evaluation point
    /// `(row, column) -> (on, off)`, visiting cells in row-major order.
    ///
    /// This is the entry point the non-ideality-aware owners use: the same
    /// closure that builds the cache also drives the uncached reference
    /// oracles and the partial-refresh path, so all three see identical
    /// per-cell currents bit for bit.
    pub(crate) fn build_with(
        rows: usize,
        columns: usize,
        mut eval: impl FnMut(usize, usize) -> (f64, f64),
    ) -> Self {
        let cells = rows * columns;
        let mut on = Vec::with_capacity(cells);
        let mut off = Vec::with_capacity(cells);
        let mut delta = Vec::with_capacity(cells);
        for row in 0..rows {
            for column in 0..columns {
                let (cell_on, cell_off) = eval(row, column);
                on.push(cell_on);
                off.push(cell_off);
                delta.push(cell_on - cell_off);
            }
        }
        let mut row_off_sums = Vec::with_capacity(rows);
        for row in 0..rows {
            let base = row * columns;
            let mut sum = 0.0;
            for column in 0..columns {
                sum += off[base + column];
            }
            row_off_sums.push(sum);
        }
        Self {
            columns,
            on,
            off,
            delta,
            row_off_sums,
        }
    }

    /// Overwrites the snapshot of one cell with freshly evaluated currents.
    ///
    /// The owning array must call
    /// [`ConductanceCache::recompute_row_off_sum`] for the touched row
    /// afterwards; until then the row's off-sum is stale.
    pub(crate) fn refresh_cell(&mut self, row: usize, column: usize, on: f64, off: f64) {
        let index = row * self.columns + column;
        self.on[index] = on;
        self.off[index] = off;
        self.delta[index] = on - off;
    }

    /// Recomputes one row's off-state leakage sum from the stored per-cell
    /// off currents, accumulating in column order — the exact order
    /// [`ConductanceCache::build_with`] uses, so a partial refresh is
    /// bit-identical to a full rebuild.
    pub(crate) fn recompute_row_off_sum(&mut self, row: usize) {
        let base = row * self.columns;
        let mut sum = 0.0;
        for column in 0..self.columns {
            sum += self.off[base + column];
        }
        self.row_off_sums[row] = sum;
    }

    /// Cached `V_on` read current of one cell.
    pub(crate) fn on_current(&self, row: usize, column: usize) -> f64 {
        self.on[row * self.columns + column]
    }

    /// On/off current delta of one cell (the contribution an activated
    /// column adds on top of the row's off-state leakage).
    pub(crate) fn delta(&self, row: usize, column: usize) -> f64 {
        self.delta[row * self.columns + column]
    }

    /// The precomputed on/off deltas of one row, indexed by column — the
    /// contiguous slice the 4-lane kernel gathers from.
    pub(crate) fn row_deltas(&self, row: usize) -> &[f64] {
        let base = row * self.columns;
        &self.delta[base..base + self.columns]
    }

    /// Accumulated off-state leakage of one row (summed in column order).
    pub(crate) fn row_off_sum(&self, row: usize) -> f64 {
        self.row_off_sums[row]
    }

    /// Adds the row's off currents into `accumulator`, cell by cell in
    /// column order. The tiled fabric uses this to build fabric-level row
    /// off-sums whose floating-point accumulation order is identical to a
    /// monolithic array's, so merged reads stay bit-exact.
    pub(crate) fn accumulate_row_off(&self, row: usize, accumulator: &mut f64) {
        let base = row * self.columns;
        for column in 0..self.columns {
            *accumulator += self.off[base + column];
        }
    }

    /// Accumulated current of one wordline: the row's full off-state leakage
    /// plus the activated columns' on/off deltas in the committed 4-lane
    /// order (see [`lane_delta_sum`]).
    pub(crate) fn wordline_current(&self, row: usize, activation: &Activation) -> f64 {
        self.row_off_sums[row] + lane_delta_sum(self.row_deltas(row), activation.active_columns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::layout::CrossbarLayout;
    use febim_device::FeFetParams;

    /// Builds a cache straight from a cell bank (the ideal-stack evaluation
    /// the owning array uses when no non-ideality is configured).
    fn build(rows: usize, columns: usize, cells: &[Cell]) -> ConductanceCache {
        ConductanceCache::build_with(rows, columns, |row, column| {
            let cell = &cells[row * columns + column];
            (cell.read_current_on(), cell.read_current_off())
        })
    }

    #[test]
    fn cache_matches_fresh_device_evaluations() {
        let layout = CrossbarLayout::new(2, 3, 1, false).unwrap();
        let mut cells: Vec<Cell> = (0..layout.cells())
            .map(|_| Cell::new(FeFetParams::febim_calibrated()))
            .collect();
        cells[1]
            .device_mut()
            .set_polarization(febim_device::Polarization::new(0.6));
        let cache = build(layout.rows(), layout.columns(), &cells);
        for (index, cell) in cells.iter().enumerate() {
            let row = index / layout.columns();
            let column = index % layout.columns();
            assert_eq!(cache.on_current(row, column), cell.read_current_on());
            assert_eq!(cache.off[index], cell.read_current_off());
            assert_eq!(
                cache.delta(row, column),
                cell.read_current_on() - cell.read_current_off()
            );
        }
        // The row off-sum accumulates in column order.
        let expected: f64 = cells[..layout.columns()]
            .iter()
            .fold(0.0, |sum, cell| sum + cell.read_current_off());
        assert_eq!(cache.row_off_sums[0], expected);
    }

    #[test]
    fn sparse_sum_visits_only_active_columns() {
        let layout = CrossbarLayout::new(1, 4, 1, false).unwrap();
        let mut cells: Vec<Cell> = (0..layout.cells())
            .map(|_| Cell::new(FeFetParams::febim_calibrated()))
            .collect();
        for cell in &mut cells {
            cell.device_mut()
                .set_polarization(febim_device::Polarization::new(0.7));
        }
        let cache = build(1, 4, &cells);
        let none = Activation::from_columns(&layout, &[]).unwrap();
        let all = Activation::all_columns(&layout);
        assert_eq!(cache.wordline_current(0, &none), cache.row_off_sums[0]);
        assert!(cache.wordline_current(0, &all) > cache.wordline_current(0, &none));
    }

    #[test]
    fn partial_refresh_matches_full_rebuild_bit_for_bit() {
        let layout = CrossbarLayout::new(3, 2, 2, false).unwrap();
        let mut cells: Vec<Cell> = (0..layout.cells())
            .map(|_| Cell::new(FeFetParams::febim_calibrated()))
            .collect();
        for (index, cell) in cells.iter_mut().enumerate() {
            cell.device_mut()
                .set_polarization(febim_device::Polarization::new(0.2 + 0.05 * (index as f64)));
        }
        let mut cache = build(layout.rows(), layout.columns(), &cells);
        // Mutate two cells of row 1 and refresh only those entries.
        for column in [0usize, 3] {
            let index = layout.columns() + column;
            cells[index]
                .device_mut()
                .set_polarization(febim_device::Polarization::new(0.9));
            cache.refresh_cell(
                1,
                column,
                cells[index].read_current_on(),
                cells[index].read_current_off(),
            );
        }
        cache.recompute_row_off_sum(1);
        let rebuilt = build(layout.rows(), layout.columns(), &cells);
        assert_eq!(cache, rebuilt);
    }

    #[test]
    fn bit_lane_sum_counts_exactly() {
        // 0/1 summands make every partial an exact integer regardless of
        // striping, but the committed lane structure must still be the one
        // an explicit lane-by-lane evaluation produces.
        let bits = [1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0];
        for count in 0..=bits.len() {
            let measured = lane_bit_sum(count, |slot| bits[slot]);
            let expected: f64 = bits[..count].iter().sum();
            assert_eq!(measured, expected, "count={count}");
        }
    }

    #[test]
    fn row_plane_partials_count_set_bits_per_plane() {
        // Three packed columns whose effective currents decode to levels
        // 0b0110, 0b0001 and 0b1111 on a 16-level ladder; the digit of
        // interest sits at offset 0, 0 and 2 respectively.
        let ladder = crate::read::LevelLadder::new(0.1e-6, 1.0e-6, 16).unwrap();
        let span = 0.9e-6;
        let levels = [0b0110usize, 0b0001, 0b1111];
        let currents: Vec<f64> = levels
            .iter()
            .map(|&level| 0.1e-6 + level as f64 / 15.0 * span)
            .collect();
        let active = [0usize, 1, 2];
        let offsets = [0u8, 0, 2];
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        row_plane_partials(
            |column| currents[column],
            &active,
            &offsets,
            2,
            &ladder,
            &mut scratch,
            &mut out,
        );
        // Plane 0 (LSB): bits are 0, 1, 1 → 2. Plane 1: bits 1, 0, 1 → 2.
        assert_eq!(out, vec![2.0, 2.0]);
        assert_eq!(scratch, levels);
    }

    #[test]
    fn lane_sum_order_is_the_committed_one() {
        // Deltas chosen so reassociation visibly changes the result: the
        // committed order must match an explicit lane-by-lane evaluation.
        let deltas: Vec<f64> = (0..11)
            .map(|index| 1.0 + (index as f64) * 1e-16 + (index as f64).sin())
            .collect();
        for active in 0..=deltas.len() {
            let columns: Vec<usize> = (0..active).collect();
            let measured = lane_delta_sum(&deltas, &columns);
            let mut lanes = [0.0f64; 4];
            let full = active / 4 * 4;
            for (slot, &column) in columns[..full].iter().enumerate() {
                lanes[slot % 4] += deltas[column];
            }
            let mut tail = 0.0;
            for &column in &columns[full..] {
                tail += deltas[column];
            }
            let expected = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail;
            assert_eq!(measured, expected, "active={active}");
        }
    }
}
