//! Precomputed per-cell conductances for the sparse read path.
//!
//! FeBiM's efficiency claim rests on the crossbar accumulating quantized
//! log-posteriors in a single read cycle; evaluating the FeFET I-V equation
//! (a transcendental softplus) for every cell on every inference throws that
//! away in software. This cache mirrors the hardware instead: the on/off read
//! current of every cell is computed once per programming/variation event,
//! and a read becomes a sparse sum over the activated columns only:
//!
//! ```text
//! I_row = Σ_all off[row][c]  +  Σ_active (on[row][c] - off[row][c])
//!       = row_off_sum[row]   +  Σ_active delta
//! ```
//!
//! so one inference is O(rows × activated columns) with no device-model
//! calls. [`crate::CrossbarArray`] rebuilds the cache lazily after any
//! mutation (programming, variation injection, direct cell access).

use crate::cell::Cell;
use crate::read::Activation;

/// Struct-of-arrays conductance snapshot of a programmed crossbar.
///
/// All vectors are row-major; `on`/`off` hold one entry per cell and
/// `row_off_sums` one entry per row (the accumulated leakage of a fully
/// inhibited wordline, summed in column order).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ConductanceCache {
    columns: usize,
    on: Vec<f64>,
    off: Vec<f64>,
    row_off_sums: Vec<f64>,
}

impl ConductanceCache {
    /// Evaluates the device model once per cell and snapshots the results.
    pub(crate) fn build(rows: usize, columns: usize, cells: &[Cell]) -> Self {
        debug_assert_eq!(cells.len(), rows * columns);
        let mut on = Vec::with_capacity(cells.len());
        let mut off = Vec::with_capacity(cells.len());
        for cell in cells {
            on.push(cell.read_current_on());
            off.push(cell.read_current_off());
        }
        let mut row_off_sums = Vec::with_capacity(rows);
        for row in 0..rows {
            let base = row * columns;
            let mut sum = 0.0;
            for column in 0..columns {
                sum += off[base + column];
            }
            row_off_sums.push(sum);
        }
        Self {
            columns,
            on,
            off,
            row_off_sums,
        }
    }

    /// Cached `V_on` read current of one cell.
    pub(crate) fn on_current(&self, row: usize, column: usize) -> f64 {
        self.on[row * self.columns + column]
    }

    /// On/off current delta of one cell (the contribution an activated
    /// column adds on top of the row's off-state leakage).
    pub(crate) fn delta(&self, row: usize, column: usize) -> f64 {
        let index = row * self.columns + column;
        self.on[index] - self.off[index]
    }

    /// Accumulated off-state leakage of one row (summed in column order).
    pub(crate) fn row_off_sum(&self, row: usize) -> f64 {
        self.row_off_sums[row]
    }

    /// Adds the row's off currents into `accumulator`, cell by cell in
    /// column order. The tiled fabric uses this to build fabric-level row
    /// off-sums whose floating-point accumulation order is identical to a
    /// monolithic array's, so merged reads stay bit-exact.
    pub(crate) fn accumulate_row_off(&self, row: usize, accumulator: &mut f64) {
        let base = row * self.columns;
        for column in 0..self.columns {
            *accumulator += self.off[base + column];
        }
    }

    /// Accumulated current of one wordline: the row's full off-state leakage
    /// plus the on/off delta of every activated column, visited in activation
    /// order.
    pub(crate) fn wordline_current(&self, row: usize, activation: &Activation) -> f64 {
        let base = row * self.columns;
        let mut current = self.row_off_sums[row];
        for &column in activation.active_columns() {
            let index = base + column;
            current += self.on[index] - self.off[index];
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::CrossbarLayout;
    use febim_device::FeFetParams;

    #[test]
    fn cache_matches_fresh_device_evaluations() {
        let layout = CrossbarLayout::new(2, 3, 1, false).unwrap();
        let mut cells: Vec<Cell> = (0..layout.cells())
            .map(|_| Cell::new(FeFetParams::febim_calibrated()))
            .collect();
        cells[1]
            .device_mut()
            .set_polarization(febim_device::Polarization::new(0.6));
        let cache = ConductanceCache::build(layout.rows(), layout.columns(), &cells);
        for (index, cell) in cells.iter().enumerate() {
            let row = index / layout.columns();
            let column = index % layout.columns();
            assert_eq!(cache.on_current(row, column), cell.read_current_on());
            assert_eq!(cache.off[index], cell.read_current_off());
        }
        // The row off-sum accumulates in column order.
        let expected: f64 = cells[..layout.columns()]
            .iter()
            .fold(0.0, |sum, cell| sum + cell.read_current_off());
        assert_eq!(cache.row_off_sums[0], expected);
    }

    #[test]
    fn sparse_sum_visits_only_active_columns() {
        let layout = CrossbarLayout::new(1, 4, 1, false).unwrap();
        let mut cells: Vec<Cell> = (0..layout.cells())
            .map(|_| Cell::new(FeFetParams::febim_calibrated()))
            .collect();
        for cell in &mut cells {
            cell.device_mut()
                .set_polarization(febim_device::Polarization::new(0.7));
        }
        let cache = ConductanceCache::build(1, 4, &cells);
        let none = Activation::from_columns(&layout, &[]).unwrap();
        let all = Activation::all_columns(&layout);
        assert_eq!(cache.wordline_current(0, &none), cache.row_off_sums[0]);
        assert!(cache.wordline_current(0, &all) > cache.wordline_current(0, &none));
    }
}
