//! One crossbar cell: a single multi-level FeFET plus programming metadata.

use serde::{Deserialize, Serialize};

use febim_device::{FeFet, FeFetParams};

/// One 1-FeFET crossbar cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    device: FeFet,
    programmed_level: Option<usize>,
    disturb_pulses: u64,
    /// Array clock tick at which the cell was last (re)programmed; retention
    /// drift ages the cell relative to this instant.
    programmed_at: u64,
    /// Whether the ferroelectric stack is permanently stuck: write pulses no
    /// longer move the polarization, so reprogramming cannot repair the cell
    /// (spare-row remapping can route around it).
    #[serde(default)]
    stuck: bool,
}

impl Cell {
    /// Creates an erased cell with the given device parameters.
    pub fn new(params: FeFetParams) -> Self {
        Self {
            device: FeFet::new(params),
            programmed_level: None,
            disturb_pulses: 0,
            programmed_at: 0,
            stuck: false,
        }
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &FeFet {
        &self.device
    }

    /// Mutably borrow the underlying device.
    pub fn device_mut(&mut self) -> &mut FeFet {
        &mut self.device
    }

    /// The multi-level state the cell was last programmed to, if any.
    pub fn programmed_level(&self) -> Option<usize> {
        self.programmed_level
    }

    /// Records the level the cell was programmed to.
    pub fn set_programmed_level(&mut self, level: usize) {
        self.programmed_level = Some(level);
    }

    /// Forgets the programmed level (the cell reads as erased bookkeeping;
    /// callers erase the device separately).
    pub fn clear_programmed_level(&mut self) {
        self.programmed_level = None;
    }

    /// Number of half-bias disturb pulses the cell has absorbed since it was
    /// last programmed.
    pub fn disturb_pulses(&self) -> u64 {
        self.disturb_pulses
    }

    /// Registers `count` additional half-bias disturb pulses.
    pub fn add_disturb_pulses(&mut self, count: u64) {
        self.disturb_pulses = self.disturb_pulses.saturating_add(count);
    }

    /// Clears the disturb counter (called after a fresh program operation).
    pub fn reset_disturb(&mut self) {
        self.disturb_pulses = 0;
    }

    /// Array clock tick at which the cell was last (re)programmed.
    pub fn programmed_at(&self) -> u64 {
        self.programmed_at
    }

    /// Records the array clock tick of a (re)program; retention drift ages
    /// the cell from this instant.
    pub fn set_programmed_at(&mut self, tick: u64) {
        self.programmed_at = tick;
    }

    /// Whether the cell is permanently stuck (programming pulses no longer
    /// move its polarization).
    pub fn is_stuck(&self) -> bool {
        self.stuck
    }

    /// Marks the cell as permanently stuck in its current polarization state.
    pub fn set_stuck(&mut self, stuck: bool) {
        self.stuck = stuck;
    }

    /// Read current of the cell when its bitline is activated with `V_on`.
    pub fn read_current_on(&self) -> f64 {
        self.device.read_current_on()
    }

    /// Leakage current of the cell when its bitline is inhibited with `V_off`.
    pub fn read_current_off(&self) -> f64 {
        self.device.read_current_off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_is_erased_and_unprogrammed() {
        let cell = Cell::new(FeFetParams::febim_calibrated());
        assert_eq!(cell.programmed_level(), None);
        assert_eq!(cell.disturb_pulses(), 0);
        assert!(cell.read_current_on() < 1e-9);
    }

    #[test]
    fn programmed_level_bookkeeping() {
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        cell.set_programmed_level(5);
        assert_eq!(cell.programmed_level(), Some(5));
    }

    #[test]
    fn disturb_counter_accumulates_and_resets() {
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        cell.add_disturb_pulses(10);
        cell.add_disturb_pulses(7);
        assert_eq!(cell.disturb_pulses(), 17);
        cell.reset_disturb();
        assert_eq!(cell.disturb_pulses(), 0);
    }

    #[test]
    fn disturb_counter_saturates() {
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        cell.add_disturb_pulses(u64::MAX);
        cell.add_disturb_pulses(5);
        assert_eq!(cell.disturb_pulses(), u64::MAX);
    }

    #[test]
    fn programmed_at_round_trips() {
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        assert_eq!(cell.programmed_at(), 0);
        cell.set_programmed_at(1234);
        assert_eq!(cell.programmed_at(), 1234);
    }

    #[test]
    fn stuck_flag_round_trips() {
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        assert!(!cell.is_stuck());
        cell.set_stuck(true);
        assert!(cell.is_stuck());
        cell.set_stuck(false);
        assert!(!cell.is_stuck());
    }

    #[test]
    fn off_current_is_negligible() {
        let cell = Cell::new(FeFetParams::febim_calibrated());
        assert!(cell.read_current_off() < cell.read_current_on() + 1e-12);
    }
}
