//! Read operation: bitline activation patterns and wordline accumulation.

use serde::{Deserialize, Serialize};

use febim_device::DeviceError;

use crate::errors::{CrossbarError, Result};
use crate::layout::CrossbarLayout;

/// Flash-ADC style quantizer mapping an effective cell read current back to
/// the nearest programmed multi-level state — the digitizing front end of
/// the packed bit-plane read path.
///
/// The level programmer targets currents linearly spaced over
/// `[min_current, max_current]`, so the ladder's `round()` recovers the
/// programmed level exactly on an ideal array; under non-idealities it
/// digitizes whatever effective current the epoch-versioned cache (or the
/// uncached oracle — both funnel through the same per-cell evaluation)
/// reports, so the cached and reference packed reads can never diverge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelLadder {
    min_current: f64,
    max_current: f64,
    levels: usize,
}

impl LevelLadder {
    /// A ladder with `levels` thresholds linearly spaced over the read
    /// window `[min_current, max_current]` (amperes).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] for fewer than two levels or a
    /// non-finite / inverted current window.
    pub fn new(min_current: f64, max_current: f64, levels: usize) -> Result<Self> {
        if levels < 2 {
            return Err(CrossbarError::Device(DeviceError::InvalidParameter {
                name: "levels",
                reason: format!("a level ladder needs at least 2 levels, got {levels}"),
            }));
        }
        if !(min_current.is_finite() && max_current.is_finite() && max_current > min_current) {
            return Err(CrossbarError::Device(DeviceError::InvalidParameter {
                name: "current_window",
                reason: format!(
                    "read window [{min_current:e}, {max_current:e}] must be finite and increasing"
                ),
            }));
        }
        Ok(Self {
            min_current,
            max_current,
            levels,
        })
    }

    /// Number of distinguishable levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Low end of the read window, in amperes.
    pub fn min_current(&self) -> f64 {
        self.min_current
    }

    /// High end of the read window, in amperes.
    pub fn max_current(&self) -> f64 {
        self.max_current
    }

    /// The level whose target current is nearest to `current`, clamped to
    /// the ladder's range (currents outside the window saturate, exactly
    /// like a flash ADC).
    pub fn level_for_current(&self, current: f64) -> usize {
        let span = self.max_current - self.min_current;
        let normalized = (current - self.min_current) / span * (self.levels - 1) as f64;
        // NaN rounds to 0 through the max() (f64::max ignores a NaN self).
        let level = normalized.round().max(0.0) as usize;
        level.min(self.levels - 1)
    }
}

/// Which bitlines are driven with `V_on` during one inference.
///
/// FeBiM activates the prior column (if present) plus exactly one column per
/// evidence block, selected by the discretized evidence value of the sample.
///
/// Membership is tracked both as an ordered column list (for the sparse read
/// path, which only visits activated columns) and as a dense mask (so
/// [`Activation::is_active`] is O(1) instead of scanning the list). An
/// `Activation` can be rebuilt in place with [`Activation::set_observation`],
/// so batched inference reuses one allocation across samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activation {
    active_columns: Vec<usize>,
    active_mask: Vec<bool>,
    total_columns: usize,
}

impl Activation {
    /// An activation with no driven bitlines, sized for the given layout.
    ///
    /// Use this to pre-allocate a scratch activation that is then filled with
    /// [`Activation::set_observation`] once per sample.
    pub fn empty(layout: &CrossbarLayout) -> Self {
        Self {
            active_columns: Vec::with_capacity(layout.activated_columns()),
            active_mask: vec![false; layout.columns()],
            total_columns: layout.columns(),
        }
    }

    /// Builds the activation for a discretized observation.
    ///
    /// `evidence_levels[i]` is the discretized level of evidence node `i` and
    /// must be smaller than the layout's `evidence_levels`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EvidenceCountMismatch`] when the number of
    /// evidence values does not match the layout's evidence nodes and
    /// [`CrossbarError::InvalidEvidence`] when a level is out of range.
    pub fn from_observation(layout: &CrossbarLayout, evidence_levels: &[usize]) -> Result<Self> {
        let mut activation = Self::empty(layout);
        activation.set_observation(layout, evidence_levels)?;
        Ok(activation)
    }

    /// Rebuilds the activation in place for a new discretized observation,
    /// reusing the existing column list and mask allocations.
    ///
    /// On error the activation is left empty (no column driven).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EvidenceCountMismatch`] when the number of
    /// evidence values does not match the layout's evidence nodes and
    /// [`CrossbarError::InvalidEvidence`] when a level is out of range.
    pub fn set_observation(
        &mut self,
        layout: &CrossbarLayout,
        evidence_levels: &[usize],
    ) -> Result<()> {
        if evidence_levels.len() != layout.evidence_nodes() {
            return Err(CrossbarError::EvidenceCountMismatch {
                expected: layout.evidence_nodes(),
                found: evidence_levels.len(),
            });
        }
        self.clear();
        self.resize_for(layout);
        let filled = (|| {
            if let Some(prior) = layout.prior_column() {
                self.push_column(prior);
            }
            for (node, &level) in evidence_levels.iter().enumerate() {
                let column = layout.likelihood_column(node, level)?;
                self.push_column(column);
            }
            Ok(())
        })();
        if filled.is_err() {
            self.clear();
        }
        filled
    }

    /// Activation driving every bitline simultaneously (the stress pattern
    /// used for the scalability study of Fig. 6).
    pub fn all_columns(layout: &CrossbarLayout) -> Self {
        Self {
            active_columns: (0..layout.columns()).collect(),
            active_mask: vec![true; layout.columns()],
            total_columns: layout.columns(),
        }
    }

    /// Activation driving an explicit list of columns. Duplicate entries are
    /// collapsed: each column is driven (and accumulated) at most once.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when a column index is
    /// outside the layout.
    pub fn from_columns(layout: &CrossbarLayout, columns: &[usize]) -> Result<Self> {
        for &column in columns {
            if column >= layout.columns() {
                return Err(CrossbarError::IndexOutOfBounds {
                    row: 0,
                    column,
                    rows: layout.rows(),
                    columns: layout.columns(),
                });
            }
        }
        let mut activation = Self::empty(layout);
        for &column in columns {
            activation.push_column(column);
        }
        Ok(activation)
    }

    /// Removes every driven column, keeping the allocations.
    fn clear(&mut self) {
        for &column in &self.active_columns {
            self.active_mask[column] = false;
        }
        self.active_columns.clear();
    }

    /// Adapts the mask length to a (possibly different) layout. Must only be
    /// called on an empty activation.
    fn resize_for(&mut self, layout: &CrossbarLayout) {
        if self.total_columns != layout.columns() {
            self.active_mask.clear();
            self.active_mask.resize(layout.columns(), false);
            self.total_columns = layout.columns();
        }
    }

    /// Marks one in-range column as driven (idempotent).
    fn push_column(&mut self, column: usize) {
        if !self.active_mask[column] {
            self.active_mask[column] = true;
            self.active_columns.push(column);
        }
    }

    /// The activated column indices, in activation order.
    pub fn active_columns(&self) -> &[usize] {
        &self.active_columns
    }

    /// Number of activated columns.
    pub fn len(&self) -> usize {
        self.active_columns.len()
    }

    /// Whether no column is activated.
    pub fn is_empty(&self) -> bool {
        self.active_columns.is_empty()
    }

    /// Whether a given column is activated (O(1) mask lookup).
    pub fn is_active(&self, column: usize) -> bool {
        self.active_mask.get(column).copied().unwrap_or(false)
    }

    /// Total number of columns in the layout the activation was built for.
    pub fn total_columns(&self) -> usize {
        self.total_columns
    }
}

/// Per-wordline read counters with interior mutability.
///
/// Read paths take `&self` on the owning array, so the counters live in
/// [`std::cell::Cell`]s; both [`crate::CrossbarArray`] and
/// [`crate::TileGrid`] use this to drive the read-disturb tier model. The
/// counters are derived read-history state: they are skipped by
/// serialization but participate in equality (read history is physical
/// state once a disturb model is configured).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ReadCounters {
    counts: Vec<std::cell::Cell<u64>>,
}

impl ReadCounters {
    /// Zeroed counters for `rows` wordlines.
    pub(crate) fn new(rows: usize) -> Self {
        Self {
            counts: vec![std::cell::Cell::new(0); rows],
        }
    }

    /// Reads accumulated by one wordline since its last reset.
    pub(crate) fn get(&self, row: usize) -> u64 {
        self.counts[row].get()
    }

    /// Registers one read of `row`, returning `(before, after)` so the
    /// caller can detect disturb-tier crossings.
    pub(crate) fn bump(&self, row: usize) -> (u64, u64) {
        let before = self.counts[row].get();
        let after = before.saturating_add(1);
        self.counts[row].set(after);
        (before, after)
    }

    /// Clears one wordline's counter (called after a row refresh).
    pub(crate) fn reset_row(&self, row: usize) {
        self.counts[row].set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> CrossbarLayout {
        CrossbarLayout::new(3, 2, 4, true).unwrap()
    }

    #[test]
    fn observation_activates_prior_and_one_column_per_node() {
        let layout = layout();
        let activation = Activation::from_observation(&layout, &[1, 3]).unwrap();
        assert_eq!(activation.len(), 3);
        assert!(activation.is_active(0)); // prior
        assert!(activation.is_active(2)); // node 0, level 1
        assert!(activation.is_active(8)); // node 1, level 3
        assert!(!activation.is_active(1));
        assert_eq!(activation.total_columns(), layout.columns());
    }

    #[test]
    fn observation_without_prior_column() {
        let layout = CrossbarLayout::new(3, 2, 4, false).unwrap();
        let activation = Activation::from_observation(&layout, &[0, 0]).unwrap();
        assert_eq!(activation.len(), 2);
        assert_eq!(activation.active_columns(), &[0, 4]);
    }

    #[test]
    fn wrong_number_of_evidence_values_rejected() {
        let layout = layout();
        assert!(matches!(
            Activation::from_observation(&layout, &[1]),
            Err(CrossbarError::EvidenceCountMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            Activation::from_observation(&layout, &[1, 2, 3]),
            Err(CrossbarError::EvidenceCountMismatch {
                expected: 2,
                found: 3
            })
        ));
    }

    #[test]
    fn out_of_range_level_rejected() {
        let layout = layout();
        assert!(Activation::from_observation(&layout, &[1, 4]).is_err());
    }

    #[test]
    fn all_columns_activates_everything() {
        let layout = layout();
        let activation = Activation::all_columns(&layout);
        assert_eq!(activation.len(), layout.columns());
        assert!(!activation.is_empty());
    }

    #[test]
    fn explicit_columns_validated() {
        let layout = layout();
        let activation = Activation::from_columns(&layout, &[0, 5]).unwrap();
        assert_eq!(activation.active_columns(), &[0, 5]);
        assert!(Activation::from_columns(&layout, &[99]).is_err());
        let empty = Activation::from_columns(&layout, &[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn duplicate_columns_collapse() {
        let layout = layout();
        let activation = Activation::from_columns(&layout, &[5, 0, 5, 0]).unwrap();
        assert_eq!(activation.active_columns(), &[5, 0]);
        assert_eq!(activation.len(), 2);
    }

    #[test]
    fn set_observation_reuses_and_resets() {
        let layout = layout();
        let mut activation = Activation::empty(&layout);
        assert!(activation.is_empty());
        activation.set_observation(&layout, &[1, 3]).unwrap();
        assert_eq!(activation.len(), 3);
        assert!(activation.is_active(8));
        activation.set_observation(&layout, &[0, 0]).unwrap();
        assert_eq!(activation.len(), 3);
        assert!(activation.is_active(1)); // node 0, level 0
        assert!(!activation.is_active(8)); // previous column unset

        // A failed rebuild leaves the activation empty.
        assert!(activation.set_observation(&layout, &[0, 99]).is_err());
        assert!(activation.is_empty());
        assert!(!activation.is_active(1));
    }

    #[test]
    fn set_observation_adapts_to_a_new_layout() {
        let small = CrossbarLayout::new(2, 1, 2, false).unwrap();
        let large = layout();
        let mut activation = Activation::empty(&small);
        activation.set_observation(&small, &[1]).unwrap();
        assert_eq!(activation.total_columns(), small.columns());
        activation.set_observation(&large, &[1, 3]).unwrap();
        assert_eq!(activation.total_columns(), large.columns());
        assert!(activation.is_active(8));
    }

    #[test]
    fn is_active_is_false_outside_the_layout() {
        let layout = layout();
        let activation = Activation::all_columns(&layout);
        assert!(!activation.is_active(layout.columns()));
        assert!(!activation.is_active(usize::MAX));
    }

    #[test]
    fn level_ladder_round_trips_the_programmed_targets() {
        let ladder = LevelLadder::new(0.1e-6, 1.0e-6, 16).unwrap();
        assert_eq!(ladder.levels(), 16);
        let span = ladder.max_current() - ladder.min_current();
        for level in 0..16 {
            let target = ladder.min_current() + level as f64 / 15.0 * span;
            assert_eq!(ladder.level_for_current(target), level);
            // Half-a-step perturbations still land on the same level.
            assert_eq!(ladder.level_for_current(target + 0.4 * span / 15.0), level);
            assert_eq!(ladder.level_for_current(target - 0.4 * span / 15.0), level);
        }
        // Out-of-window currents saturate like a flash ADC.
        assert_eq!(ladder.level_for_current(-1.0), 0);
        assert_eq!(ladder.level_for_current(1.0), 15);
        assert_eq!(ladder.level_for_current(f64::NAN), 0);
    }

    #[test]
    fn level_ladder_validates_its_window() {
        assert!(LevelLadder::new(0.1e-6, 1.0e-6, 1).is_err());
        assert!(LevelLadder::new(1.0e-6, 0.1e-6, 4).is_err());
        assert!(LevelLadder::new(0.0, f64::INFINITY, 4).is_err());
        assert!(LevelLadder::new(0.1e-6, 1.0e-6, 2).is_ok());
    }

    #[test]
    fn read_counters_bump_and_reset() {
        let counters = ReadCounters::new(3);
        assert_eq!(counters.get(1), 0);
        assert_eq!(counters.bump(1), (0, 1));
        assert_eq!(counters.bump(1), (1, 2));
        assert_eq!(counters.bump(0), (0, 1));
        assert_eq!(counters.get(1), 2);
        counters.reset_row(1);
        assert_eq!(counters.get(1), 0);
        assert_eq!(counters.get(0), 1);
        // Equality follows the counter values.
        let other = ReadCounters::new(3);
        other.bump(0);
        assert_eq!(counters, other);
    }
}
