//! Read operation: bitline activation patterns and wordline accumulation.

use serde::{Deserialize, Serialize};

use crate::errors::{CrossbarError, Result};
use crate::layout::CrossbarLayout;

/// Which bitlines are driven with `V_on` during one inference.
///
/// FeBiM activates the prior column (if present) plus exactly one column per
/// evidence block, selected by the discretized evidence value of the sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activation {
    active_columns: Vec<usize>,
    total_columns: usize,
}

impl Activation {
    /// Builds the activation for a discretized observation.
    ///
    /// `evidence_levels[i]` is the discretized level of evidence node `i` and
    /// must be smaller than the layout's `evidence_levels`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidEvidence`] when the number of evidence
    /// values does not match the layout or a level is out of range.
    pub fn from_observation(layout: &CrossbarLayout, evidence_levels: &[usize]) -> Result<Self> {
        if evidence_levels.len() != layout.evidence_nodes() {
            return Err(CrossbarError::InvalidEvidence {
                node: evidence_levels.len(),
                level: 0,
            });
        }
        let mut active_columns = Vec::with_capacity(layout.activated_columns());
        if let Some(prior) = layout.prior_column() {
            active_columns.push(prior);
        }
        for (node, &level) in evidence_levels.iter().enumerate() {
            active_columns.push(layout.likelihood_column(node, level)?);
        }
        Ok(Self {
            active_columns,
            total_columns: layout.columns(),
        })
    }

    /// Activation driving every bitline simultaneously (the stress pattern
    /// used for the scalability study of Fig. 6).
    pub fn all_columns(layout: &CrossbarLayout) -> Self {
        Self {
            active_columns: (0..layout.columns()).collect(),
            total_columns: layout.columns(),
        }
    }

    /// Activation driving an explicit list of columns.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when a column index is
    /// outside the layout.
    pub fn from_columns(layout: &CrossbarLayout, columns: &[usize]) -> Result<Self> {
        for &column in columns {
            if column >= layout.columns() {
                return Err(CrossbarError::IndexOutOfBounds {
                    row: 0,
                    column,
                    rows: layout.rows(),
                    columns: layout.columns(),
                });
            }
        }
        Ok(Self {
            active_columns: columns.to_vec(),
            total_columns: layout.columns(),
        })
    }

    /// The activated column indices, in activation order.
    pub fn active_columns(&self) -> &[usize] {
        &self.active_columns
    }

    /// Number of activated columns.
    pub fn len(&self) -> usize {
        self.active_columns.len()
    }

    /// Whether no column is activated.
    pub fn is_empty(&self) -> bool {
        self.active_columns.is_empty()
    }

    /// Whether a given column is activated.
    pub fn is_active(&self, column: usize) -> bool {
        self.active_columns.contains(&column)
    }

    /// Total number of columns in the layout the activation was built for.
    pub fn total_columns(&self) -> usize {
        self.total_columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> CrossbarLayout {
        CrossbarLayout::new(3, 2, 4, true).unwrap()
    }

    #[test]
    fn observation_activates_prior_and_one_column_per_node() {
        let layout = layout();
        let activation = Activation::from_observation(&layout, &[1, 3]).unwrap();
        assert_eq!(activation.len(), 3);
        assert!(activation.is_active(0)); // prior
        assert!(activation.is_active(2)); // node 0, level 1
        assert!(activation.is_active(8)); // node 1, level 3
        assert!(!activation.is_active(1));
        assert_eq!(activation.total_columns(), layout.columns());
    }

    #[test]
    fn observation_without_prior_column() {
        let layout = CrossbarLayout::new(3, 2, 4, false).unwrap();
        let activation = Activation::from_observation(&layout, &[0, 0]).unwrap();
        assert_eq!(activation.len(), 2);
        assert_eq!(activation.active_columns(), &[0, 4]);
    }

    #[test]
    fn wrong_number_of_evidence_values_rejected() {
        let layout = layout();
        assert!(Activation::from_observation(&layout, &[1]).is_err());
        assert!(Activation::from_observation(&layout, &[1, 2, 3]).is_err());
    }

    #[test]
    fn out_of_range_level_rejected() {
        let layout = layout();
        assert!(Activation::from_observation(&layout, &[1, 4]).is_err());
    }

    #[test]
    fn all_columns_activates_everything() {
        let layout = layout();
        let activation = Activation::all_columns(&layout);
        assert_eq!(activation.len(), layout.columns());
        assert!(!activation.is_empty());
    }

    #[test]
    fn explicit_columns_validated() {
        let layout = layout();
        let activation = Activation::from_columns(&layout, &[0, 5]).unwrap();
        assert_eq!(activation.active_columns(), &[0, 5]);
        assert!(Activation::from_columns(&layout, &[99]).is_err());
        let empty = Activation::from_columns(&layout, &[]).unwrap();
        assert!(empty.is_empty());
    }
}
