//! Logical layout of the FeBiM crossbar.
//!
//! The array stores one Bayesian model with `k` events (one wordline each),
//! `n` evidence nodes and `m` discretized levels per evidence value. The
//! first bitline holds the quantized priors; each evidence node then owns a
//! block of `m` bitlines holding its quantized likelihoods (Fig. 3).

use serde::{Deserialize, Serialize};

use crate::errors::{CrossbarError, Result};

/// Logical position of a crossbar column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnRole {
    /// The single prior column (only present when the layout has a prior).
    Prior,
    /// A likelihood column for `(evidence node, discretized level)`.
    Likelihood {
        /// Evidence node index.
        node: usize,
        /// Discretized evidence level within the node's block.
        level: usize,
    },
}

/// Geometry of a FeBiM crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossbarLayout {
    /// Number of events / classes (wordlines).
    events: usize,
    /// Number of evidence nodes (features).
    evidence_nodes: usize,
    /// Number of discretized levels per evidence node (bitlines per block).
    evidence_levels: usize,
    /// Whether a dedicated prior column is present. The paper omits it when
    /// the prior is uniform (e.g. the balanced iris dataset).
    has_prior: bool,
}

impl CrossbarLayout {
    /// Creates a layout.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidLayout`] when any dimension is zero.
    pub fn new(
        events: usize,
        evidence_nodes: usize,
        evidence_levels: usize,
        has_prior: bool,
    ) -> Result<Self> {
        if events == 0 {
            return Err(CrossbarError::InvalidLayout {
                reason: "layout needs at least one event (wordline)".to_string(),
            });
        }
        if evidence_nodes == 0 {
            return Err(CrossbarError::InvalidLayout {
                reason: "layout needs at least one evidence node".to_string(),
            });
        }
        if evidence_levels == 0 {
            return Err(CrossbarError::InvalidLayout {
                reason: "layout needs at least one level per evidence node".to_string(),
            });
        }
        Ok(Self {
            events,
            evidence_nodes,
            evidence_levels,
            has_prior,
        })
    }

    /// Number of events (wordlines / rows).
    pub fn events(&self) -> usize {
        self.events
    }

    /// Number of evidence nodes (features).
    pub fn evidence_nodes(&self) -> usize {
        self.evidence_nodes
    }

    /// Number of discretized levels per evidence node.
    pub fn evidence_levels(&self) -> usize {
        self.evidence_levels
    }

    /// Whether the layout has a dedicated prior column.
    pub fn has_prior(&self) -> bool {
        self.has_prior
    }

    /// Total number of rows (same as [`CrossbarLayout::events`]).
    pub fn rows(&self) -> usize {
        self.events
    }

    /// Total number of columns: one optional prior column plus one block of
    /// `evidence_levels` columns per evidence node.
    pub fn columns(&self) -> usize {
        usize::from(self.has_prior) + self.evidence_nodes * self.evidence_levels
    }

    /// Total number of cells in the array.
    pub fn cells(&self) -> usize {
        self.rows() * self.columns()
    }

    /// Number of columns activated during one inference (the prior column, if
    /// present, plus exactly one column per evidence node).
    pub fn activated_columns(&self) -> usize {
        usize::from(self.has_prior) + self.evidence_nodes
    }

    /// Column index of the prior column, if present.
    pub fn prior_column(&self) -> Option<usize> {
        self.has_prior.then_some(0)
    }

    /// Column index holding the likelihood of `(node, level)`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidEvidence`] when the node or level is
    /// outside the layout.
    pub fn likelihood_column(&self, node: usize, level: usize) -> Result<usize> {
        if node >= self.evidence_nodes || level >= self.evidence_levels {
            return Err(CrossbarError::InvalidEvidence { node, level });
        }
        Ok(usize::from(self.has_prior) + node * self.evidence_levels + level)
    }

    /// Whether the whole layout fits inside a single physical tile of
    /// `rows × columns` cells.
    pub fn fits_within(&self, rows: usize, columns: usize) -> bool {
        self.rows() <= rows && self.columns() <= columns
    }

    /// Number of `(row, column)` tiles of the given fixed size needed to
    /// cover the layout (the grid dimensions of a tiled fabric).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidLayout`] for a zero-sized tile.
    pub fn tiles_needed(&self, tile_rows: usize, tile_columns: usize) -> Result<(usize, usize)> {
        if tile_rows == 0 || tile_columns == 0 {
            return Err(CrossbarError::InvalidLayout {
                reason: format!("tile shape {tile_rows}x{tile_columns} has a zero dimension"),
            });
        }
        Ok((
            self.rows().div_ceil(tile_rows),
            self.columns().div_ceil(tile_columns),
        ))
    }

    /// The role of a column index.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when the column is outside
    /// the layout.
    pub fn column_role(&self, column: usize) -> Result<ColumnRole> {
        if column >= self.columns() {
            return Err(CrossbarError::IndexOutOfBounds {
                row: 0,
                column,
                rows: self.rows(),
                columns: self.columns(),
            });
        }
        if self.has_prior && column == 0 {
            return Ok(ColumnRole::Prior);
        }
        let offset = column - usize::from(self.has_prior);
        Ok(ColumnRole::Likelihood {
            node: offset / self.evidence_levels,
            level: offset % self.evidence_levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dimensions_rejected() {
        assert!(CrossbarLayout::new(0, 4, 16, true).is_err());
        assert!(CrossbarLayout::new(3, 0, 16, true).is_err());
        assert!(CrossbarLayout::new(3, 4, 0, true).is_err());
    }

    #[test]
    fn iris_layout_matches_paper() {
        // Fig. 8(b): 3 wordlines, 4 features at Q_f = 4 bit (16 levels) and
        // no prior column because the iris prior is uniform => 64 bitlines.
        let layout = CrossbarLayout::new(3, 4, 16, false).unwrap();
        assert_eq!(layout.rows(), 3);
        assert_eq!(layout.columns(), 64);
        assert_eq!(layout.cells(), 192);
        assert_eq!(layout.activated_columns(), 4);
        assert_eq!(layout.prior_column(), None);
    }

    #[test]
    fn prior_column_shifts_likelihood_blocks() {
        let layout = CrossbarLayout::new(2, 2, 4, true).unwrap();
        assert_eq!(layout.columns(), 9);
        assert_eq!(layout.activated_columns(), 3);
        assert_eq!(layout.prior_column(), Some(0));
        assert_eq!(layout.likelihood_column(0, 0).unwrap(), 1);
        assert_eq!(layout.likelihood_column(0, 3).unwrap(), 4);
        assert_eq!(layout.likelihood_column(1, 0).unwrap(), 5);
        assert_eq!(layout.likelihood_column(1, 3).unwrap(), 8);
    }

    #[test]
    fn likelihood_column_without_prior() {
        let layout = CrossbarLayout::new(2, 3, 4, false).unwrap();
        assert_eq!(layout.likelihood_column(0, 0).unwrap(), 0);
        assert_eq!(layout.likelihood_column(2, 3).unwrap(), 11);
    }

    #[test]
    fn out_of_range_evidence_rejected() {
        let layout = CrossbarLayout::new(2, 2, 4, true).unwrap();
        assert!(layout.likelihood_column(2, 0).is_err());
        assert!(layout.likelihood_column(0, 4).is_err());
    }

    #[test]
    fn column_role_round_trips() {
        let layout = CrossbarLayout::new(2, 3, 5, true).unwrap();
        assert_eq!(layout.column_role(0).unwrap(), ColumnRole::Prior);
        for node in 0..3 {
            for level in 0..5 {
                let column = layout.likelihood_column(node, level).unwrap();
                assert_eq!(
                    layout.column_role(column).unwrap(),
                    ColumnRole::Likelihood { node, level }
                );
            }
        }
        assert!(layout.column_role(layout.columns()).is_err());
    }
}
