//! Write scheme with half-bias disturb modelling.
//!
//! Programming a FeBiM cell grounds the target wordline/sourceline and
//! applies the 4 V pulse train to the target bitline. Unselected rows see a
//! `V_w/2` bias (the half-bias inhibit scheme of Ni et al., EDL 2018), which
//! still causes a tiny amount of unwanted partial polarization switching.
//! This module models that disturbance so robustness studies can quantify it.

use serde::{Deserialize, Serialize};

use febim_device::{Polarization, PreisachModel, Pulse};

use crate::cell::Cell;

/// Configuration of the half-bias write scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteScheme {
    /// Full write amplitude `V_w` in volts.
    pub write_voltage: f64,
    /// Write pulse width in seconds.
    pub pulse_width: f64,
    /// Whether unselected cells accumulate half-bias disturbance.
    pub model_disturb: bool,
}

impl WriteScheme {
    /// The paper's write scheme: 4 V / 300 ns pulses with `V_w/2` inhibit.
    pub fn febim_default() -> Self {
        Self {
            write_voltage: 4.0,
            pulse_width: 300e-9,
            model_disturb: true,
        }
    }

    /// The half-bias voltage applied to unselected rows.
    pub fn half_bias(&self) -> f64 {
        self.write_voltage / 2.0
    }

    /// The disturb pulse experienced by unselected cells in the programmed
    /// column.
    pub fn disturb_pulse(&self) -> Pulse {
        Pulse::new(self.half_bias(), self.pulse_width)
    }

    /// Applies `pulses` half-bias disturb pulses to a cell (bookkeeping plus
    /// the corresponding tiny polarization drift).
    pub fn apply_disturb(&self, cell: &mut Cell, pulses: u64) {
        if !self.model_disturb || pulses == 0 {
            return;
        }
        cell.add_disturb_pulses(pulses);
        let pulse = self.disturb_pulse();
        let mut polarization: Polarization = cell.device().polarization();
        // The per-pulse disturbance is tiny; apply the closed-form compound
        // update instead of iterating potentially millions of pulses.
        let alpha = PreisachModel::switching_fraction_with(cell.device().params(), pulse);
        if alpha > 0.0 {
            let remaining = (1.0 - polarization.value()) * (1.0 - alpha).powf(pulses as f64);
            polarization = Polarization::new(1.0 - remaining);
            cell.device_mut().set_polarization(polarization);
        }
    }
}

impl Default for WriteScheme {
    fn default() -> Self {
        Self::febim_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_device::FeFetParams;

    #[test]
    fn half_bias_is_half_the_write_voltage() {
        let scheme = WriteScheme::febim_default();
        assert!((scheme.half_bias() - 2.0).abs() < 1e-12);
        assert!((scheme.disturb_pulse().amplitude - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disturb_is_much_weaker_than_programming() {
        let scheme = WriteScheme::febim_default();
        let model = PreisachModel::new(FeFetParams::febim_calibrated());
        let program_alpha =
            model.switching_fraction(Pulse::new(scheme.write_voltage, scheme.pulse_width));
        let disturb_alpha = model.switching_fraction(scheme.disturb_pulse());
        assert!(disturb_alpha < program_alpha / 100.0);
    }

    #[test]
    fn disturb_accumulates_polarization_slowly() {
        let scheme = WriteScheme::febim_default();
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        cell.device_mut().set_polarization(Polarization::new(0.5));
        let before = cell.device().polarization().value();
        scheme.apply_disturb(&mut cell, 100);
        let after = cell.device().polarization().value();
        assert!(after >= before);
        assert!(after - before < 0.05, "disturb drift {}", after - before);
        assert_eq!(cell.disturb_pulses(), 100);
    }

    #[test]
    fn disturb_can_be_disabled() {
        let mut scheme = WriteScheme::febim_default();
        scheme.model_disturb = false;
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        cell.device_mut().set_polarization(Polarization::new(0.5));
        scheme.apply_disturb(&mut cell, 1_000_000);
        assert_eq!(cell.disturb_pulses(), 0);
        assert!((cell.device().polarization().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_pulses_is_a_no_op() {
        let scheme = WriteScheme::febim_default();
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        scheme.apply_disturb(&mut cell, 0);
        assert_eq!(cell.disturb_pulses(), 0);
    }

    #[test]
    fn heavy_disturb_eventually_matters() {
        // Sanity check that the model is not a no-op: an absurd number of
        // disturb pulses visibly moves the state.
        let scheme = WriteScheme::febim_default();
        let mut cell = Cell::new(FeFetParams::febim_calibrated());
        cell.device_mut().set_polarization(Polarization::new(0.2));
        scheme.apply_disturb(&mut cell, 10_000_000);
        assert!(cell.device().polarization().value() > 0.25);
    }
}
