//! Tiled multi-array crossbar fabric.
//!
//! A physical FeFET macro has a fixed tile size; a Bayesian model whose
//! logical layout exceeds it must be sharded across a grid of tiles —
//! row-wise over events (classes) and column-wise over evidence columns,
//! the composition used by reconfigurable ferroelectric CIM fabrics. This
//! module provides:
//!
//! * [`TileShape`] — the fixed physical tile geometry,
//! * [`TilePlan`] — the mapping of a [`CrossbarLayout`] onto a tile grid,
//! * [`TileGrid`] — the programmed fabric itself: one cell bank and one
//!   conductance cache per tile, plus a fabric-level partial-sum path that
//!   merges per-tile wordline currents.
//!
//! ## Bit-exactness
//!
//! The fabric read path is floating-point identical to a monolithic
//! [`CrossbarArray`](crate::CrossbarArray) holding the same program **and
//! the same non-ideality stack**: cells are programmed identically (so
//! per-cell on/off currents match), non-idealities are evaluated in global
//! coordinates (the fabric models the stitched logical array, so a cell's
//! IR-drop position, retention age and wordline read count are the same
//! whether the array is monolithic or sharded), the fabric-level row
//! off-sums are accumulated cell by cell in global column order (the exact
//! order the monolithic conductance cache uses), and the activated-column
//! deltas are gathered from a fabric-level delta matrix (assembled in
//! global column order from the per-tile caches) through the exact same
//! committed 4-lane reduction as the monolithic kernel (see
//! [`crate::cache`]'s module docs). Equivalence is proptest-enforced in
//! this crate and at engine level.
//!
//! ## Tile-granular cache epochs
//!
//! The fabric versions its derived state like the monolithic array does,
//! but dirtiness is tracked **per tile**: mutating one cell (or crossing a
//! read-disturb tier on one wordline) only marks the owning tiles stale, so
//! bringing the fabric cache current rebuilds those tiles and re-stitches
//! their global rows — one drifted tile does not invalidate the whole grid.
//!
//! The one intentional divergence is [`ProgrammingMode::PulseTrain`]
//! disturb: half-bias inhibit pulses only reach the rows of the tile being
//! written — tiles are physically separate arrays — whereas a monolithic
//! array disturbs every other row of the column.

use std::cell::RefCell;
use std::ops::Range;

use rand::Rng;
use serde::{Deserialize, Serialize};

use febim_device::{
    CellContext, DeviceError, LevelProgrammer, NonIdealityStack, ProgrammedState, VariationModel,
};

use crate::array::{ProgrammingMode, RefreshOutcome};
use crate::cache::{lane_delta_sum, row_plane_partials, ConductanceCache};
use crate::cell::Cell;
use crate::errors::{CrossbarError, Result};
use crate::fault::{FaultKind, FaultReport, ScrubOutcome};
use crate::layout::CrossbarLayout;
use crate::read::{Activation, LevelLadder, ReadCounters};
use crate::write::WriteScheme;

/// Fixed geometry of one physical crossbar tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileShape {
    /// Wordlines per tile.
    pub rows: usize,
    /// Bitlines per tile.
    pub columns: usize,
    /// Redundant spare wordlines fabricated below the logical rows of every
    /// tile. Spares carry no part of the program until a scrub pass remaps a
    /// logical row holding an unrepairable cell onto one (see
    /// [`TileGrid::scrub`]); they do not count towards [`TileShape::cells`]
    /// or the plan's utilization.
    #[serde(default)]
    pub spare_rows: usize,
}

impl TileShape {
    /// Creates a tile shape with no spare rows.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidLayout`] when either dimension is
    /// zero.
    pub fn new(rows: usize, columns: usize) -> Result<Self> {
        if rows == 0 || columns == 0 {
            return Err(CrossbarError::InvalidLayout {
                reason: format!("tile shape {rows}x{columns} has a zero dimension"),
            });
        }
        Ok(Self {
            rows,
            columns,
            spare_rows: 0,
        })
    }

    /// The same geometry with `spare_rows` redundant wordlines per tile.
    pub fn with_spare_rows(mut self, spare_rows: usize) -> Self {
        self.spare_rows = spare_rows;
        self
    }

    /// The 64×64 macro used for the fabric-scale studies (a 64-wordline
    /// tile matching the Fig. 6 scalability sweep's tallest array).
    pub fn febim_macro() -> Self {
        Self {
            rows: 64,
            columns: 64,
            spare_rows: 0,
        }
    }

    /// Logical (program-visible) cells per tile; spare rows excluded.
    pub fn cells(&self) -> usize {
        self.rows * self.columns
    }
}

/// The mapping of one logical crossbar layout onto a grid of fixed-size
/// tiles: `row_tiles × col_tiles` tiles, edge tiles partially filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilePlan {
    layout: CrossbarLayout,
    shape: TileShape,
    row_tiles: usize,
    col_tiles: usize,
}

impl TilePlan {
    /// Plans the tiling of `layout` onto tiles of `shape`.
    ///
    /// # Errors
    ///
    /// Propagates zero-dimension tile shapes.
    pub fn new(layout: CrossbarLayout, shape: TileShape) -> Result<Self> {
        let (row_tiles, col_tiles) = layout.tiles_needed(shape.rows, shape.columns)?;
        Ok(Self {
            layout,
            shape,
            row_tiles,
            col_tiles,
        })
    }

    /// The logical layout being sharded.
    pub fn layout(&self) -> &CrossbarLayout {
        &self.layout
    }

    /// The physical tile geometry.
    pub fn shape(&self) -> TileShape {
        self.shape
    }

    /// Number of tile rows (event shards).
    pub fn row_tiles(&self) -> usize {
        self.row_tiles
    }

    /// Number of tile columns (evidence shards).
    pub fn col_tiles(&self) -> usize {
        self.col_tiles
    }

    /// Total number of tiles in the grid.
    pub fn tile_count(&self) -> usize {
        self.row_tiles * self.col_tiles
    }

    /// Whether the model actually spans more than one tile.
    pub fn is_multi_tile(&self) -> bool {
        self.tile_count() > 1
    }

    /// Fraction of the provisioned fabric cells the layout actually uses.
    pub fn utilization(&self) -> f64 {
        self.layout.cells() as f64 / (self.tile_count() * self.shape.cells()) as f64
    }

    fn check_tile(&self, tile_row: usize, tile_col: usize) -> Result<()> {
        if tile_row >= self.row_tiles || tile_col >= self.col_tiles {
            return Err(CrossbarError::IndexOutOfBounds {
                row: tile_row,
                column: tile_col,
                rows: self.row_tiles,
                columns: self.col_tiles,
            });
        }
        Ok(())
    }

    /// Global row range covered by one tile row (edge tiles are shorter).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] outside the grid.
    pub fn tile_row_range(&self, tile_row: usize) -> Result<Range<usize>> {
        self.check_tile(tile_row, 0)?;
        let start = tile_row * self.shape.rows;
        Ok(start..self.layout.rows().min(start + self.shape.rows))
    }

    /// Global column range covered by one tile column (edge tiles are
    /// narrower).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] outside the grid.
    pub fn tile_column_range(&self, tile_col: usize) -> Result<Range<usize>> {
        self.check_tile(0, tile_col)?;
        let start = tile_col * self.shape.columns;
        Ok(start..self.layout.columns().min(start + self.shape.columns))
    }

    /// The `(tile_row, tile_col)` owning a global cell coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] outside the layout.
    pub fn tile_of(&self, row: usize, column: usize) -> Result<(usize, usize)> {
        if row >= self.layout.rows() || column >= self.layout.columns() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        Ok((row / self.shape.rows, column / self.shape.columns))
    }

    /// Occupied dimensions of one tile (`rows × columns` of mapped cells).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] outside the grid.
    pub fn tile_dims(&self, tile_row: usize, tile_col: usize) -> Result<(usize, usize)> {
        Ok((
            self.tile_row_range(tile_row)?.len(),
            self.tile_column_range(tile_col)?.len(),
        ))
    }
}

/// Cache maintenance counters of a tiled fabric (the tile-granular analogue
/// of [`crate::RebuildStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct GridRebuildStats {
    /// Times the whole fabric cache was rebuilt from scratch.
    pub full_rebuilds: u64,
    /// Individual tiles rebuilt by partial refreshes.
    pub tile_rebuilds: u64,
    /// Total cells whose on/off currents were re-evaluated.
    pub cells_recomputed: u64,
}

/// Cost of one region-scoped fabric write ([`TileGrid::program_region`] /
/// [`TileGrid::erase_region`]): the pulse trains applied and their energy,
/// priced through the Preisach programming model like every other write.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct RegionWriteOutcome {
    /// Cells driven to a target level.
    pub cells_programmed: u64,
    /// Cells erased (programmed level forgotten, polarization reset).
    pub cells_erased: u64,
    /// Total program/erase pulses applied.
    pub pulses_applied: u64,
    /// Energy of those pulses, in joules.
    pub energy_joules: f64,
}

impl RegionWriteOutcome {
    /// Accumulates another outcome into this one.
    pub fn absorb(&mut self, other: &RegionWriteOutcome) {
        self.cells_programmed += other.cells_programmed;
        self.cells_erased += other.cells_erased;
        self.pulses_applied += other.pulses_applied;
        self.energy_joules += other.energy_joules;
    }
}

/// One physical tile: its occupied cell bank in local row-major order, the
/// provisioned spare rows appended below the logical rows, and the
/// logical-to-physical wordline remap table the self-repair path rewires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Tile {
    rows: usize,
    columns: usize,
    /// Spare physical wordlines appended after the `rows` logical ones.
    spare_rows: usize,
    /// `remap[logical local row] = physical backing row` — identity until a
    /// scrub pass routes a defective wordline onto a spare.
    remap: Vec<usize>,
    /// Spare rows consumed by repairs so far.
    spares_used: usize,
    /// `(rows + spare_rows) × columns` cells, physical row-major.
    cells: Vec<Cell>,
}

impl Tile {
    /// Physical cell index of a **logical** local coordinate, routed through
    /// the remap table. Every programming, variation, refresh and read path
    /// addresses cells through this one function, so a repaired wordline is
    /// transparently served by its spare.
    fn index(&self, local_row: usize, local_col: usize) -> usize {
        self.remap[local_row] * self.columns + local_col
    }

    /// Whether an unused spare wordline remains.
    fn has_free_spare(&self) -> bool {
        self.spares_used < self.spare_rows
    }
}

/// Which tiles changed since the fabric cache last matched the state epoch.
#[derive(Debug, Clone, PartialEq)]
enum GridDirty {
    /// Nothing: the cache (if built) is current.
    Clean,
    /// Only the listed tile indices hold stale conductances.
    Tiles(Vec<usize>),
    /// Every tile is stale.
    All,
}

impl Default for GridDirty {
    /// A deserialized grid arrives without its fabric cache (the cache
    /// fields are `#[serde(skip)]`), so the bookkeeping starts fully stale.
    fn default() -> Self {
        GridDirty::All
    }
}

impl GridDirty {
    /// Marks one tile stale, degrading to `All` when at least half the grid
    /// is already dirty (re-stitching then costs as much as a full build).
    ///
    /// Only **distinct** tiles count towards the degradation threshold:
    /// re-marking an already-dirty tile (per-cell programming loops hit the
    /// same tile hundreds of times) must not force a full fabric rebuild
    /// while the rest of the grid is clean.
    fn mark_tile(&mut self, index: usize, tile_count: usize) {
        let overflow = match self {
            GridDirty::All => false,
            GridDirty::Clean => {
                *self = GridDirty::Tiles(vec![index]);
                tile_count <= 1
            }
            GridDirty::Tiles(tiles) => {
                if !tiles.contains(&index) {
                    tiles.push(index);
                }
                tiles.len() * 2 >= tile_count
            }
        };
        if overflow {
            *self = GridDirty::All;
        }
    }
}

/// Derived read state of the fabric: one conductance cache per tile, the
/// fabric-level row off-sums (accumulated in global column order so merged
/// reads are bit-identical to a monolithic array's), and a fabric-level
/// on/off delta matrix in global row-major order — the contiguous gather
/// target that lets a merged read run the exact same 4-lane kernel as a
/// monolithic array, with no per-column tile translation on the hot path.
#[derive(Debug, Clone)]
struct FabricCache {
    tiles: Vec<ConductanceCache>,
    row_off_sums: Vec<f64>,
    /// `delta[row * layout.columns() + column]`, bit-identical per cell to
    /// the monolithic cache's deltas (same device-model evaluations).
    delta: Vec<f64>,
    columns: usize,
}

impl FabricCache {
    /// The global-order delta slice of one fabric row.
    fn row_deltas(&self, row: usize) -> &[f64] {
        let base = row * self.columns;
        &self.delta[base..base + self.columns]
    }
}

/// A programmed tiled crossbar fabric.
///
/// Rows are sharded across tile rows (each tile row senses a subset of the
/// events), columns across tile columns (each tile accumulates a partial
/// sum over its evidence columns). The fabric read path merges the per-tile
/// partial wordline currents into full log-posterior currents; see the
/// module docs for the bit-exactness guarantee and the tile-granular cache
/// epoch scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TileGrid {
    plan: TilePlan,
    programmer: LevelProgrammer,
    write_scheme: WriteScheme,
    /// Tiles in grid row-major order (`tile_row * col_tiles + tile_col`).
    tiles: Vec<Tile>,
    write_energy: f64,
    /// Composable time-varying non-ideality models, evaluated in global
    /// coordinates (the fabric models the stitched logical array).
    stack: NonIdealityStack,
    /// Fabric clock in retention ticks.
    clock: u64,
    /// Per-global-wordline read counters. Skipped by serialization.
    #[serde(skip)]
    row_reads: ReadCounters,
    /// Monotonic version of the fabric's physical state.
    #[serde(skip)]
    state_epoch: std::cell::Cell<u64>,
    /// The state epoch the cache was last brought up to date with.
    #[serde(skip)]
    cache_epoch: std::cell::Cell<u64>,
    /// Which tiles changed between `cache_epoch` and `state_epoch`.
    #[serde(skip)]
    dirty: RefCell<GridDirty>,
    /// Cache maintenance counters.
    #[serde(skip)]
    stats: std::cell::Cell<GridRebuildStats>,
    /// Derived state: `None` means never built. Skipped by serialization and
    /// ignored by equality.
    #[serde(skip)]
    cache: RefCell<Option<FabricCache>>,
}

impl PartialEq for TileGrid {
    fn eq(&self, other: &Self) -> bool {
        self.plan == other.plan
            && self.programmer == other.programmer
            && self.write_scheme == other.write_scheme
            && self.tiles == other.tiles
            && self.write_energy == other.write_energy
            && self.stack == other.stack
            && self.clock == other.clock
            && self.row_reads == other.row_reads
    }
}

impl TileGrid {
    /// Creates an erased, ideal (no non-idealities) fabric for the given
    /// plan and level programmer.
    pub fn new(plan: TilePlan, programmer: LevelProgrammer) -> Self {
        let template = Cell::new(programmer.params().clone());
        let tiles = (0..plan.row_tiles())
            .flat_map(|tile_row| (0..plan.col_tiles()).map(move |tile_col| (tile_row, tile_col)))
            .map(|(tile_row, tile_col)| {
                let (rows, columns) = plan.tile_dims(tile_row, tile_col).expect("in-grid tile");
                let spare_rows = plan.shape().spare_rows;
                Tile {
                    rows,
                    columns,
                    spare_rows,
                    remap: (0..rows).collect(),
                    spares_used: 0,
                    cells: vec![template.clone(); (rows + spare_rows) * columns],
                }
            })
            .collect();
        Self {
            plan,
            programmer,
            write_scheme: WriteScheme::febim_default(),
            tiles,
            write_energy: 0.0,
            stack: NonIdealityStack::ideal(),
            clock: 0,
            row_reads: ReadCounters::new(plan.layout().rows()),
            state_epoch: std::cell::Cell::new(0),
            cache_epoch: std::cell::Cell::new(0),
            dirty: RefCell::new(GridDirty::All),
            stats: std::cell::Cell::new(GridRebuildStats::default()),
            cache: RefCell::new(None),
        }
    }

    /// Creates an erased fabric with a configured non-ideality stack.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] when the stack parameters are
    /// unphysical (see [`NonIdealityStack::validate`]).
    pub fn with_non_idealities(
        plan: TilePlan,
        programmer: LevelProgrammer,
        stack: NonIdealityStack,
    ) -> Result<Self> {
        stack.validate()?;
        let mut grid = Self::new(plan, programmer);
        grid.stack = stack;
        Ok(grid)
    }

    /// Borrow the tile plan.
    pub fn plan(&self) -> &TilePlan {
        &self.plan
    }

    /// Borrow the logical layout.
    pub fn layout(&self) -> &CrossbarLayout {
        self.plan.layout()
    }

    /// Borrow the level programmer.
    pub fn programmer(&self) -> &LevelProgrammer {
        &self.programmer
    }

    /// Replaces the write scheme (half-bias configuration) of every tile.
    pub fn set_write_scheme(&mut self, scheme: WriteScheme) {
        self.write_scheme = scheme;
    }

    /// Total write energy spent programming the fabric so far, in joules.
    pub fn write_energy(&self) -> f64 {
        self.write_energy
    }

    /// The configured non-ideality stack.
    pub fn non_idealities(&self) -> &NonIdealityStack {
        &self.stack
    }

    /// Replaces the non-ideality stack; every cached conductance is stale
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] when the stack parameters are
    /// unphysical.
    pub fn set_non_idealities(&mut self, stack: NonIdealityStack) -> Result<()> {
        stack.validate()?;
        self.stack = stack;
        self.mark_all();
        Ok(())
    }

    /// Current fabric clock, in retention ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the fabric clock by `ticks` (ages every cell when a
    /// retention-drift model is configured).
    pub fn advance_time(&mut self, ticks: u64) {
        if ticks == 0 {
            return;
        }
        self.clock = self.clock.saturating_add(ticks);
        if self.stack.is_time_varying() {
            self.mark_all();
        }
    }

    /// Monotonic version of the fabric's physical state.
    pub fn state_epoch(&self) -> u64 {
        self.state_epoch.get()
    }

    /// Cache maintenance counters accumulated since construction.
    pub fn rebuild_stats(&self) -> GridRebuildStats {
        self.stats.get()
    }

    /// Reads accumulated by one global wordline since its last refresh.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for a bad row.
    pub fn row_reads(&self, row: usize) -> Result<u64> {
        if row >= self.plan.layout().rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column: 0,
                rows: self.plan.layout().rows(),
                columns: self.plan.layout().columns(),
            });
        }
        Ok(self.row_reads.get(row))
    }

    fn bump_epoch(&self) {
        self.state_epoch.set(self.state_epoch.get() + 1);
    }

    fn mark_all(&mut self) {
        *self.dirty.get_mut() = GridDirty::All;
        self.bump_epoch();
    }

    fn mark_tile(&mut self, tile_index: usize) {
        self.dirty
            .get_mut()
            .mark_tile(tile_index, self.plan.tile_count());
        self.bump_epoch();
    }

    /// Registers one read of a global wordline; a disturb-tier crossing
    /// makes every tile of the row's tile row stale.
    fn note_row_read(&self, row: usize) {
        if !self.stack.tracks_reads() {
            return;
        }
        let (before, after) = self.row_reads.bump(row);
        if self.stack.read_tier(before) != self.stack.read_tier(after) {
            let tile_row = row / self.plan.shape().rows;
            let mut dirty = self.dirty.borrow_mut();
            for tile_col in 0..self.plan.col_tiles() {
                dirty.mark_tile(
                    tile_row * self.plan.col_tiles() + tile_col,
                    self.plan.tile_count(),
                );
            }
            drop(dirty);
            self.bump_epoch();
        }
    }

    /// The non-ideality evaluation context of one cell, in **global**
    /// coordinates — a sharded fabric reads exactly like the monolithic
    /// logical array it implements.
    fn cell_context(&self, row: usize, column: usize, cell: &Cell) -> CellContext {
        CellContext {
            row,
            column,
            rows: self.plan.layout().rows(),
            columns: self.plan.layout().columns(),
            age_ticks: self.clock.saturating_sub(cell.programmed_at()),
            disturb_pulses: cell.disturb_pulses(),
            row_reads: self.row_reads.get(row),
        }
    }

    /// The single per-cell evaluation point (global coordinates), shared by
    /// tile cache builds, partial tile refreshes and the uncached reference
    /// oracle — bit-identical to
    /// [`CrossbarArray`](crate::CrossbarArray)'s under the same stack.
    fn evaluate_cell(&self, row: usize, column: usize) -> (f64, f64) {
        let cell = self.cell(row, column).expect("in-range indices");
        if self.stack.is_ideal() {
            return (cell.read_current_on(), cell.read_current_off());
        }
        let ctx = self.cell_context(row, column, cell);
        let shift = self.stack.vth_shift(&ctx);
        let v_drain = self.programmer.params().v_drain_read;
        let on = cell.device().read_current_on_shifted(shift);
        let off = cell.device().read_current_off_shifted(shift);
        (
            on * self.stack.current_factor(&ctx, on, v_drain),
            off * self.stack.current_factor(&ctx, off, v_drain),
        )
    }

    /// Builds one tile's conductance cache by evaluating the shared
    /// per-cell evaluation point at the tile's global coordinates.
    fn build_tile_cache(&self, tile_index: usize) -> ConductanceCache {
        let col_tiles = self.plan.col_tiles();
        let shape = self.plan.shape();
        let row_base = (tile_index / col_tiles) * shape.rows;
        let col_base = (tile_index % col_tiles) * shape.columns;
        let tile = &self.tiles[tile_index];
        ConductanceCache::build_with(tile.rows, tile.columns, |local_row, local_col| {
            self.evaluate_cell(row_base + local_row, col_base + local_col)
        })
    }

    /// Re-stitches the fabric-level off-sum and delta row of one global row
    /// from the per-tile caches, in global column order — the exact
    /// accumulation a full stitch uses, so a partial re-stitch is
    /// bit-identical.
    fn restitch_row(&self, cache: &mut FabricCache, row: usize) {
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        let tile_row = row / shape.rows;
        let local_row = row % shape.rows;
        let mut accumulator = 0.0;
        let mut base = row * cache.columns;
        for tile_col in 0..col_tiles {
            let tile = &cache.tiles[tile_row * col_tiles + tile_col];
            tile.accumulate_row_off(local_row, &mut accumulator);
            let deltas = tile.row_deltas(local_row);
            cache.delta[base..base + deltas.len()].copy_from_slice(deltas);
            base += deltas.len();
        }
        cache.row_off_sums[row] = accumulator;
    }

    /// Brings the fabric cache up to the current state epoch: dirty tiles
    /// are rebuilt and their global rows re-stitched; a full rebuild runs
    /// when everything is stale (or nothing is cached yet).
    fn ensure_cache(&self) {
        if self.cache_epoch.get() == self.state_epoch.get() && self.cache.borrow().is_some() {
            return;
        }
        let mut slot = self.cache.borrow_mut();
        let mut dirty = self.dirty.borrow_mut();
        let mut stats = self.stats.get();
        let patched = match (slot.as_mut(), &mut *dirty) {
            (Some(cache), GridDirty::Tiles(tiles)) => {
                tiles.sort_unstable();
                tiles.dedup();
                let mut tile_rows: Vec<usize> = Vec::with_capacity(tiles.len());
                for &tile_index in tiles.iter() {
                    cache.tiles[tile_index] = self.build_tile_cache(tile_index);
                    stats.tile_rebuilds += 1;
                    let tile = &self.tiles[tile_index];
                    stats.cells_recomputed += (tile.rows * tile.columns) as u64;
                    tile_rows.push(tile_index / self.plan.col_tiles());
                }
                tile_rows.sort_unstable();
                tile_rows.dedup();
                for &tile_row in &tile_rows {
                    for row in self.plan.tile_row_range(tile_row).expect("in-grid tile") {
                        self.restitch_row(cache, row);
                    }
                }
                true
            }
            _ => false,
        };
        if !patched {
            let tile_caches: Vec<ConductanceCache> = (0..self.tiles.len())
                .map(|tile_index| self.build_tile_cache(tile_index))
                .collect();
            // Fabric row off-sums accumulate across tile columns cell by
            // cell, in global column order — the same floating-point
            // accumulation order as a monolithic array's conductance cache.
            // The fabric delta matrix is stitched together in the same
            // global order, so per-cell deltas are the very values a
            // monolithic cache would hold.
            let layout = *self.plan.layout();
            let mut row_off_sums = Vec::with_capacity(layout.rows());
            let mut delta = Vec::with_capacity(layout.cells());
            for row in 0..layout.rows() {
                let tile_row = row / self.plan.shape().rows;
                let local_row = row % self.plan.shape().rows;
                let mut accumulator = 0.0;
                for tile_col in 0..self.plan.col_tiles() {
                    let tile = &tile_caches[tile_row * self.plan.col_tiles() + tile_col];
                    tile.accumulate_row_off(local_row, &mut accumulator);
                    delta.extend_from_slice(tile.row_deltas(local_row));
                }
                row_off_sums.push(accumulator);
            }
            *slot = Some(FabricCache {
                tiles: tile_caches,
                row_off_sums,
                delta,
                columns: layout.columns(),
            });
            stats.full_rebuilds += 1;
            stats.cells_recomputed += layout.cells() as u64;
        }
        self.stats.set(stats);
        *dirty = GridDirty::Clean;
        self.cache_epoch.set(self.state_epoch.get());
    }

    /// Runs `reader` against an up-to-date fabric cache.
    fn with_cache<T>(&self, reader: impl FnOnce(&FabricCache) -> T) -> T {
        self.ensure_cache();
        let slot = self.cache.borrow();
        reader(slot.as_ref().expect("cache ensured"))
    }

    fn tile_index_of(&self, row: usize, column: usize) -> Result<usize> {
        let (tile_row, tile_col) = self.plan.tile_of(row, column)?;
        Ok(tile_row * self.plan.col_tiles() + tile_col)
    }

    /// Borrow a cell by its global coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] outside the layout.
    pub fn cell(&self, row: usize, column: usize) -> Result<&Cell> {
        let tile_index = self.tile_index_of(row, column)?;
        let tile = &self.tiles[tile_index];
        let local = tile.index(
            row % self.plan.shape().rows,
            column % self.plan.shape().columns,
        );
        Ok(&tile.cells[local])
    }

    /// Mutably borrow a cell by its global coordinates; marks the owning
    /// tile stale up front, so the next read rebuilds only that tile.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] outside the layout.
    pub fn cell_mut(&mut self, row: usize, column: usize) -> Result<&mut Cell> {
        let tile_index = self.tile_index_of(row, column)?;
        self.mark_tile(tile_index);
        let shape = self.plan.shape();
        let tile = &mut self.tiles[tile_index];
        let local = tile.index(row % shape.rows, column % shape.columns);
        Ok(&mut tile.cells[local])
    }

    /// Programs one cell (global coordinates) to a multi-level state and
    /// returns the write pulses applied (the Preisach train length, also
    /// counted under [`ProgrammingMode::Ideal`] for cost bookkeeping).
    ///
    /// With [`ProgrammingMode::PulseTrain`] the half-bias disturb pulses
    /// reach the *other rows of the same tile* only — tiles are physically
    /// separate arrays, so inhibit disturbance does not cross tile
    /// boundaries (unlike a monolithic array spanning all events).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for bad coordinates and
    /// propagates device errors for unreachable levels.
    pub fn program_cell(
        &mut self,
        row: usize,
        column: usize,
        level: usize,
        mode: ProgrammingMode,
    ) -> Result<u64> {
        let tile_index = self.tile_index_of(row, column)?;
        self.mark_tile(tile_index);
        let shape = self.plan.shape();
        let clock = self.clock;
        let tile = &mut self.tiles[tile_index];
        let local_row = row % shape.rows;
        let local_col = column % shape.columns;
        let local = tile.index(local_row, local_col);
        let state = match mode {
            ProgrammingMode::Ideal => {
                if tile.cells[local].is_stuck() {
                    // A stuck stack does not respond to the write; the
                    // target state is still resolved for bookkeeping.
                    self.programmer.state_for_level(level)?
                } else {
                    self.programmer
                        .program_ideal(tile.cells[local].device_mut(), level)?
                }
            }
            ProgrammingMode::PulseTrain => {
                let state = if tile.cells[local].is_stuck() {
                    // The train still drives the tile column (neighbours
                    // absorb disturb below) but the stuck cell stays put.
                    self.programmer.state_for_level(level)?
                } else {
                    self.programmer
                        .program_with_pulses(tile.cells[local].device_mut(), level)?
                };
                let scheme = self.write_scheme;
                let pulses = u64::from(state.write_config.pulse_count) + 1;
                for other_row in 0..tile.rows {
                    if other_row == local_row {
                        continue;
                    }
                    let other = tile.index(other_row, local_col);
                    scheme.apply_disturb(&mut tile.cells[other], pulses);
                }
                state
            }
        };
        tile.cells[local].set_programmed_level(level);
        tile.cells[local].reset_disturb();
        tile.cells[local].set_programmed_at(clock);
        self.write_energy += self.programmer.write_energy(state.level)?;
        Ok(u64::from(state.write_config.pulse_count) + 1)
    }

    /// Programs the whole fabric from a global level matrix (same shape
    /// contract as
    /// [`CrossbarArray::program_matrix`](crate::CrossbarArray::program_matrix)).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when the matrix shape
    /// does not match the layout, and propagates programming errors.
    pub fn program_matrix(
        &mut self,
        levels: &[Vec<Option<usize>>],
        mode: ProgrammingMode,
    ) -> Result<()> {
        let layout = *self.plan.layout();
        if levels.len() != layout.rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row: levels.len(),
                column: 0,
                rows: layout.rows(),
                columns: layout.columns(),
            });
        }
        for (row, row_levels) in levels.iter().enumerate() {
            if row_levels.len() != layout.columns() {
                return Err(CrossbarError::IndexOutOfBounds {
                    row,
                    column: row_levels.len(),
                    rows: layout.rows(),
                    columns: layout.columns(),
                });
            }
            for (column, level) in row_levels.iter().enumerate() {
                if let Some(level) = level {
                    self.program_cell(row, column, *level, mode)?;
                }
            }
        }
        Ok(())
    }

    /// Programs a rectangular **region** of the fabric from a level block
    /// whose top-left corner lands on global `(row0, col0)`, pricing the
    /// Preisach pulse trains, and returns the accumulated write cost.
    ///
    /// Only the tiles the region touches are invalidated; caches of every
    /// other tile survive the reprogramming (the hot-swap path relies on
    /// this so co-resident tenants keep their read caches).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when the block (at its
    /// offset) does not fit the layout, and propagates programming errors.
    pub fn program_region(
        &mut self,
        row0: usize,
        col0: usize,
        levels: &[Vec<Option<usize>>],
        mode: ProgrammingMode,
    ) -> Result<RegionWriteOutcome> {
        let layout = *self.plan.layout();
        let energy_before = self.write_energy;
        let mut outcome = RegionWriteOutcome::default();
        for (block_row, row_levels) in levels.iter().enumerate() {
            let row = row0 + block_row;
            for (block_col, level) in row_levels.iter().enumerate() {
                let column = col0 + block_col;
                if row >= layout.rows() || column >= layout.columns() {
                    return Err(CrossbarError::IndexOutOfBounds {
                        row,
                        column,
                        rows: layout.rows(),
                        columns: layout.columns(),
                    });
                }
                if let Some(level) = level {
                    outcome.pulses_applied += self.program_cell(row, column, *level, mode)?;
                    outcome.cells_programmed += 1;
                }
            }
        }
        outcome.energy_joules = self.write_energy - energy_before;
        Ok(outcome)
    }

    /// Erases every cell of a rectangular **region** (global coordinate
    /// ranges): one nominal Preisach erase pulse per non-stuck cell, the
    /// programmed level forgotten either way. Erase pulses are priced like
    /// write pulses and accumulated into [`TileGrid::write_energy`].
    ///
    /// Invalidation is scoped to the touched tiles, exactly like
    /// [`TileGrid::program_region`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for out-of-range bounds.
    pub fn erase_region(
        &mut self,
        rows: Range<usize>,
        columns: Range<usize>,
    ) -> Result<RegionWriteOutcome> {
        let layout = *self.plan.layout();
        if rows.end > layout.rows() || columns.end > layout.columns() {
            return Err(CrossbarError::IndexOutOfBounds {
                row: rows.end.saturating_sub(1),
                column: columns.end.saturating_sub(1),
                rows: layout.rows(),
                columns: layout.columns(),
            });
        }
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        let energy_per_pulse = self.programmer.params().write_energy_per_pulse;
        let clock = self.clock;
        let mut outcome = RegionWriteOutcome::default();
        let mut touched: Vec<usize> = Vec::new();
        for row in rows.clone() {
            for column in columns.clone() {
                let tile_index = (row / shape.rows) * col_tiles + column / shape.columns;
                let tile = &mut self.tiles[tile_index];
                let local = tile.index(row % shape.rows, column % shape.columns);
                let cell = &mut tile.cells[local];
                if cell.programmed_level().is_none() && cell.disturb_pulses() == 0 {
                    continue;
                }
                if !cell.is_stuck() {
                    cell.device_mut().erase();
                }
                cell.clear_programmed_level();
                cell.reset_disturb();
                cell.set_programmed_at(clock);
                outcome.cells_erased += 1;
                outcome.pulses_applied += 1;
                let energy = energy_per_pulse;
                outcome.energy_joules += energy;
                self.write_energy += energy;
                if !touched.contains(&tile_index) {
                    touched.push(tile_index);
                }
            }
        }
        for tile_index in touched {
            self.mark_tile(tile_index);
        }
        Ok(outcome)
    }

    /// Applies threshold-voltage variation to every occupied cell, drawing
    /// offsets in global row-major order — the same RNG consumption order
    /// as a monolithic array, so a shared seed produces identical per-cell
    /// offsets.
    pub fn apply_variation<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        self.mark_all();
        let layout = *self.plan.layout();
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        for row in 0..layout.rows() {
            for column in 0..layout.columns() {
                let offset = variation.sample_offset(rng);
                let tile_index = (row / shape.rows) * col_tiles + column / shape.columns;
                let tile = &mut self.tiles[tile_index];
                let local = tile.index(row % shape.rows, column % shape.columns);
                tile.cells[local].device_mut().set_vth_offset(offset);
            }
        }
    }

    fn check_activation(&self, activation: &Activation) -> Result<()> {
        if activation.total_columns() != self.plan.layout().columns() {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: self.plan.layout().columns(),
                found: activation.total_columns(),
            });
        }
        Ok(())
    }

    /// Merged wordline currents of the whole fabric for a global activation
    /// pattern, written into `out` (cleared first): fabric row off-sums plus
    /// the activated columns' deltas gathered from the fabric delta matrix
    /// through the committed 4-lane reduction. Bit-identical to a monolithic
    /// array holding the same program and stack. Counts as one read of every
    /// global wordline for the disturb model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the
    /// activation was built for a different layout.
    pub fn wordline_currents_into(
        &self,
        activation: &Activation,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_activation(activation)?;
        let rows = self.plan.layout().rows();
        out.clear();
        out.reserve(rows);
        for row in 0..rows {
            self.note_row_read(row);
        }
        self.with_cache(|cache| {
            for row in 0..rows {
                out.push(
                    cache.row_off_sums[row]
                        + lane_delta_sum(cache.row_deltas(row), activation.active_columns()),
                );
            }
        });
        Ok(())
    }

    /// Merged wordline currents of the whole fabric for a group of
    /// activation patterns, written into `out` (cleared first) read after
    /// read: `out[read * rows + row]` is the merged current of global `row`
    /// under `activations[read]`. Without a read-disturb model the fabric
    /// cache is borrowed **once** for the whole group; with one, each read
    /// registers its wordline reads and re-checks the cache first, so a
    /// mid-batch tier crossing is reflected exactly as it would be by
    /// sequential [`TileGrid::wordline_currents_into`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when any
    /// activation was built for a different layout (before any current is
    /// written).
    pub fn wordline_currents_batch_into(
        &self,
        activations: &[Activation],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        for activation in activations {
            self.check_activation(activation)?;
        }
        let rows = self.plan.layout().rows();
        out.clear();
        out.reserve(rows * activations.len());
        if !self.stack.tracks_reads() {
            self.with_cache(|cache| {
                for activation in activations {
                    for row in 0..rows {
                        out.push(
                            cache.row_off_sums[row]
                                + lane_delta_sum(
                                    cache.row_deltas(row),
                                    activation.active_columns(),
                                ),
                        );
                    }
                }
            });
            return Ok(());
        }
        for activation in activations {
            for row in 0..rows {
                self.note_row_read(row);
            }
            self.with_cache(|cache| {
                for row in 0..rows {
                    out.push(
                        cache.row_off_sums[row]
                            + lane_delta_sum(cache.row_deltas(row), activation.active_columns()),
                    );
                }
            });
        }
        Ok(())
    }

    /// Merged wordline currents of the whole fabric (allocating wrapper of
    /// [`TileGrid::wordline_currents_into`]).
    ///
    /// # Errors
    ///
    /// Same as [`TileGrid::wordline_currents_into`].
    pub fn wordline_currents(&self, activation: &Activation) -> Result<Vec<f64>> {
        let mut currents = Vec::with_capacity(self.plan.layout().rows());
        self.wordline_currents_into(activation, &mut currents)?;
        Ok(currents)
    }

    /// Partial wordline currents of one tile for a global activation
    /// pattern, written into `out` (cleared first): the tile's local row
    /// off-sums plus the deltas of the activated columns that fall inside
    /// the tile. Summing a tile row's partials across its tile columns
    /// reconstructs the merged currents up to floating-point reassociation;
    /// the merged path above avoids even that. Does not count as wordline
    /// reads (it is a diagnostic sub-read of the same cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for a tile outside the
    /// grid and [`CrossbarError::ActivationLengthMismatch`] for a foreign
    /// activation.
    pub fn tile_partial_currents_into(
        &self,
        tile_row: usize,
        tile_col: usize,
        activation: &Activation,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_activation(activation)?;
        let columns = self.plan.tile_column_range(tile_col)?;
        let rows = self.plan.tile_row_range(tile_row)?.len();
        let tile_index = tile_row * self.plan.col_tiles() + tile_col;
        out.clear();
        out.reserve(rows);
        self.with_cache(|cache| {
            let tile = &cache.tiles[tile_index];
            for local_row in 0..rows {
                let mut current = tile.row_off_sum(local_row);
                for &column in activation.active_columns() {
                    if columns.contains(&column) {
                        current += tile.delta(local_row, column - columns.start);
                    }
                }
                out.push(current);
            }
        });
        Ok(())
    }

    /// Number of activated columns that fall inside one tile column (the
    /// bitlines that tile column actually drives during a read).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for a tile column outside
    /// the grid.
    pub fn tile_activated_columns(
        &self,
        tile_col: usize,
        activation: &Activation,
    ) -> Result<usize> {
        let columns = self.plan.tile_column_range(tile_col)?;
        Ok(activation
            .active_columns()
            .iter()
            .filter(|&&column| columns.contains(&column))
            .count())
    }

    /// Uncached merged read: evaluates the FeFET I-V model — with the
    /// configured non-ideality stack — of every occupied cell on every
    /// call, accumulating in the exact same order as the cached fabric path
    /// (and as a monolithic array). This is the reference oracle for the
    /// fabric equivalence property tests; it does **not** register wordline
    /// reads.
    ///
    /// # Errors
    ///
    /// Same as [`TileGrid::wordline_currents`].
    pub fn wordline_currents_reference(&self, activation: &Activation) -> Result<Vec<f64>> {
        self.check_activation(activation)?;
        let layout = *self.plan.layout();
        let mut currents = Vec::with_capacity(layout.rows());
        let mut deltas = Vec::with_capacity(layout.columns());
        for row in 0..layout.rows() {
            let mut current = 0.0;
            deltas.clear();
            for column in 0..layout.columns() {
                let (on, off) = self.evaluate_cell(row, column);
                current += off;
                deltas.push(on - off);
            }
            currents.push(current + lane_delta_sum(&deltas, activation.active_columns()));
        }
        Ok(currents)
    }

    /// Validates the per-slot bit offsets of a packed read against the
    /// activation they annotate.
    fn check_bit_offsets(activation: &Activation, bit_offsets: &[u8]) -> Result<()> {
        if bit_offsets.len() != activation.len() {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: activation.len(),
                found: bit_offsets.len(),
            });
        }
        Ok(())
    }

    /// Per-plane partial sums of one packed bit-plane read across the whole
    /// fabric, written into `out` (cleared first) as
    /// `out[row * planes + plane]`. Each activated column's effective
    /// on-current is gathered from its owning tile's conductance cache and
    /// digitized through `ladder`; plane `q` counts the activated columns
    /// whose multi-level state has bit `bit_offsets[slot] + q` set, in the
    /// committed 4-lane summation order. Because the per-cell on-currents
    /// are bit-identical to a monolithic
    /// [`CrossbarArray`](crate::CrossbarArray)'s under the same program and
    /// stack, so are the digitized states and therefore the partials.
    /// Counts as one read of every global wordline for the disturb model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the
    /// activation was built for a different layout or `bit_offsets` does
    /// not annotate every activated column.
    pub fn plane_partial_sums_into(
        &self,
        activation: &Activation,
        bit_offsets: &[u8],
        planes: usize,
        ladder: &LevelLadder,
        level_scratch: &mut Vec<usize>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_activation(activation)?;
        Self::check_bit_offsets(activation, bit_offsets)?;
        let rows = self.plan.layout().rows();
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        out.clear();
        out.reserve(rows * planes);
        for row in 0..rows {
            self.note_row_read(row);
        }
        self.with_cache(|cache| {
            for row in 0..rows {
                let tile_base = (row / shape.rows) * col_tiles;
                let local_row = row % shape.rows;
                row_plane_partials(
                    |column| {
                        cache.tiles[tile_base + column / shape.columns]
                            .on_current(local_row, column % shape.columns)
                    },
                    activation.active_columns(),
                    bit_offsets,
                    planes,
                    ladder,
                    level_scratch,
                    out,
                );
            }
        });
        Ok(())
    }

    /// Uncached packed read over the fabric: evaluates the FeFET I-V model —
    /// with the configured non-ideality stack — for every activated cell on
    /// every call and digitizes through the same ladder and summation order
    /// as [`TileGrid::plane_partial_sums_into`]. The reference oracle for
    /// the fabric packed-read equivalence tests; does **not** register
    /// wordline reads.
    ///
    /// # Errors
    ///
    /// Same as [`TileGrid::plane_partial_sums_into`].
    pub fn plane_partial_sums_reference(
        &self,
        activation: &Activation,
        bit_offsets: &[u8],
        planes: usize,
        ladder: &LevelLadder,
    ) -> Result<Vec<f64>> {
        self.check_activation(activation)?;
        Self::check_bit_offsets(activation, bit_offsets)?;
        let rows = self.plan.layout().rows();
        let mut out = Vec::with_capacity(rows * planes);
        let mut level_scratch = Vec::with_capacity(activation.len());
        for row in 0..rows {
            row_plane_partials(
                |column| self.evaluate_cell(row, column).0,
                activation.active_columns(),
                bit_offsets,
                planes,
                ladder,
                &mut level_scratch,
                &mut out,
            );
        }
        Ok(out)
    }

    /// Packed partial sums for a whole group of reads, written into `out`
    /// (cleared first) read after read:
    /// `out[(read * rows + row) * planes + plane]`. `bit_offsets` holds the
    /// per-read offset slices concatenated in read order. The cache-borrow
    /// and disturb-registration split mirrors
    /// [`TileGrid::wordline_currents_batch_into`], so batched packed reads
    /// stay bit-identical to sequential
    /// [`TileGrid::plane_partial_sums_into`] calls in every configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when any
    /// activation was built for a different layout or `bit_offsets` does
    /// not annotate exactly the activated columns of every read (before any
    /// partial is written).
    pub fn plane_partial_sums_batch_into(
        &self,
        activations: &[Activation],
        bit_offsets: &[u8],
        planes: usize,
        ladder: &LevelLadder,
        level_scratch: &mut Vec<usize>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let mut total = 0usize;
        for activation in activations {
            self.check_activation(activation)?;
            total += activation.len();
        }
        if bit_offsets.len() != total {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: total,
                found: bit_offsets.len(),
            });
        }
        let rows = self.plan.layout().rows();
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        out.clear();
        out.reserve(rows * planes * activations.len());
        if !self.stack.tracks_reads() {
            self.with_cache(|cache| {
                let mut cursor = 0usize;
                for activation in activations {
                    let offsets = &bit_offsets[cursor..cursor + activation.len()];
                    cursor += activation.len();
                    for row in 0..rows {
                        let tile_base = (row / shape.rows) * col_tiles;
                        let local_row = row % shape.rows;
                        row_plane_partials(
                            |column| {
                                cache.tiles[tile_base + column / shape.columns]
                                    .on_current(local_row, column % shape.columns)
                            },
                            activation.active_columns(),
                            offsets,
                            planes,
                            ladder,
                            level_scratch,
                            out,
                        );
                    }
                }
            });
            return Ok(());
        }
        let mut cursor = 0usize;
        for activation in activations {
            let offsets = &bit_offsets[cursor..cursor + activation.len()];
            cursor += activation.len();
            for row in 0..rows {
                self.note_row_read(row);
            }
            self.with_cache(|cache| {
                for row in 0..rows {
                    let tile_base = (row / shape.rows) * col_tiles;
                    let local_row = row % shape.rows;
                    row_plane_partials(
                        |column| {
                            cache.tiles[tile_base + column / shape.columns]
                                .on_current(local_row, column % shape.columns)
                        },
                        activation.active_columns(),
                        offsets,
                        planes,
                        ladder,
                        level_scratch,
                        out,
                    );
                }
            });
        }
        Ok(())
    }

    /// Effective threshold error of one programmed cell (see
    /// [`CrossbarArray::recalibrate`](crate::CrossbarArray::recalibrate)).
    fn effective_shift(
        &self,
        row: usize,
        column: usize,
        target: &ProgrammedState,
        window: f64,
    ) -> f64 {
        let cell = self.cell(row, column).expect("in-range indices");
        let ctx = self.cell_context(row, column, cell);
        let pol_error =
            (target.polarization.value() - cell.device().polarization().value()) * window;
        self.stack.vth_shift(&ctx) + pol_error
    }

    fn level_state<'a>(
        programmer: &LevelProgrammer,
        states: &'a mut Vec<Option<ProgrammedState>>,
        level: usize,
    ) -> Result<&'a ProgrammedState> {
        if level >= states.len() {
            states.resize(level + 1, None);
        }
        if states[level].is_none() {
            states[level] = Some(programmer.state_for_level(level)?);
        }
        Ok(states[level].as_ref().expect("just filled"))
    }

    /// The largest effective threshold error (volts) over all programmed
    /// cells of the fabric. Cells already classified as stuck are excluded
    /// (their error is permanent and belongs to [`TileGrid::scrub`]).
    pub fn worst_effective_shift(&self) -> f64 {
        let layout = *self.plan.layout();
        let window = self.programmer.params().vth_window();
        let mut states: Vec<Option<ProgrammedState>> = Vec::new();
        let mut worst = 0.0f64;
        for row in 0..layout.rows() {
            for column in 0..layout.columns() {
                let cell = self.cell(row, column).expect("in-range indices");
                if cell.is_stuck() {
                    continue;
                }
                let Some(level) = cell.programmed_level() else {
                    continue;
                };
                let target = Self::level_state(&self.programmer, &mut states, level)
                    .expect("programmed level was validated at program time")
                    .clone();
                worst = worst.max(self.effective_shift(row, column, &target, window).abs());
            }
        }
        worst
    }

    /// One recalibration pass over the whole fabric: the tile-granular
    /// analogue of
    /// [`CrossbarArray::recalibrate`](crate::CrossbarArray::recalibrate).
    /// Global wordlines holding an out-of-tolerance programmed cell are
    /// rewritten whole; refreshed rows restart their retention age, disturb
    /// counters and read counters, and only the touched tiles go stale.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] for a non-positive or non-finite
    /// tolerance, and propagates programming errors.
    pub fn recalibrate(
        &mut self,
        max_vth_shift: f64,
        mode: ProgrammingMode,
    ) -> Result<RefreshOutcome> {
        if !max_vth_shift.is_finite() || max_vth_shift <= 0.0 {
            return Err(CrossbarError::Device(DeviceError::InvalidParameter {
                name: "max_vth_shift",
                reason: "recalibration tolerance must be positive and finite".to_string(),
            }));
        }
        let layout = *self.plan.layout();
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        let window = self.programmer.params().vth_window();
        let energy_per_pulse = self.programmer.params().write_energy_per_pulse;
        let mut states: Vec<Option<ProgrammedState>> = Vec::new();
        let mut outcome = RefreshOutcome::default();
        for row in 0..layout.rows() {
            let mut refresh_row = false;
            for column in 0..layout.columns() {
                let cell = self.cell(row, column).expect("in-range indices");
                if cell.is_stuck() {
                    continue;
                }
                let Some(level) = cell.programmed_level() else {
                    continue;
                };
                outcome.cells_checked += 1;
                let target = Self::level_state(&self.programmer, &mut states, level)?.clone();
                if self.effective_shift(row, column, &target, window).abs() > max_vth_shift {
                    refresh_row = true;
                    break;
                }
            }
            if !refresh_row {
                continue;
            }
            outcome.rows_refreshed += 1;
            let clock = self.clock;
            let tile_row = row / shape.rows;
            let local_row = row % shape.rows;
            for column in 0..layout.columns() {
                let tile_index = tile_row * col_tiles + column / shape.columns;
                let local = self.tiles[tile_index].index(local_row, column % shape.columns);
                if self.tiles[tile_index].cells[local].is_stuck() {
                    continue;
                }
                let Some(level) = self.tiles[tile_index].cells[local].programmed_level() else {
                    continue;
                };
                let pulses = match mode {
                    ProgrammingMode::Ideal => {
                        let target =
                            Self::level_state(&self.programmer, &mut states, level)?.clone();
                        self.tiles[tile_index].cells[local]
                            .device_mut()
                            .set_polarization(target.polarization);
                        u64::from(target.write_config.pulse_count) + 1
                    }
                    ProgrammingMode::PulseTrain => u64::from(self.programmer.refresh_with_pulses(
                        self.tiles[tile_index].cells[local].device_mut(),
                        level,
                    )?),
                };
                outcome.cells_refreshed += 1;
                outcome.pulses_applied += pulses;
                let energy = energy_per_pulse * pulses as f64;
                outcome.energy_joules += energy;
                self.write_energy += energy;
                self.tiles[tile_index].cells[local].set_programmed_at(clock);
                self.tiles[tile_index].cells[local].reset_disturb();
            }
            self.row_reads.reset_row(row);
            for tile_col in 0..col_tiles {
                self.dirty
                    .get_mut()
                    .mark_tile(tile_row * col_tiles + tile_col, self.plan.tile_count());
            }
            self.bump_epoch();
        }
        Ok(outcome)
    }

    /// Total spare wordlines provisioned across all tiles.
    pub fn spare_rows_total(&self) -> usize {
        self.tiles.iter().map(|tile| tile.spare_rows).sum()
    }

    /// Spare wordlines consumed by repairs so far.
    pub fn spares_used(&self) -> usize {
        self.tiles.iter().map(|tile| tile.spares_used).sum()
    }

    /// Whether any tile serves `row` from a remapped spare wordline
    /// (`false` for rows outside the layout).
    pub fn is_row_remapped(&self, row: usize) -> bool {
        if row >= self.plan.layout().rows() {
            return false;
        }
        let shape = self.plan.shape();
        let tile_row = row / shape.rows;
        let local_row = row % shape.rows;
        (0..self.plan.col_tiles()).any(|tile_col| {
            let tile = &self.tiles[tile_row * self.plan.col_tiles() + tile_col];
            local_row < tile.rows && tile.remap[local_row] != local_row
        })
    }

    /// One BIST-style scrub pass over the fabric — the tile-granular,
    /// spare-row-repairing analogue of
    /// [`CrossbarArray::scrub`](crate::CrossbarArray::scrub).
    ///
    /// Every programmed cell is read back against the program's expected
    /// signature. A cell out of signature gets one in-place rewrite attempt
    /// and a re-read; a cell that still misses its target is unrepairable in
    /// place, and its wordline *segment* (the logical row within the owning
    /// tile) is repaired by reprogramming the segment's contents onto a free
    /// spare physical row — the minimal Preisach train from the erased spare
    /// under [`ProgrammingMode::PulseTrain`] — and rewiring the tile's remap
    /// table. Reads through the remap stay bit-identical to the pre-fault
    /// reference because non-idealities are evaluated in logical
    /// coordinates. When the tile has no free spare, the defective cells are
    /// latched stuck and reported with `repaired == false`; the caller
    /// decides whether the fabric must be quarantined.
    ///
    /// Like recalibration, repair writes are modelled disturb-free.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] for a non-positive or non-finite
    /// tolerance, and propagates programming errors.
    pub fn scrub(&mut self, max_vth_shift: f64, mode: ProgrammingMode) -> Result<ScrubOutcome> {
        if !max_vth_shift.is_finite() || max_vth_shift <= 0.0 {
            return Err(CrossbarError::Device(DeviceError::InvalidParameter {
                name: "max_vth_shift",
                reason: "scrub tolerance must be positive and finite".to_string(),
            }));
        }
        let layout = *self.plan.layout();
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        let window = self.programmer.params().vth_window();
        let energy_per_pulse = self.programmer.params().write_energy_per_pulse;
        let mut states: Vec<Option<ProgrammedState>> = Vec::new();
        let mut outcome = ScrubOutcome::default();
        for row in 0..layout.rows() {
            let tile_row = row / shape.rows;
            let local_row = row % shape.rows;
            let clock = self.clock;
            let mut row_touched = false;
            // Cells still out of signature after the in-place attempt, in
            // ascending column order (so tile groups are contiguous).
            let mut unrepaired: Vec<(usize, FaultKind)> = Vec::new();
            for column in 0..layout.columns() {
                let Some(level) = self
                    .cell(row, column)
                    .expect("in-range indices")
                    .programmed_level()
                else {
                    continue;
                };
                outcome.cells_checked += 1;
                let target = Self::level_state(&self.programmer, &mut states, level)?.clone();
                if self.effective_shift(row, column, &target, window).abs() <= max_vth_shift {
                    continue;
                }
                // Out of signature: classify the observed state, then try
                // one in-place rewrite (a stuck stack does not respond).
                let observed = self
                    .cell(row, column)
                    .expect("in-range indices")
                    .device()
                    .polarization()
                    .value();
                let kind = if observed >= 0.5 {
                    FaultKind::StuckProgrammed
                } else {
                    FaultKind::StuckErased
                };
                let tile_index = tile_row * col_tiles + column / shape.columns;
                let local = self.tiles[tile_index].index(local_row, column % shape.columns);
                if !self.tiles[tile_index].cells[local].is_stuck() {
                    let pulses = match mode {
                        ProgrammingMode::Ideal => {
                            self.tiles[tile_index].cells[local]
                                .device_mut()
                                .set_polarization(target.polarization);
                            u64::from(target.write_config.pulse_count) + 1
                        }
                        ProgrammingMode::PulseTrain => {
                            u64::from(self.programmer.refresh_with_pulses(
                                self.tiles[tile_index].cells[local].device_mut(),
                                level,
                            )?)
                        }
                    };
                    outcome.pulses_applied += pulses;
                    let energy = energy_per_pulse * pulses as f64;
                    outcome.energy_joules += energy;
                    self.write_energy += energy;
                    self.tiles[tile_index].cells[local].set_programmed_at(clock);
                    self.tiles[tile_index].cells[local].reset_disturb();
                    self.row_reads.reset_row(row);
                    row_touched = true;
                }
                // Re-read after the repair attempt.
                if self.effective_shift(row, column, &target, window).abs() <= max_vth_shift {
                    outcome.cells_repaired += 1;
                    outcome.reports.push(FaultReport {
                        row,
                        column,
                        kind,
                        repaired: true,
                    });
                } else {
                    unrepaired.push((column, kind));
                }
            }
            // Spare-row repair, one tile segment at a time.
            let mut start = 0;
            while start < unrepaired.len() {
                let tile_col = unrepaired[start].0 / shape.columns;
                let mut end = start;
                while end < unrepaired.len() && unrepaired[end].0 / shape.columns == tile_col {
                    end += 1;
                }
                let group = &unrepaired[start..end];
                start = end;
                let tile_index = tile_row * col_tiles + tile_col;
                if !self.tiles[tile_index].has_free_spare() {
                    for &(column, kind) in group {
                        let local = self.tiles[tile_index].index(local_row, column % shape.columns);
                        self.tiles[tile_index].cells[local].set_stuck(true);
                        outcome.stuck_cells += 1;
                        outcome.reports.push(FaultReport {
                            row,
                            column,
                            kind,
                            repaired: false,
                        });
                    }
                    continue;
                }
                // Reprogram the whole logical row segment onto the spare
                // physical row, then rewire the remap table.
                let spare_phys = self.tiles[tile_index].rows + self.tiles[tile_index].spares_used;
                let columns_in_tile = self.tiles[tile_index].columns;
                for local_col in 0..columns_in_tile {
                    let old = self.tiles[tile_index].index(local_row, local_col);
                    let Some(level) = self.tiles[tile_index].cells[old].programmed_level() else {
                        continue;
                    };
                    let spare_index = spare_phys * columns_in_tile + local_col;
                    let state = match mode {
                        ProgrammingMode::Ideal => self.programmer.program_ideal(
                            self.tiles[tile_index].cells[spare_index].device_mut(),
                            level,
                        )?,
                        ProgrammingMode::PulseTrain => self.programmer.program_with_pulses(
                            self.tiles[tile_index].cells[spare_index].device_mut(),
                            level,
                        )?,
                    };
                    let pulses = u64::from(state.write_config.pulse_count) + 1;
                    outcome.pulses_applied += pulses;
                    let energy = energy_per_pulse * pulses as f64;
                    outcome.energy_joules += energy;
                    self.write_energy += energy;
                    let cell = &mut self.tiles[tile_index].cells[spare_index];
                    cell.set_programmed_level(level);
                    cell.reset_disturb();
                    cell.set_programmed_at(clock);
                }
                let tile = &mut self.tiles[tile_index];
                tile.remap[local_row] = spare_phys;
                tile.spares_used += 1;
                outcome.rows_remapped += 1;
                self.row_reads.reset_row(row);
                row_touched = true;
                for &(column, kind) in group {
                    outcome.cells_repaired += 1;
                    outcome.reports.push(FaultReport {
                        row,
                        column,
                        kind,
                        repaired: true,
                    });
                }
            }
            if row_touched {
                for tile_col in 0..col_tiles {
                    self.dirty
                        .get_mut()
                        .mark_tile(tile_row * col_tiles + tile_col, self.plan.tile_count());
                }
                self.bump_epoch();
            }
        }
        Ok(outcome)
    }

    /// The programmed level of every occupied cell as a global matrix.
    pub fn level_map(&self) -> Vec<Vec<Option<usize>>> {
        let layout = *self.plan.layout();
        (0..layout.rows())
            .map(|row| {
                (0..layout.columns())
                    .map(|column| {
                        self.cell(row, column)
                            .expect("in-range indices")
                            .programmed_level()
                    })
                    .collect()
            })
            .collect()
    }

    /// The cached read current of every occupied cell, flattened row-major
    /// into `out` (cleared first) — the allocation-reusing fabric state map.
    pub fn current_map_into(&self, out: &mut Vec<f64>) {
        let layout = *self.plan.layout();
        let shape = self.plan.shape();
        let col_tiles = self.plan.col_tiles();
        out.clear();
        out.reserve(layout.cells());
        self.with_cache(|cache| {
            for row in 0..layout.rows() {
                let tile_row = row / shape.rows;
                let local_row = row % shape.rows;
                for column in 0..layout.columns() {
                    let tile = &cache.tiles[tile_row * col_tiles + column / shape.columns];
                    out.push(tile.on_current(local_row, column % shape.columns));
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::CrossbarArray;
    use febim_device::{ReadDisturb, RetentionDrift, WireResistance};

    fn plan_2x2() -> TilePlan {
        // 3 events × (4 nodes × 4 levels) = 3×16 layout on 2×9 tiles
        // → a 2 (row) × 2 (column) grid with ragged edge tiles.
        let layout = CrossbarLayout::new(3, 4, 4, false).unwrap();
        TilePlan::new(layout, TileShape::new(2, 9).unwrap()).unwrap()
    }

    fn checker_levels(layout: &CrossbarLayout) -> Vec<Vec<Option<usize>>> {
        let mut levels = vec![vec![None; layout.columns()]; layout.rows()];
        for (row, row_levels) in levels.iter_mut().enumerate() {
            for (column, level) in row_levels.iter_mut().enumerate() {
                *level = Some((3 * row + column) % 10);
            }
        }
        levels
    }

    fn grid_and_array() -> (TileGrid, CrossbarArray) {
        let plan = plan_2x2();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut grid = TileGrid::new(plan, programmer.clone());
        let mut array = CrossbarArray::new(*plan.layout(), programmer);
        let levels = checker_levels(plan.layout());
        grid.program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        (grid, array)
    }

    fn noisy_stack() -> NonIdealityStack {
        NonIdealityStack::ideal()
            .with_wire(WireResistance::uniform(40.0))
            .with_drift(RetentionDrift::new(0.004, 100))
            .with_disturb(ReadDisturb::new(7, 0.001))
    }

    fn noisy_grid_and_array() -> (TileGrid, CrossbarArray) {
        let plan = plan_2x2();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut grid =
            TileGrid::with_non_idealities(plan, programmer.clone(), noisy_stack()).unwrap();
        let mut array =
            CrossbarArray::with_non_idealities(*plan.layout(), programmer, noisy_stack()).unwrap();
        let levels = checker_levels(plan.layout());
        grid.program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        (grid, array)
    }

    #[test]
    fn zero_tile_shape_rejected() {
        assert!(TileShape::new(0, 4).is_err());
        assert!(TileShape::new(4, 0).is_err());
        let layout = CrossbarLayout::new(3, 4, 4, false).unwrap();
        assert!(layout.tiles_needed(0, 9).is_err());
    }

    #[test]
    fn plan_covers_the_layout_exactly() {
        let plan = plan_2x2();
        assert_eq!(plan.row_tiles(), 2);
        assert_eq!(plan.col_tiles(), 2);
        assert_eq!(plan.tile_count(), 4);
        assert!(plan.is_multi_tile());
        assert_eq!(plan.tile_row_range(0).unwrap(), 0..2);
        assert_eq!(plan.tile_row_range(1).unwrap(), 2..3);
        assert_eq!(plan.tile_column_range(0).unwrap(), 0..9);
        assert_eq!(plan.tile_column_range(1).unwrap(), 9..16);
        assert_eq!(plan.tile_of(2, 10).unwrap(), (1, 1));
        assert_eq!(plan.tile_dims(1, 1).unwrap(), (1, 7));
        assert!(plan.tile_row_range(2).is_err());
        assert!(plan.tile_of(3, 0).is_err());
        let used = plan.utilization();
        assert!((used - 48.0 / (4.0 * 18.0)).abs() < 1e-12);
    }

    #[test]
    fn single_tile_plan_when_the_model_fits() {
        let layout = CrossbarLayout::new(3, 4, 16, false).unwrap();
        assert!(layout.fits_within(64, 64));
        let macro_tile = TileShape::febim_macro();
        assert_eq!((macro_tile.rows, macro_tile.columns), (64, 64));
        assert_eq!(macro_tile.cells(), 4096);
        let plan = TilePlan::new(layout, macro_tile).unwrap();
        assert_eq!(plan.tile_count(), 1);
        assert!(!plan.is_multi_tile());
    }

    #[test]
    fn fabric_reads_match_monolithic_bit_for_bit() {
        let (grid, array) = grid_and_array();
        let layout = *grid.layout();
        for evidence in [[0usize, 0, 0, 0], [1, 3, 2, 0], [3, 3, 3, 3]] {
            let activation = Activation::from_observation(&layout, &evidence).unwrap();
            assert_eq!(
                grid.wordline_currents(&activation).unwrap(),
                array.wordline_currents(&activation).unwrap()
            );
        }
        let all = Activation::all_columns(&layout);
        assert_eq!(
            grid.wordline_currents(&all).unwrap(),
            array.wordline_currents(&all).unwrap()
        );
        assert_eq!(
            grid.wordline_currents(&all).unwrap(),
            grid.wordline_currents_reference(&all).unwrap()
        );
    }

    #[test]
    fn noisy_fabric_reads_match_monolithic_bit_for_bit() {
        let (mut grid, mut array) = noisy_grid_and_array();
        let layout = *grid.layout();
        grid.advance_time(12_345);
        array.advance_time(12_345);
        let all = Activation::all_columns(&layout);
        // Many reads: drift is frozen in time but read-disturb tiers keep
        // crossing; the fabric and the monolithic array must agree on every
        // single read (their global read counters advance in lockstep).
        for _ in 0..30 {
            let tiled = grid.wordline_currents(&all).unwrap();
            let monolithic = array.wordline_currents(&all).unwrap();
            assert_eq!(tiled, monolithic);
            assert_eq!(tiled, grid.wordline_currents_reference(&all).unwrap());
        }
        assert_eq!(grid.row_reads(0).unwrap(), array.row_reads(0).unwrap());
    }

    #[test]
    fn variation_matches_monolithic_offsets() {
        let (mut grid, mut array) = grid_and_array();
        let variation = VariationModel::from_millivolts(45.0);
        let mut grid_rng = VariationModel::seeded_rng(11);
        let mut array_rng = VariationModel::seeded_rng(11);
        grid.apply_variation(&variation, &mut grid_rng);
        array.apply_variation(&variation, &mut array_rng);
        let activation = Activation::all_columns(grid.layout());
        assert_eq!(
            grid.wordline_currents(&activation).unwrap(),
            array.wordline_currents(&activation).unwrap()
        );
    }

    #[test]
    fn tile_partials_sum_to_the_merged_currents() {
        let (grid, _) = grid_and_array();
        let layout = *grid.layout();
        let activation = Activation::from_observation(&layout, &[1, 2, 3, 0]).unwrap();
        let merged = grid.wordline_currents(&activation).unwrap();
        let mut partial = Vec::new();
        for tile_row in 0..grid.plan().row_tiles() {
            let rows = grid.plan().tile_row_range(tile_row).unwrap();
            let mut sums = vec![0.0; rows.len()];
            for tile_col in 0..grid.plan().col_tiles() {
                grid.tile_partial_currents_into(tile_row, tile_col, &activation, &mut partial)
                    .unwrap();
                for (sum, value) in sums.iter_mut().zip(&partial) {
                    *sum += value;
                }
            }
            for (local_row, sum) in sums.iter().enumerate() {
                let merged_value = merged[rows.start + local_row];
                assert!(
                    (sum - merged_value).abs() <= merged_value.abs() * 1e-12,
                    "tile row {tile_row} local {local_row}: {sum} vs {merged_value}"
                );
            }
        }
        // Activated columns distribute across tile columns.
        let per_tile: usize = (0..grid.plan().col_tiles())
            .map(|tile_col| grid.tile_activated_columns(tile_col, &activation).unwrap())
            .sum();
        assert_eq!(per_tile, activation.len());
    }

    #[test]
    fn batched_reads_match_sequential_reads_bit_for_bit() {
        let (grid, array) = grid_and_array();
        let layout = *grid.layout();
        let activations: Vec<Activation> = [[0usize, 0, 0, 0], [1, 3, 2, 0], [3, 3, 3, 3]]
            .iter()
            .map(|evidence| Activation::from_observation(&layout, evidence).unwrap())
            .collect();
        let mut grid_batch = vec![7.7; 2];
        grid.wordline_currents_batch_into(&activations, &mut grid_batch)
            .unwrap();
        let mut array_batch = Vec::new();
        array
            .wordline_currents_batch_into(&activations, &mut array_batch)
            .unwrap();
        assert_eq!(grid_batch.len(), activations.len() * layout.rows());
        assert_eq!(grid_batch, array_batch);
        for (read, activation) in activations.iter().enumerate() {
            let sequential = grid.wordline_currents(activation).unwrap();
            let start = read * layout.rows();
            assert_eq!(&grid_batch[start..start + layout.rows()], &sequential[..]);
        }
        // Foreign activations are rejected before anything is written.
        let other = CrossbarLayout::new(2, 2, 4, false).unwrap();
        let mut mixed = activations.clone();
        mixed.push(Activation::all_columns(&other));
        assert!(grid
            .wordline_currents_batch_into(&mixed, &mut grid_batch)
            .is_err());
        assert!(array
            .wordline_currents_batch_into(&mixed, &mut array_batch)
            .is_err());
        // An empty group reads nothing.
        grid.wordline_currents_batch_into(&[], &mut grid_batch)
            .unwrap();
        assert!(grid_batch.is_empty());
    }

    #[test]
    fn batched_reads_match_sequential_under_disturb() {
        let (grid, _) = noisy_grid_and_array();
        let (sequential, _) = noisy_grid_and_array();
        let layout = *grid.layout();
        let activations: Vec<Activation> = (0..20)
            .map(|i| {
                Activation::from_observation(&layout, &[i % 4, (i + 1) % 4, (i + 2) % 4, i % 4])
                    .unwrap()
            })
            .collect();
        let mut batch_out = Vec::new();
        grid.wordline_currents_batch_into(&activations, &mut batch_out)
            .unwrap();
        let mut seq_out = Vec::new();
        let mut scratch = Vec::new();
        for activation in &activations {
            sequential
                .wordline_currents_into(activation, &mut scratch)
                .unwrap();
            seq_out.extend_from_slice(&scratch);
        }
        // 20 reads over 7-read tiers: tier crossings inside the batch.
        assert_eq!(batch_out, seq_out);
        assert_eq!(grid.row_reads(0).unwrap(), 20);
    }

    #[test]
    fn cell_access_and_mutation_track_the_cache() {
        let (mut grid, _) = grid_and_array();
        let activation = Activation::all_columns(grid.layout());
        let before = grid.wordline_currents(&activation).unwrap();
        grid.cell_mut(2, 10)
            .unwrap()
            .device_mut()
            .set_vth_offset(0.1);
        let after = grid.wordline_currents(&activation).unwrap();
        assert_ne!(before, after);
        assert_eq!(
            after,
            grid.wordline_currents_reference(&activation).unwrap()
        );
        assert!(grid.cell(3, 0).is_err());
        assert!(grid.cell_mut(0, 99).is_err());
    }

    #[test]
    fn single_cell_mutation_rebuilds_a_single_tile() {
        let (mut grid, _) = grid_and_array();
        let activation = Activation::all_columns(grid.layout());
        grid.wordline_currents(&activation).unwrap(); // warm: one full build
        let before = grid.rebuild_stats();
        assert_eq!(before.full_rebuilds, 1);

        // (2, 10) lives in tile (1, 1), a 1×7 edge tile.
        grid.cell_mut(2, 10)
            .unwrap()
            .device_mut()
            .set_vth_offset(0.05);
        grid.wordline_currents(&activation).unwrap();
        let after = grid.rebuild_stats();
        assert_eq!(after.full_rebuilds, 1, "no second full rebuild");
        assert_eq!(after.tile_rebuilds, before.tile_rebuilds + 1);
        assert_eq!(
            after.cells_recomputed,
            before.cells_recomputed + 7,
            "only the 1x7 edge tile re-evaluated"
        );
        assert_eq!(
            grid.wordline_currents(&activation).unwrap(),
            grid.wordline_currents_reference(&activation).unwrap()
        );
    }

    #[test]
    fn repeated_programs_into_one_tile_keep_other_tile_caches() {
        // Regression: `GridDirty::mark_tile` used to push duplicate indices,
        // so per-cell programming loops confined to ONE tile degraded the
        // dirty set to `All` after two writes and forced full fabric
        // rebuilds even though every other tile was untouched.
        let (mut grid, _) = grid_and_array();
        let activation = Activation::all_columns(grid.layout());
        grid.wordline_currents(&activation).unwrap(); // warm: one full build
        let before = grid.rebuild_stats();
        assert_eq!(before.full_rebuilds, 1);

        // Tile (0, 0) spans rows 0..2 × columns 0..9: 18 cells, far more
        // writes than the old duplicate-counting threshold tolerated.
        for row in 0..2 {
            for column in 0..9 {
                grid.program_cell(row, column, (row + column) % 10, ProgrammingMode::Ideal)
                    .unwrap();
            }
        }
        grid.wordline_currents(&activation).unwrap();
        let after = grid.rebuild_stats();
        assert_eq!(after.full_rebuilds, 1, "no spurious full rebuild");
        assert_eq!(after.tile_rebuilds, before.tile_rebuilds + 1);
        assert_eq!(
            after.cells_recomputed,
            before.cells_recomputed + 18,
            "only the reprogrammed 2x9 tile re-evaluated"
        );
        assert_eq!(
            grid.wordline_currents(&activation).unwrap(),
            grid.wordline_currents_reference(&activation).unwrap()
        );
    }

    #[test]
    fn region_program_prices_pulses_and_scopes_invalidation() {
        let (mut grid, _) = grid_and_array();
        let activation = Activation::all_columns(grid.layout());
        grid.wordline_currents(&activation).unwrap();
        let stats_before = grid.rebuild_stats();
        let energy_before = grid.write_energy();

        // A 2×3 block inside tile (0, 0).
        let block = vec![
            vec![Some(1), None, Some(3)],
            vec![Some(4), Some(5), Some(6)],
        ];
        let outcome = grid
            .program_region(0, 2, &block, ProgrammingMode::PulseTrain)
            .unwrap();
        assert_eq!(outcome.cells_programmed, 5);
        assert_eq!(outcome.cells_erased, 0);
        assert!(outcome.pulses_applied >= 5, "at least one pulse per cell");
        assert!(outcome.energy_joules > 0.0);
        assert!((grid.write_energy() - energy_before - outcome.energy_joules).abs() < 1e-24);

        grid.wordline_currents(&activation).unwrap();
        let stats_after = grid.rebuild_stats();
        assert_eq!(stats_after.full_rebuilds, stats_before.full_rebuilds);
        assert_eq!(stats_after.tile_rebuilds, stats_before.tile_rebuilds + 1);
        assert_eq!(
            grid.wordline_currents(&activation).unwrap(),
            grid.wordline_currents_reference(&activation).unwrap()
        );

        // A block hanging off the layout is rejected.
        assert!(grid
            .program_region(2, 14, &block, ProgrammingMode::Ideal)
            .is_err());
    }

    #[test]
    fn region_erase_forgets_levels_and_prices_one_pulse_per_cell() {
        let (mut grid, _) = grid_and_array();
        let activation = Activation::all_columns(grid.layout());
        grid.wordline_currents(&activation).unwrap();
        let stats_before = grid.rebuild_stats();

        // Erase the row-2 span of tile (1, 0) only (9 cells).
        let outcome = grid.erase_region(2..3, 0..9).unwrap();
        assert_eq!(outcome.cells_erased, 9);
        assert_eq!(outcome.cells_programmed, 0);
        assert_eq!(outcome.pulses_applied, 9);
        assert!(outcome.energy_joules > 0.0);
        for column in 0..9 {
            assert_eq!(grid.cell(2, column).unwrap().programmed_level(), None);
        }
        // Erasing an already-erased region is free.
        let again = grid.erase_region(2..3, 0..9).unwrap();
        assert_eq!(again.cells_erased, 0);
        assert_eq!(again.pulses_applied, 0);

        grid.wordline_currents(&activation).unwrap();
        let stats_after = grid.rebuild_stats();
        assert_eq!(stats_after.full_rebuilds, stats_before.full_rebuilds);
        assert_eq!(stats_after.tile_rebuilds, stats_before.tile_rebuilds + 1);
        assert_eq!(
            grid.wordline_currents(&activation).unwrap(),
            grid.wordline_currents_reference(&activation).unwrap()
        );
        assert!(grid.erase_region(0..4, 0..16).is_err());
        assert!(grid.erase_region(0..3, 0..17).is_err());
    }

    #[test]
    fn program_matrix_validates_shape_and_maps_back() {
        let plan = plan_2x2();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut grid = TileGrid::new(plan, programmer);
        let wrong_rows = vec![vec![None; plan.layout().columns()]];
        assert!(grid
            .program_matrix(&wrong_rows, ProgrammingMode::Ideal)
            .is_err());
        let wrong_columns = vec![vec![None; 3]; plan.layout().rows()];
        assert!(grid
            .program_matrix(&wrong_columns, ProgrammingMode::Ideal)
            .is_err());
        let mut levels = vec![vec![None; plan.layout().columns()]; plan.layout().rows()];
        levels[2][10] = Some(7);
        grid.program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        assert_eq!(grid.level_map(), levels);
        assert!(grid.write_energy() > 0.0);
    }

    #[test]
    fn pulse_disturb_stays_within_the_tile() {
        let plan = plan_2x2();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut grid = TileGrid::new(plan, programmer);
        // Row 0 and row 1 share a tile row; row 2 lives in the second tile
        // row, so programming (0, 0) must disturb (1, 0) but not (2, 0).
        grid.program_cell(0, 0, 5, ProgrammingMode::PulseTrain)
            .unwrap();
        assert!(grid.cell(1, 0).unwrap().disturb_pulses() > 0);
        assert_eq!(grid.cell(2, 0).unwrap().disturb_pulses(), 0);
        assert_eq!(grid.cell(0, 0).unwrap().disturb_pulses(), 0);
    }

    #[test]
    fn tiled_recalibration_restores_drifted_currents() {
        let plan = plan_2x2();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let stack = NonIdealityStack::ideal().with_drift(RetentionDrift::new(0.012, 100));
        let mut grid = TileGrid::with_non_idealities(plan, programmer, stack).unwrap();
        let levels = checker_levels(plan.layout());
        grid.program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        let activation = Activation::all_columns(grid.layout());
        let fresh = grid.wordline_currents(&activation).unwrap();

        grid.advance_time(100_000);
        let aged = grid.wordline_currents(&activation).unwrap();
        assert_ne!(aged, fresh);
        assert!(grid.worst_effective_shift() > 0.01);

        let outcome = grid.recalibrate(0.005, ProgrammingMode::Ideal).unwrap();
        assert_eq!(outcome.rows_refreshed as usize, grid.layout().rows());
        assert_eq!(outcome.cells_refreshed as usize, grid.layout().cells());
        assert!(outcome.energy_joules > 0.0);
        let restored = grid.wordline_currents(&activation).unwrap();
        assert_eq!(restored, fresh, "refresh restores the fresh read bitwise");
        assert!(grid.worst_effective_shift() < 1e-12);
        assert_eq!(
            restored,
            grid.wordline_currents_reference(&activation).unwrap()
        );
        assert!(grid.recalibrate(0.0, ProgrammingMode::Ideal).is_err());
    }

    #[test]
    fn current_map_into_reuses_the_buffer() {
        let (grid, array) = grid_and_array();
        let mut flat = vec![9.9; 3];
        grid.current_map_into(&mut flat);
        assert_eq!(flat.len(), grid.layout().cells());
        let reference = array.current_map();
        for (index, value) in flat.iter().enumerate() {
            let row = index / grid.layout().columns();
            let column = index % grid.layout().columns();
            assert_eq!(*value, reference[row][column]);
        }
    }

    #[test]
    fn foreign_activation_rejected() {
        let (grid, _) = grid_and_array();
        let other = CrossbarLayout::new(2, 2, 4, false).unwrap();
        let activation = Activation::all_columns(&other);
        assert!(matches!(
            grid.wordline_currents(&activation),
            Err(CrossbarError::ActivationLengthMismatch { .. })
        ));
        assert!(grid.wordline_currents_reference(&activation).is_err());
    }

    #[test]
    fn equality_ignores_cache_state() {
        let (warm, _) = grid_and_array();
        let (cold, _) = grid_and_array();
        let activation = Activation::all_columns(warm.layout());
        warm.wordline_currents(&activation).unwrap();
        assert_eq!(warm, cold);
    }

    fn spare_plan(spare_rows: usize) -> TilePlan {
        let layout = CrossbarLayout::new(3, 4, 4, false).unwrap();
        let shape = TileShape::new(2, 9).unwrap().with_spare_rows(spare_rows);
        TilePlan::new(layout, shape).unwrap()
    }

    fn spare_grid(spare_rows: usize) -> TileGrid {
        let plan = spare_plan(spare_rows);
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut grid = TileGrid::new(plan, programmer);
        grid.program_matrix(&checker_levels(plan.layout()), ProgrammingMode::Ideal)
            .unwrap();
        grid
    }

    #[test]
    fn spare_rows_do_not_change_logical_geometry() {
        let shape = TileShape::new(2, 9).unwrap().with_spare_rows(3);
        assert_eq!(shape.spare_rows, 3);
        assert_eq!(shape.cells(), 18, "spares excluded from logical cells");
        let plan = spare_plan(2);
        assert_eq!(plan.tile_count(), 4);
        let grid = spare_grid(2);
        assert_eq!(grid.spare_rows_total(), 8);
        assert_eq!(grid.spares_used(), 0);
        assert!(!grid.is_row_remapped(0));
        // Reads are unaffected by provisioned-but-unused spares.
        let (reference, _) = grid_and_array();
        let activation = Activation::all_columns(grid.layout());
        assert_eq!(
            grid.wordline_currents(&activation).unwrap(),
            reference.wordline_currents(&activation).unwrap()
        );
    }

    #[test]
    fn grid_scrub_repairs_transient_fault_in_place() {
        let mut grid = spare_grid(1);
        let activation = Activation::all_columns(grid.layout());
        let reference = grid.wordline_currents(&activation).unwrap();
        crate::fault::apply_scheduled_grid_fault(&mut grid, 2, 10, FaultKind::StuckErased, false)
            .unwrap();
        assert_ne!(grid.wordline_currents(&activation).unwrap(), reference);

        let outcome = grid.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert!(outcome.fully_repaired());
        assert_eq!(outcome.cells_repaired, 1);
        assert_eq!(outcome.rows_remapped, 0, "in-place repair needs no spare");
        assert_eq!(grid.spares_used(), 0);
        assert_eq!(grid.wordline_currents(&activation).unwrap(), reference);
    }

    #[test]
    fn grid_scrub_remaps_permanent_fault_onto_spare_bit_exactly() {
        let mut grid = spare_grid(1);
        let activation = Activation::all_columns(grid.layout());
        let reference = grid.wordline_currents(&activation).unwrap();
        crate::fault::apply_scheduled_grid_fault(
            &mut grid,
            2,
            10,
            FaultKind::StuckProgrammed,
            true,
        )
        .unwrap();
        assert_ne!(grid.wordline_currents(&activation).unwrap(), reference);

        let outcome = grid.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert!(outcome.fully_repaired());
        assert_eq!(outcome.stuck_cells, 0);
        assert_eq!(outcome.rows_remapped, 1);
        assert!(outcome.pulses_applied > 0);
        assert_eq!(grid.spares_used(), 1);
        assert!(grid.is_row_remapped(2));
        assert!(!grid.is_row_remapped(0));
        let report = &outcome.reports[0];
        assert_eq!((report.row, report.column), (2, 10));
        assert_eq!(report.kind, FaultKind::StuckProgrammed);
        assert!(report.repaired);

        // Reads through the remap are bit-identical to the pre-fault
        // reference, on the cached path and the uncached oracle alike.
        let healed = grid.wordline_currents(&activation).unwrap();
        assert_eq!(healed, reference);
        assert_eq!(
            healed,
            grid.wordline_currents_reference(&activation).unwrap()
        );
        assert_eq!(grid.worst_effective_shift(), 0.0);

        // The repaired row keeps working as a programming target.
        grid.program_cell(2, 10, 9, ProgrammingMode::Ideal).unwrap();
        assert_eq!(grid.cell(2, 10).unwrap().programmed_level(), Some(9));
        assert!(!grid.cell(2, 10).unwrap().is_stuck());
    }

    #[test]
    fn grid_scrub_without_spares_reports_unrepairable_cells() {
        let mut grid = spare_grid(0);
        crate::fault::apply_scheduled_grid_fault(&mut grid, 2, 10, FaultKind::StuckErased, true)
            .unwrap();
        let outcome = grid.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert!(!outcome.fully_repaired());
        assert_eq!(outcome.stuck_cells, 1);
        assert_eq!(outcome.rows_remapped, 0);
        let unrepaired: Vec<&FaultReport> = outcome.unrepaired().collect();
        assert_eq!(unrepaired.len(), 1);
        assert_eq!((unrepaired[0].row, unrepaired[0].column), (2, 10));
        assert!(grid.cell(2, 10).unwrap().is_stuck());
        // Recalibration leaves the latched cell to the repair subsystem.
        assert_eq!(grid.worst_effective_shift(), 0.0);
        let refresh = grid.recalibrate(0.05, ProgrammingMode::Ideal).unwrap();
        assert_eq!(refresh.rows_refreshed, 0);
    }

    #[test]
    fn grid_scrub_exhausts_spares_then_degrades() {
        let mut grid = spare_grid(1);
        // Rows 0 and 1 share tile (0, 1): the single spare covers only one.
        crate::fault::apply_scheduled_grid_fault(&mut grid, 0, 10, FaultKind::StuckErased, true)
            .unwrap();
        crate::fault::apply_scheduled_grid_fault(&mut grid, 1, 10, FaultKind::StuckErased, true)
            .unwrap();
        let outcome = grid.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert_eq!(outcome.rows_remapped, 1);
        assert_eq!(outcome.stuck_cells, 1);
        assert!(!outcome.fully_repaired());
        assert_eq!(grid.spares_used(), 1);
    }

    fn test_ladder(programmer: &LevelProgrammer) -> LevelLadder {
        LevelLadder::new(
            programmer.min_current(),
            programmer.max_current(),
            programmer.levels(),
        )
        .unwrap()
    }

    #[test]
    fn packed_fabric_partials_match_monolithic_and_oracle() {
        let (grid, array) = grid_and_array();
        let layout = *grid.layout();
        let ladder = test_ladder(grid.programmer());
        let activation = Activation::from_observation(&layout, &[1, 3, 2, 0]).unwrap();
        let bit_offsets = vec![0u8, 2, 0, 2];
        let mut scratch = Vec::new();
        let mut fabric = Vec::new();
        let mut monolithic = Vec::new();
        grid.plane_partial_sums_into(
            &activation,
            &bit_offsets,
            2,
            &ladder,
            &mut scratch,
            &mut fabric,
        )
        .unwrap();
        array
            .plane_partial_sums_into(
                &activation,
                &bit_offsets,
                2,
                &ladder,
                &mut scratch,
                &mut monolithic,
            )
            .unwrap();
        assert_eq!(fabric.len(), layout.rows() * 2);
        assert_eq!(fabric, monolithic);
        assert_eq!(
            fabric,
            grid.plane_partial_sums_reference(&activation, &bit_offsets, 2, &ladder)
                .unwrap()
        );
        // Offset slices shorter than the activation are rejected.
        assert!(grid
            .plane_partial_sums_reference(&activation, &bit_offsets[..2], 2, &ladder)
            .is_err());
    }

    #[test]
    fn noisy_packed_fabric_matches_monolithic_under_disturb() {
        let (grid, array) = noisy_grid_and_array();
        let layout = *grid.layout();
        let ladder = test_ladder(grid.programmer());
        let activation = Activation::all_columns(&layout);
        let bit_offsets = vec![1u8; activation.len()];
        let mut scratch = Vec::new();
        let mut fabric = Vec::new();
        let mut monolithic = Vec::new();
        // Read-disturb tiers keep crossing; the packed fabric path, the
        // packed monolithic path and the uncached oracle must stay in
        // lockstep on every single read.
        for _ in 0..20 {
            grid.plane_partial_sums_into(
                &activation,
                &bit_offsets,
                2,
                &ladder,
                &mut scratch,
                &mut fabric,
            )
            .unwrap();
            array
                .plane_partial_sums_into(
                    &activation,
                    &bit_offsets,
                    2,
                    &ladder,
                    &mut scratch,
                    &mut monolithic,
                )
                .unwrap();
            assert_eq!(fabric, monolithic);
            assert_eq!(
                fabric,
                grid.plane_partial_sums_reference(&activation, &bit_offsets, 2, &ladder)
                    .unwrap()
            );
        }
        assert_eq!(grid.row_reads(0).unwrap(), array.row_reads(0).unwrap());
    }

    #[test]
    fn batched_packed_fabric_matches_sequential_reads() {
        let (grid, _) = noisy_grid_and_array();
        let (sequential, _) = noisy_grid_and_array();
        let layout = *grid.layout();
        let ladder = test_ladder(grid.programmer());
        let reads: Vec<(Activation, Vec<u8>)> = (0..9)
            .map(|i| {
                let activation =
                    Activation::from_observation(&layout, &[i % 4, (i + 1) % 4, (i + 2) % 4, 0])
                        .unwrap();
                let offsets = vec![(i % 3) as u8; activation.len()];
                (activation, offsets)
            })
            .collect();
        let activations: Vec<Activation> = reads.iter().map(|(a, _)| a.clone()).collect();
        let flat_offsets: Vec<u8> = reads.iter().flat_map(|(_, o)| o.clone()).collect();
        let mut scratch = Vec::new();
        let mut batch_out = Vec::new();
        grid.plane_partial_sums_batch_into(
            &activations,
            &flat_offsets,
            2,
            &ladder,
            &mut scratch,
            &mut batch_out,
        )
        .unwrap();
        let mut seq_out = Vec::new();
        let mut one = Vec::new();
        for (activation, offsets) in &reads {
            sequential
                .plane_partial_sums_into(activation, offsets, 2, &ladder, &mut scratch, &mut one)
                .unwrap();
            seq_out.extend_from_slice(&one);
        }
        assert_eq!(batch_out, seq_out);
        assert_eq!(grid.row_reads(0).unwrap(), 9);
    }

    #[test]
    fn packed_fabric_reads_survive_spare_row_repair() {
        let mut grid = spare_grid(2);
        let layout = *grid.layout();
        let ladder = test_ladder(grid.programmer());
        let activation = Activation::all_columns(&layout);
        let bit_offsets = vec![0u8; activation.len()];
        let reference = grid
            .plane_partial_sums_reference(&activation, &bit_offsets, 2, &ladder)
            .unwrap();
        crate::fault::apply_scheduled_grid_fault(
            &mut grid,
            2,
            10,
            FaultKind::StuckProgrammed,
            true,
        )
        .unwrap();
        let outcome = grid.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert_eq!(outcome.rows_remapped, 1);
        assert!(grid.is_row_remapped(2));
        // Packed reads through the remap are bit-identical to the pre-fault
        // reference, cached and uncached alike.
        let mut scratch = Vec::new();
        let mut healed = Vec::new();
        grid.plane_partial_sums_into(
            &activation,
            &bit_offsets,
            2,
            &ladder,
            &mut scratch,
            &mut healed,
        )
        .unwrap();
        assert_eq!(healed, reference);
        assert_eq!(
            healed,
            grid.plane_partial_sums_reference(&activation, &bit_offsets, 2, &ladder)
                .unwrap()
        );
    }
}
