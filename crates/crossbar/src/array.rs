//! The FeFET crossbar array: programming, variation injection and wordline
//! current accumulation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use febim_device::{LevelProgrammer, VariationModel};

use crate::cell::Cell;
use crate::errors::{CrossbarError, Result};
use crate::layout::CrossbarLayout;
use crate::read::Activation;
use crate::write::WriteScheme;

/// How cells are programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProgrammingMode {
    /// Install the exact target polarization (fast, used for large sweeps).
    #[default]
    Ideal,
    /// Apply the erase-then-pulse-train sequence through the Preisach model,
    /// including half-bias disturbance of the other cells in the column.
    PulseTrain,
}

/// A programmed FeFET crossbar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarArray {
    layout: CrossbarLayout,
    programmer: LevelProgrammer,
    write_scheme: WriteScheme,
    cells: Vec<Cell>,
    write_energy: f64,
}

impl CrossbarArray {
    /// Creates an erased crossbar with the given layout and level programmer.
    pub fn new(layout: CrossbarLayout, programmer: LevelProgrammer) -> Self {
        let cells = (0..layout.cells())
            .map(|_| Cell::new(programmer.params().clone()))
            .collect();
        Self {
            layout,
            programmer,
            write_scheme: WriteScheme::febim_default(),
            cells,
            write_energy: 0.0,
        }
    }

    /// Replaces the write scheme (half-bias configuration).
    pub fn set_write_scheme(&mut self, scheme: WriteScheme) {
        self.write_scheme = scheme;
    }

    /// Borrow the layout.
    pub fn layout(&self) -> &CrossbarLayout {
        &self.layout
    }

    /// Borrow the level programmer.
    pub fn programmer(&self) -> &LevelProgrammer {
        &self.programmer
    }

    /// Total write energy spent programming the array so far, in joules.
    pub fn write_energy(&self) -> f64 {
        self.write_energy
    }

    fn cell_index(&self, row: usize, column: usize) -> Result<usize> {
        if row >= self.layout.rows() || column >= self.layout.columns() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        Ok(row * self.layout.columns() + column)
    }

    /// Borrow a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside
    /// the array.
    pub fn cell(&self, row: usize, column: usize) -> Result<&Cell> {
        let index = self.cell_index(row, column)?;
        Ok(&self.cells[index])
    }

    /// Mutably borrow a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside
    /// the array.
    pub fn cell_mut(&mut self, row: usize, column: usize) -> Result<&mut Cell> {
        let index = self.cell_index(row, column)?;
        Ok(&mut self.cells[index])
    }

    /// Programs one cell to a multi-level state.
    ///
    /// With [`ProgrammingMode::PulseTrain`] the other cells of the same column
    /// absorb half-bias disturb pulses, mirroring the physical write scheme.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for bad coordinates and
    /// propagates device errors for unreachable levels.
    pub fn program_cell(
        &mut self,
        row: usize,
        column: usize,
        level: usize,
        mode: ProgrammingMode,
    ) -> Result<()> {
        let index = self.cell_index(row, column)?;
        let state = match mode {
            ProgrammingMode::Ideal => {
                let state = self
                    .programmer
                    .program_ideal(self.cells[index].device_mut(), level)?;
                state
            }
            ProgrammingMode::PulseTrain => {
                let state = self
                    .programmer
                    .program_with_pulses(self.cells[index].device_mut(), level)?;
                // Unselected rows of the same column see V_w/2 pulses.
                let scheme = self.write_scheme;
                let pulses = u64::from(state.write_config.pulse_count) + 1;
                for other_row in 0..self.layout.rows() {
                    if other_row == row {
                        continue;
                    }
                    let other_index = self.cell_index(other_row, column)?;
                    scheme.apply_disturb(&mut self.cells[other_index], pulses);
                }
                state
            }
        };
        self.cells[index].set_programmed_level(level);
        self.cells[index].reset_disturb();
        self.write_energy += self.programmer.write_energy(state.level)?;
        Ok(())
    }

    /// Programs the whole array from a level matrix
    /// (`levels[row][column] = Some(level)` or `None` to leave the cell erased).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when the matrix shape does
    /// not match the layout, and propagates programming errors.
    pub fn program_matrix(
        &mut self,
        levels: &[Vec<Option<usize>>],
        mode: ProgrammingMode,
    ) -> Result<()> {
        if levels.len() != self.layout.rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row: levels.len(),
                column: 0,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        for (row, row_levels) in levels.iter().enumerate() {
            if row_levels.len() != self.layout.columns() {
                return Err(CrossbarError::IndexOutOfBounds {
                    row,
                    column: row_levels.len(),
                    rows: self.layout.rows(),
                    columns: self.layout.columns(),
                });
            }
            for (column, level) in row_levels.iter().enumerate() {
                if let Some(level) = level {
                    self.program_cell(row, column, *level, mode)?;
                }
            }
        }
        Ok(())
    }

    /// Applies Gaussian threshold-voltage variation to every cell.
    pub fn apply_variation<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        for cell in &mut self.cells {
            let offset = variation.sample_offset(rng);
            cell.device_mut().set_vth_offset(offset);
        }
    }

    /// Accumulated current of one wordline for an activation pattern, in
    /// amperes. Activated cells contribute their `V_on` read current;
    /// inhibited cells contribute their (negligible) `V_off` leakage.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the activation
    /// was built for a different layout and
    /// [`CrossbarError::IndexOutOfBounds`] for a bad row.
    pub fn wordline_current(&self, row: usize, activation: &Activation) -> Result<f64> {
        if activation.total_columns() != self.layout.columns() {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: self.layout.columns(),
                found: activation.total_columns(),
            });
        }
        if row >= self.layout.rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column: 0,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        let mut current = 0.0;
        for column in 0..self.layout.columns() {
            let cell = self.cell(row, column)?;
            if activation.is_active(column) {
                current += cell.read_current_on();
            } else {
                current += cell.read_current_off();
            }
        }
        Ok(current)
    }

    /// Accumulated currents of every wordline for an activation pattern.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`CrossbarArray::wordline_current`].
    pub fn wordline_currents(&self, activation: &Activation) -> Result<Vec<f64>> {
        (0..self.layout.rows())
            .map(|row| self.wordline_current(row, activation))
            .collect()
    }

    /// The programmed level of every cell as a matrix (for Fig. 8(b)-style
    /// state maps).
    pub fn level_map(&self) -> Vec<Vec<Option<usize>>> {
        (0..self.layout.rows())
            .map(|row| {
                (0..self.layout.columns())
                    .map(|column| {
                        self.cell(row, column)
                            .expect("in-range indices")
                            .programmed_level()
                    })
                    .collect()
            })
            .collect()
    }

    /// The read current of every cell as a matrix, in amperes.
    pub fn current_map(&self) -> Vec<Vec<f64>> {
        (0..self.layout.rows())
            .map(|row| {
                (0..self.layout.columns())
                    .map(|column| {
                        self.cell(row, column)
                            .expect("in-range indices")
                            .read_current_on()
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_device::VariationModel;

    fn small_array() -> CrossbarArray {
        let layout = CrossbarLayout::new(2, 2, 4, true).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        CrossbarArray::new(layout, programmer)
    }

    #[test]
    fn fresh_array_has_negligible_currents() {
        let array = small_array();
        let activation = Activation::all_columns(array.layout());
        let currents = array.wordline_currents(&activation).unwrap();
        assert_eq!(currents.len(), 2);
        for current in currents {
            assert!(current < 1e-8);
        }
    }

    #[test]
    fn programming_raises_wordline_current() {
        let mut array = small_array();
        array.program_cell(0, 1, 9, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::from_columns(array.layout(), &[1]).unwrap();
        let currents = array.wordline_currents(&activation).unwrap();
        assert!(currents[0] > 0.9e-6);
        assert!(currents[1] < 1e-8);
        assert_eq!(array.cell(0, 1).unwrap().programmed_level(), Some(9));
        assert!(array.write_energy() > 0.0);
    }

    #[test]
    fn accumulation_is_additive_across_columns() {
        let mut array = small_array();
        array.program_cell(0, 1, 4, ProgrammingMode::Ideal).unwrap();
        array.program_cell(0, 5, 9, ProgrammingMode::Ideal).unwrap();
        let single_a = array
            .wordline_current(0, &Activation::from_columns(array.layout(), &[1]).unwrap())
            .unwrap();
        let single_b = array
            .wordline_current(0, &Activation::from_columns(array.layout(), &[5]).unwrap())
            .unwrap();
        let both = array
            .wordline_current(
                0,
                &Activation::from_columns(array.layout(), &[1, 5]).unwrap(),
            )
            .unwrap();
        // The off-state leakage of the remaining columns is shared between the
        // measurements, so additivity holds to well below one percent.
        let expected = single_a + single_b;
        assert!((both - expected).abs() / expected < 1e-2);
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut array = small_array();
        assert!(array.cell(5, 0).is_err());
        assert!(array.cell(0, 99).is_err());
        assert!(array.program_cell(5, 0, 1, ProgrammingMode::Ideal).is_err());
        assert!(array
            .wordline_current(7, &Activation::all_columns(array.layout()))
            .is_err());
    }

    #[test]
    fn unreachable_level_propagates_device_error() {
        let mut array = small_array();
        let err = array
            .program_cell(0, 0, 99, ProgrammingMode::Ideal)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::Device(_)));
    }

    #[test]
    fn activation_from_other_layout_rejected() {
        let array = small_array();
        let other_layout = CrossbarLayout::new(2, 3, 4, false).unwrap();
        let activation = Activation::all_columns(&other_layout);
        assert!(matches!(
            array.wordline_currents(&activation),
            Err(CrossbarError::ActivationLengthMismatch { .. })
        ));
    }

    #[test]
    fn program_matrix_validates_shape() {
        let mut array = small_array();
        let wrong_rows = vec![vec![None; array.layout().columns()]];
        assert!(array
            .program_matrix(&wrong_rows, ProgrammingMode::Ideal)
            .is_err());
        let wrong_columns = vec![vec![None; 3]; array.layout().rows()];
        assert!(array
            .program_matrix(&wrong_columns, ProgrammingMode::Ideal)
            .is_err());
    }

    #[test]
    fn program_matrix_programs_and_maps_back() {
        let mut array = small_array();
        let mut levels = vec![vec![None; array.layout().columns()]; array.layout().rows()];
        levels[0][0] = Some(3);
        levels[1][8] = Some(7);
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        assert_eq!(array.level_map(), levels);
        let currents = array.current_map();
        assert!(currents[0][0] > currents[0][1]);
        assert!(currents[1][8] > currents[1][7]);
    }

    #[test]
    fn pulse_train_mode_disturbs_other_rows() {
        let mut array = small_array();
        array
            .program_cell(0, 2, 5, ProgrammingMode::PulseTrain)
            .unwrap();
        // The unselected row in the same column absorbed disturb pulses.
        assert!(array.cell(1, 2).unwrap().disturb_pulses() > 0);
        // The programmed cell's disturb counter was reset.
        assert_eq!(array.cell(0, 2).unwrap().disturb_pulses(), 0);
    }

    #[test]
    fn pulse_train_and_ideal_agree_closely() {
        let layout = CrossbarLayout::new(1, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut ideal = CrossbarArray::new(layout, programmer.clone());
        let mut pulsed = CrossbarArray::new(layout, programmer);
        ideal.program_cell(0, 0, 6, ProgrammingMode::Ideal).unwrap();
        pulsed
            .program_cell(0, 0, 6, ProgrammingMode::PulseTrain)
            .unwrap();
        let a = ideal.cell(0, 0).unwrap().read_current_on();
        let b = pulsed.cell(0, 0).unwrap().read_current_on();
        assert!((a - b).abs() / a < 0.1, "ideal {a:.3e} pulsed {b:.3e}");
    }

    #[test]
    fn variation_perturbs_read_currents() {
        let mut array = small_array();
        array.program_cell(0, 0, 5, ProgrammingMode::Ideal).unwrap();
        let nominal = array.cell(0, 0).unwrap().read_current_on();
        let variation = VariationModel::from_millivolts(45.0);
        let mut rng = VariationModel::seeded_rng(3);
        array.apply_variation(&variation, &mut rng);
        let perturbed = array.cell(0, 0).unwrap().read_current_on();
        assert_ne!(nominal, perturbed);
    }
}
