//! The FeFET crossbar array: programming, variation injection, time-varying
//! non-idealities and wordline current accumulation.
//!
//! ## Epoch-versioned conductance cache
//!
//! Conductances are functions of time and read history once a
//! [`NonIdealityStack`] is configured: retention drift depends on the array
//! clock, read disturb on per-wordline read counters, IR-drop on the cell's
//! position. The array therefore versions its derived state with a
//! monotonic `state_epoch` — bumped by every write, drift tick and
//! disturb-tier crossing — and keeps a dirty set describing *which* cells
//! changed since the cache last matched the epoch. Bringing the cache
//! current re-evaluates only the dirty cells (plus their rows' off-sums,
//! re-accumulated in full column order so a partial refresh is bit-identical
//! to a full rebuild); the dirty set degrades to a full rebuild when the
//! sparse work would approach the cost of one.

use std::cell::RefCell;

use rand::Rng;
use serde::{Deserialize, Serialize};

use febim_device::{
    CellContext, DeviceError, LevelProgrammer, NonIdealityStack, ProgrammedState, VariationModel,
};

use crate::cache::{lane_delta_sum, row_plane_partials, ConductanceCache};
use crate::cell::Cell;
use crate::errors::{CrossbarError, Result};
use crate::fault::{FaultKind, FaultReport, ScrubOutcome};
use crate::layout::CrossbarLayout;
use crate::read::{Activation, LevelLadder, ReadCounters};
use crate::write::WriteScheme;

/// How cells are programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProgrammingMode {
    /// Install the exact target polarization (fast, used for large sweeps).
    #[default]
    Ideal,
    /// Apply the erase-then-pulse-train sequence through the Preisach model,
    /// including half-bias disturbance of the other cells in the column.
    PulseTrain,
}

/// Cache maintenance counters: how the conductance cache was kept current.
///
/// `cells_recomputed` counts device-model evaluations (the expensive part of
/// a rebuild); the regression tests pin that a single-cell mutation
/// recomputes a single cell, not the whole array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct RebuildStats {
    /// Times the whole cache was rebuilt from scratch.
    pub full_rebuilds: u64,
    /// Times the cache was brought current by a sparse patch.
    pub partial_refreshes: u64,
    /// Total cells whose on/off currents were re-evaluated.
    pub cells_recomputed: u64,
}

/// Outcome of one recalibration pass over the array (see
/// [`CrossbarArray::recalibrate`]): how much was checked, refreshed, and
/// what the refresh cost in pulses and energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[must_use = "maintenance outcomes carry repair counters and energy costs that must be merged into reports"]
pub struct RefreshOutcome {
    /// Programmed cells whose effective threshold shift was evaluated.
    pub cells_checked: u64,
    /// Wordlines that were rewritten.
    pub rows_refreshed: u64,
    /// Programmed cells that were rewritten.
    pub cells_refreshed: u64,
    /// Write pulses applied (minimal Preisach top-up trains where possible).
    pub pulses_applied: u64,
    /// Write energy spent by the pass, in joules.
    pub energy_joules: f64,
}

impl RefreshOutcome {
    /// Folds another pass's counters into this one.
    pub fn merge(&mut self, other: &RefreshOutcome) {
        self.cells_checked += other.cells_checked;
        self.rows_refreshed += other.rows_refreshed;
        self.cells_refreshed += other.cells_refreshed;
        self.pulses_applied += other.pulses_applied;
        self.energy_joules += other.energy_joules;
    }
}

/// What changed since the conductance cache last matched the state epoch.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DirtyState {
    /// Nothing: the cache (if built) is current.
    Clean,
    /// Only the listed cell indices and whole rows changed.
    Sparse {
        /// Row-major cell indices with stale conductances.
        cells: Vec<usize>,
        /// Rows whose every cell is stale (disturb-tier crossings).
        rows: Vec<usize>,
    },
    /// Everything is stale (or the sparse set overflowed its budget).
    All,
}

impl Default for DirtyState {
    /// A deserialized array arrives without its conductance cache (the cache
    /// fields are `#[serde(skip)]`), so the bookkeeping starts fully stale.
    fn default() -> Self {
        DirtyState::All
    }
}

impl DirtyState {
    fn sparse_work(cells: &[usize], rows: &[usize], columns: usize) -> usize {
        cells.len() + rows.len() * columns
    }

    /// Marks one cell stale, degrading to `All` when the sparse set would
    /// cost a significant fraction of a full rebuild.
    pub(crate) fn mark_cell(&mut self, index: usize, total_cells: usize, columns: usize) {
        let overflow = match self {
            DirtyState::All => false,
            DirtyState::Clean => {
                *self = DirtyState::Sparse {
                    cells: vec![index],
                    rows: Vec::new(),
                };
                false
            }
            DirtyState::Sparse { cells, rows } => {
                cells.push(index);
                Self::sparse_work(cells, rows, columns) * 2 >= total_cells
            }
        };
        if overflow {
            *self = DirtyState::All;
        }
    }

    /// Marks one whole row stale (same overflow rule as
    /// [`DirtyState::mark_cell`]).
    pub(crate) fn mark_row(&mut self, row: usize, total_cells: usize, columns: usize) {
        let overflow = match self {
            DirtyState::All => false,
            DirtyState::Clean => {
                *self = DirtyState::Sparse {
                    cells: Vec::new(),
                    rows: vec![row],
                };
                false
            }
            DirtyState::Sparse { cells, rows } => {
                rows.push(row);
                Self::sparse_work(cells, rows, columns) * 2 >= total_cells
            }
        };
        if overflow {
            *self = DirtyState::All;
        }
    }
}

/// A programmed FeFET crossbar.
///
/// Reads go through an epoch-versioned conductance cache: the device I-V
/// model is evaluated per cell only when that cell's state changed
/// (programming, variation injection, direct cell access, retention-drift
/// ticks or read-disturb tier crossings), and every
/// [`CrossbarArray::wordline_currents`] call is a sparse accumulation over
/// the activated columns only. The uncached
/// [`CrossbarArray::wordline_currents_reference`] path re-evaluates the
/// device model — including the configured [`NonIdealityStack`] — on every
/// call and serves as the equivalence oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossbarArray {
    layout: CrossbarLayout,
    programmer: LevelProgrammer,
    write_scheme: WriteScheme,
    cells: Vec<Cell>,
    write_energy: f64,
    /// Composable time-varying non-ideality models.
    stack: NonIdealityStack,
    /// Array clock in retention ticks (advanced by
    /// [`CrossbarArray::advance_time`]).
    clock: u64,
    /// Per-wordline read counters (read history is physical state once a
    /// disturb model is configured). Skipped by serialization.
    #[serde(skip)]
    row_reads: ReadCounters,
    /// Monotonic version of the physical state; bumped by every mutation
    /// that can change a read current.
    #[serde(skip)]
    state_epoch: std::cell::Cell<u64>,
    /// The state epoch the cache was last brought up to date with.
    #[serde(skip)]
    cache_epoch: std::cell::Cell<u64>,
    /// Which cells changed between `cache_epoch` and `state_epoch`.
    #[serde(skip)]
    dirty: RefCell<DirtyState>,
    /// Cache maintenance counters.
    #[serde(skip)]
    stats: std::cell::Cell<RebuildStats>,
    /// Derived state: `None` means never built. Skipped by serialization and
    /// ignored by equality.
    #[serde(skip)]
    cache: RefCell<Option<ConductanceCache>>,
}

impl PartialEq for CrossbarArray {
    fn eq(&self, other: &Self) -> bool {
        // The conductance cache, dirty set and epochs are derived state; two
        // arrays are equal when their physical state (cells, clock, read
        // history, non-ideality configuration, bookkeeping) is.
        self.layout == other.layout
            && self.programmer == other.programmer
            && self.write_scheme == other.write_scheme
            && self.cells == other.cells
            && self.write_energy == other.write_energy
            && self.stack == other.stack
            && self.clock == other.clock
            && self.row_reads == other.row_reads
    }
}

impl CrossbarArray {
    /// Creates an erased, ideal (no non-idealities) crossbar with the given
    /// layout and level programmer.
    pub fn new(layout: CrossbarLayout, programmer: LevelProgrammer) -> Self {
        // Build one template cell and clone it, instead of cloning the device
        // parameter struct once per cell.
        let template = Cell::new(programmer.params().clone());
        let cells = vec![template; layout.cells()];
        Self {
            layout,
            programmer,
            write_scheme: WriteScheme::febim_default(),
            cells,
            write_energy: 0.0,
            stack: NonIdealityStack::ideal(),
            clock: 0,
            row_reads: ReadCounters::new(layout.rows()),
            state_epoch: std::cell::Cell::new(0),
            cache_epoch: std::cell::Cell::new(0),
            dirty: RefCell::new(DirtyState::All),
            stats: std::cell::Cell::new(RebuildStats::default()),
            cache: RefCell::new(None),
        }
    }

    /// Creates an erased crossbar with a configured non-ideality stack.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] when the stack parameters are
    /// unphysical (see [`NonIdealityStack::validate`]).
    pub fn with_non_idealities(
        layout: CrossbarLayout,
        programmer: LevelProgrammer,
        stack: NonIdealityStack,
    ) -> Result<Self> {
        stack.validate()?;
        let mut array = Self::new(layout, programmer);
        array.stack = stack;
        Ok(array)
    }

    /// Replaces the write scheme (half-bias configuration).
    pub fn set_write_scheme(&mut self, scheme: WriteScheme) {
        self.write_scheme = scheme;
    }

    /// Borrow the layout.
    pub fn layout(&self) -> &CrossbarLayout {
        &self.layout
    }

    /// Borrow the level programmer.
    pub fn programmer(&self) -> &LevelProgrammer {
        &self.programmer
    }

    /// Total write energy spent programming the array so far, in joules.
    pub fn write_energy(&self) -> f64 {
        self.write_energy
    }

    /// The configured non-ideality stack.
    pub fn non_idealities(&self) -> &NonIdealityStack {
        &self.stack
    }

    /// Replaces the non-ideality stack; every cached conductance is stale
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] when the stack parameters are
    /// unphysical.
    pub fn set_non_idealities(&mut self, stack: NonIdealityStack) -> Result<()> {
        stack.validate()?;
        self.stack = stack;
        self.mark_all();
        Ok(())
    }

    /// Current array clock, in retention ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the array clock by `ticks`. With a retention-drift model
    /// configured this ages every cell, so the whole cache goes stale (one
    /// epoch bump, one full rebuild on the next read); without one the clock
    /// still advances but no conductance changes.
    pub fn advance_time(&mut self, ticks: u64) {
        if ticks == 0 {
            return;
        }
        self.clock = self.clock.saturating_add(ticks);
        if self.stack.is_time_varying() {
            self.mark_all();
        }
    }

    /// Monotonic version of the array's physical state. Two equal epochs
    /// guarantee no read-current-affecting mutation happened in between.
    pub fn state_epoch(&self) -> u64 {
        self.state_epoch.get()
    }

    /// Cache maintenance counters accumulated since construction.
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.stats.get()
    }

    /// Reads accumulated by one wordline since its last refresh (zero unless
    /// a read-disturb model is configured).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for a bad row.
    pub fn row_reads(&self, row: usize) -> Result<u64> {
        self.check_row(row)?;
        Ok(self.row_reads.get(row))
    }

    fn bump_epoch(&self) {
        self.state_epoch.set(self.state_epoch.get() + 1);
    }

    fn mark_all(&mut self) {
        *self.dirty.get_mut() = DirtyState::All;
        self.bump_epoch();
    }

    fn mark_cell(&mut self, index: usize) {
        self.dirty
            .get_mut()
            .mark_cell(index, self.layout.cells(), self.layout.columns());
        self.bump_epoch();
    }

    /// Registers one read of `row` for the disturb model; a tier crossing
    /// makes the row's conductances stale.
    fn note_row_read(&self, row: usize) {
        if !self.stack.tracks_reads() {
            return;
        }
        let (before, after) = self.row_reads.bump(row);
        if self.stack.read_tier(before) != self.stack.read_tier(after) {
            self.dirty
                .borrow_mut()
                .mark_row(row, self.layout.cells(), self.layout.columns());
            self.bump_epoch();
        }
    }

    /// The non-ideality evaluation context of one cell.
    fn cell_context(&self, row: usize, column: usize, cell: &Cell) -> CellContext {
        CellContext {
            row,
            column,
            rows: self.layout.rows(),
            columns: self.layout.columns(),
            age_ticks: self.clock.saturating_sub(cell.programmed_at()),
            disturb_pulses: cell.disturb_pulses(),
            row_reads: self.row_reads.get(row),
        }
    }

    /// The single per-cell evaluation point: `(on, off)` read currents under
    /// the configured non-ideality stack. Cache builds, partial refreshes
    /// and the uncached reference oracles all funnel through this function,
    /// so cached and reference reads can never diverge. An ideal stack takes
    /// the unshifted fast path, which is bit-identical to evaluating with a
    /// zero shift and a unit current factor.
    fn evaluate_cell(&self, row: usize, column: usize) -> (f64, f64) {
        let cell = &self.cells[row * self.layout.columns() + column];
        if self.stack.is_ideal() {
            return (cell.read_current_on(), cell.read_current_off());
        }
        let ctx = self.cell_context(row, column, cell);
        let shift = self.stack.vth_shift(&ctx);
        let v_drain = self.programmer.params().v_drain_read;
        let on = cell.device().read_current_on_shifted(shift);
        let off = cell.device().read_current_off_shifted(shift);
        (
            on * self.stack.current_factor(&ctx, on, v_drain),
            off * self.stack.current_factor(&ctx, off, v_drain),
        )
    }

    /// Brings the conductance cache up to the current state epoch: a sparse
    /// patch when the dirty set is sparse (recompute the dirty cells, then
    /// re-accumulate the touched rows' off-sums in full column order — bit
    /// identical to a full rebuild), a full rebuild otherwise.
    fn ensure_cache(&self) {
        if self.cache_epoch.get() == self.state_epoch.get() && self.cache.borrow().is_some() {
            return;
        }
        let columns = self.layout.columns();
        let mut slot = self.cache.borrow_mut();
        let mut dirty = self.dirty.borrow_mut();
        let mut stats = self.stats.get();
        let patched = match (slot.as_mut(), &mut *dirty) {
            (Some(cache), DirtyState::Sparse { cells, rows }) => {
                rows.sort_unstable();
                rows.dedup();
                cells.sort_unstable();
                cells.dedup();
                let mut recomputed = 0u64;
                let mut touched_rows = rows.clone();
                for &row in rows.iter() {
                    for column in 0..columns {
                        let (on, off) = self.evaluate_cell(row, column);
                        cache.refresh_cell(row, column, on, off);
                        recomputed += 1;
                    }
                }
                for &index in cells.iter() {
                    let row = index / columns;
                    if rows.binary_search(&row).is_ok() {
                        continue; // already refreshed with its whole row
                    }
                    let column = index % columns;
                    let (on, off) = self.evaluate_cell(row, column);
                    cache.refresh_cell(row, column, on, off);
                    recomputed += 1;
                    touched_rows.push(row);
                }
                touched_rows.sort_unstable();
                touched_rows.dedup();
                for &row in &touched_rows {
                    cache.recompute_row_off_sum(row);
                }
                stats.partial_refreshes += 1;
                stats.cells_recomputed += recomputed;
                true
            }
            _ => false,
        };
        if !patched {
            *slot = Some(ConductanceCache::build_with(
                self.layout.rows(),
                columns,
                |row, column| self.evaluate_cell(row, column),
            ));
            stats.full_rebuilds += 1;
            stats.cells_recomputed += self.layout.cells() as u64;
        }
        self.stats.set(stats);
        *dirty = DirtyState::Clean;
        self.cache_epoch.set(self.state_epoch.get());
    }

    /// Runs `reader` against an up-to-date conductance cache.
    fn with_cache<T>(&self, reader: impl FnOnce(&ConductanceCache) -> T) -> T {
        self.ensure_cache();
        let slot = self.cache.borrow();
        reader(slot.as_ref().expect("cache ensured"))
    }

    fn cell_index(&self, row: usize, column: usize) -> Result<usize> {
        if row >= self.layout.rows() || column >= self.layout.columns() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        Ok(row * self.layout.columns() + column)
    }

    /// Borrow a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside
    /// the array.
    pub fn cell(&self, row: usize, column: usize) -> Result<&Cell> {
        let index = self.cell_index(row, column)?;
        Ok(&self.cells[index])
    }

    /// Mutably borrow a cell.
    ///
    /// Only the touched cell is marked stale, so the next read recomputes
    /// one cell (plus its row's off-sum), not the whole array.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside
    /// the array.
    pub fn cell_mut(&mut self, row: usize, column: usize) -> Result<&mut Cell> {
        let index = self.cell_index(row, column)?;
        self.mark_cell(index);
        Ok(&mut self.cells[index])
    }

    /// Programs one cell to a multi-level state.
    ///
    /// With [`ProgrammingMode::PulseTrain`] the other cells of the same column
    /// absorb half-bias disturb pulses, mirroring the physical write scheme.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for bad coordinates and
    /// propagates device errors for unreachable levels.
    pub fn program_cell(
        &mut self,
        row: usize,
        column: usize,
        level: usize,
        mode: ProgrammingMode,
    ) -> Result<()> {
        let index = self.cell_index(row, column)?;
        let state = match mode {
            ProgrammingMode::Ideal => {
                let state = if self.cells[index].is_stuck() {
                    // A stuck stack does not respond to the write; the target
                    // state is still resolved for bookkeeping and energy.
                    self.programmer.state_for_level(level)?
                } else {
                    self.programmer
                        .program_ideal(self.cells[index].device_mut(), level)?
                };
                self.mark_cell(index);
                state
            }
            ProgrammingMode::PulseTrain => {
                let state = if self.cells[index].is_stuck() {
                    // The train is still driven onto the wordline (so the
                    // column neighbours absorb disturb below), but the stuck
                    // stack's polarization does not move.
                    self.programmer.state_for_level(level)?
                } else {
                    self.programmer
                        .program_with_pulses(self.cells[index].device_mut(), level)?
                };
                // Unselected rows of the same column see V_w/2 pulses.
                let scheme = self.write_scheme;
                let pulses = u64::from(state.write_config.pulse_count) + 1;
                for other_row in 0..self.layout.rows() {
                    if other_row == row {
                        continue;
                    }
                    let other_index = self.cell_index(other_row, column)?;
                    scheme.apply_disturb(&mut self.cells[other_index], pulses);
                    self.mark_cell(other_index);
                }
                self.mark_cell(index);
                state
            }
        };
        let clock = self.clock;
        self.cells[index].set_programmed_level(level);
        self.cells[index].reset_disturb();
        self.cells[index].set_programmed_at(clock);
        self.write_energy += self.programmer.write_energy(state.level)?;
        Ok(())
    }

    /// Programs the whole array from a level matrix
    /// (`levels[row][column] = Some(level)` or `None` to leave the cell erased).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when the matrix shape does
    /// not match the layout, and propagates programming errors.
    pub fn program_matrix(
        &mut self,
        levels: &[Vec<Option<usize>>],
        mode: ProgrammingMode,
    ) -> Result<()> {
        if levels.len() != self.layout.rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row: levels.len(),
                column: 0,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        for (row, row_levels) in levels.iter().enumerate() {
            if row_levels.len() != self.layout.columns() {
                return Err(CrossbarError::IndexOutOfBounds {
                    row,
                    column: row_levels.len(),
                    rows: self.layout.rows(),
                    columns: self.layout.columns(),
                });
            }
            for (column, level) in row_levels.iter().enumerate() {
                if let Some(level) = level {
                    self.program_cell(row, column, *level, mode)?;
                }
            }
        }
        Ok(())
    }

    /// Applies threshold-voltage variation to every cell.
    pub fn apply_variation<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        self.mark_all();
        for cell in &mut self.cells {
            let offset = variation.sample_offset(rng);
            cell.device_mut().set_vth_offset(offset);
        }
    }

    fn check_activation(&self, activation: &Activation) -> Result<()> {
        if activation.total_columns() != self.layout.columns() {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: self.layout.columns(),
                found: activation.total_columns(),
            });
        }
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.layout.rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column: 0,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        Ok(())
    }

    /// Accumulated current of one wordline for an activation pattern, in
    /// amperes: the row's off-state leakage plus the on/off delta of every
    /// activated column, served from the conductance cache. Counts as one
    /// read of the wordline for the disturb model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the activation
    /// was built for a different layout and
    /// [`CrossbarError::IndexOutOfBounds`] for a bad row.
    pub fn wordline_current(&self, row: usize, activation: &Activation) -> Result<f64> {
        self.check_activation(activation)?;
        self.check_row(row)?;
        self.note_row_read(row);
        Ok(self.with_cache(|cache| cache.wordline_current(row, activation)))
    }

    /// Accumulated currents of every wordline for an activation pattern,
    /// written into `out` (cleared first). This is the allocation-free read
    /// used by the batched inference path; it counts as one read of every
    /// wordline for the disturb model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the activation
    /// was built for a different layout.
    pub fn wordline_currents_into(
        &self,
        activation: &Activation,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_activation(activation)?;
        out.clear();
        out.reserve(self.layout.rows());
        for row in 0..self.layout.rows() {
            self.note_row_read(row);
        }
        self.with_cache(|cache| {
            for row in 0..self.layout.rows() {
                out.push(cache.wordline_current(row, activation));
            }
        });
        Ok(())
    }

    /// Accumulated wordline currents for a whole group of activation
    /// patterns, written into `out` (cleared first) read after read:
    /// `out[read * rows + row]` is the current of `row` under
    /// `activations[read]`. Without a read-disturb model the conductance
    /// cache is borrowed **once** for the whole group; with one, each read
    /// registers its wordline reads and re-checks the cache first, so a
    /// mid-batch tier crossing is reflected exactly as it would be by
    /// sequential [`CrossbarArray::wordline_currents_into`] calls — batched
    /// and sequential reads stay bit-identical in every configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when any
    /// activation was built for a different layout (before any current is
    /// written).
    pub fn wordline_currents_batch_into(
        &self,
        activations: &[Activation],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        for activation in activations {
            self.check_activation(activation)?;
        }
        let rows = self.layout.rows();
        out.clear();
        out.reserve(rows * activations.len());
        if !self.stack.tracks_reads() {
            self.with_cache(|cache| {
                for activation in activations {
                    for row in 0..rows {
                        out.push(cache.wordline_current(row, activation));
                    }
                }
            });
            return Ok(());
        }
        for activation in activations {
            for row in 0..rows {
                self.note_row_read(row);
            }
            self.with_cache(|cache| {
                for row in 0..rows {
                    out.push(cache.wordline_current(row, activation));
                }
            });
        }
        Ok(())
    }

    /// Accumulated currents of every wordline for an activation pattern.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`CrossbarArray::wordline_currents_into`].
    pub fn wordline_currents(&self, activation: &Activation) -> Result<Vec<f64>> {
        let mut currents = Vec::with_capacity(self.layout.rows());
        self.wordline_currents_into(activation, &mut currents)?;
        Ok(currents)
    }

    /// Uncached single-wordline read: evaluates the FeFET I-V model — with
    /// the configured non-ideality stack — for every cell of the row on
    /// every call, accumulating in the exact same order as the cached sparse
    /// path: off-state leakage in column order, then the activated deltas in
    /// the committed 4-lane order (see [`crate::cache`]'s module docs). This
    /// is the reference oracle for the equivalence property tests; it does
    /// **not** register wordline reads, so calling it right after a cached
    /// read observes the same read history and returns bit-identical
    /// currents.
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::wordline_current`].
    pub fn wordline_current_reference(&self, row: usize, activation: &Activation) -> Result<f64> {
        self.check_activation(activation)?;
        self.check_row(row)?;
        let columns = self.layout.columns();
        let mut current = 0.0;
        let mut deltas = Vec::with_capacity(columns);
        for column in 0..columns {
            let (on, off) = self.evaluate_cell(row, column);
            current += off;
            deltas.push(on - off);
        }
        Ok(current + lane_delta_sum(&deltas, activation.active_columns()))
    }

    /// Uncached all-wordline read (see
    /// [`CrossbarArray::wordline_current_reference`]).
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::wordline_currents`].
    pub fn wordline_currents_reference(&self, activation: &Activation) -> Result<Vec<f64>> {
        (0..self.layout.rows())
            .map(|row| self.wordline_current_reference(row, activation))
            .collect()
    }

    /// Validates the per-slot bit offsets of a packed read against the
    /// activation they annotate.
    fn check_bit_offsets(activation: &Activation, bit_offsets: &[u8]) -> Result<()> {
        if bit_offsets.len() != activation.len() {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: activation.len(),
                found: bit_offsets.len(),
            });
        }
        Ok(())
    }

    /// Per-plane partial sums of one packed bit-plane read, written into
    /// `out` (cleared first) as `out[row * planes + plane]`: each activated
    /// column's effective on-current is digitized through `ladder` into its
    /// multi-level state, and plane `q` counts the activated columns whose
    /// state has bit `bit_offsets[slot] + q` set, in the committed 4-lane
    /// summation order (see [`crate::cache`]'s module docs).
    /// `bit_offsets[slot]` annotates `activation.active_columns()[slot]`
    /// with the bit position of that column's selected digit.
    ///
    /// `level_scratch` is the caller's reusable digitizing buffer; the
    /// partials are exact integers in `f64`, ready for the sensing chain's
    /// shift-add merge. Counts as one read of every wordline for the
    /// disturb model, exactly like
    /// [`CrossbarArray::wordline_currents_into`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the
    /// activation was built for a different layout or `bit_offsets` does not
    /// annotate every activated column.
    pub fn plane_partial_sums_into(
        &self,
        activation: &Activation,
        bit_offsets: &[u8],
        planes: usize,
        ladder: &LevelLadder,
        level_scratch: &mut Vec<usize>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_activation(activation)?;
        Self::check_bit_offsets(activation, bit_offsets)?;
        let rows = self.layout.rows();
        out.clear();
        out.reserve(rows * planes);
        for row in 0..rows {
            self.note_row_read(row);
        }
        self.with_cache(|cache| {
            for row in 0..rows {
                row_plane_partials(
                    |column| cache.on_current(row, column),
                    activation.active_columns(),
                    bit_offsets,
                    planes,
                    ladder,
                    level_scratch,
                    out,
                );
            }
        });
        Ok(())
    }

    /// Uncached packed read: evaluates the FeFET I-V model — with the
    /// configured non-ideality stack — for every activated cell on every
    /// call and digitizes through the same ladder and summation order as
    /// [`CrossbarArray::plane_partial_sums_into`]. The reference oracle for
    /// the packed-read equivalence tests; does **not** register wordline
    /// reads.
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::plane_partial_sums_into`].
    pub fn plane_partial_sums_reference(
        &self,
        activation: &Activation,
        bit_offsets: &[u8],
        planes: usize,
        ladder: &LevelLadder,
    ) -> Result<Vec<f64>> {
        self.check_activation(activation)?;
        Self::check_bit_offsets(activation, bit_offsets)?;
        let rows = self.layout.rows();
        let mut out = Vec::with_capacity(rows * planes);
        let mut level_scratch = Vec::with_capacity(activation.len());
        for row in 0..rows {
            row_plane_partials(
                |column| self.evaluate_cell(row, column).0,
                activation.active_columns(),
                bit_offsets,
                planes,
                ladder,
                &mut level_scratch,
                &mut out,
            );
        }
        Ok(out)
    }

    /// Packed partial sums for a whole group of reads, written into `out`
    /// (cleared first) read after read:
    /// `out[(read * rows + row) * planes + plane]`. `bit_offsets` holds the
    /// per-read offset slices concatenated in read order. The cache-borrow
    /// and disturb-registration split mirrors
    /// [`CrossbarArray::wordline_currents_batch_into`], so batched packed
    /// reads stay bit-identical to sequential
    /// [`CrossbarArray::plane_partial_sums_into`] calls in every
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when any
    /// activation was built for a different layout or `bit_offsets` does
    /// not annotate exactly the activated columns of every read (before any
    /// partial is written).
    pub fn plane_partial_sums_batch_into(
        &self,
        activations: &[Activation],
        bit_offsets: &[u8],
        planes: usize,
        ladder: &LevelLadder,
        level_scratch: &mut Vec<usize>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let mut total = 0usize;
        for activation in activations {
            self.check_activation(activation)?;
            total += activation.len();
        }
        if bit_offsets.len() != total {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: total,
                found: bit_offsets.len(),
            });
        }
        let rows = self.layout.rows();
        out.clear();
        out.reserve(rows * planes * activations.len());
        if !self.stack.tracks_reads() {
            self.with_cache(|cache| {
                let mut cursor = 0usize;
                for activation in activations {
                    let offsets = &bit_offsets[cursor..cursor + activation.len()];
                    cursor += activation.len();
                    for row in 0..rows {
                        row_plane_partials(
                            |column| cache.on_current(row, column),
                            activation.active_columns(),
                            offsets,
                            planes,
                            ladder,
                            level_scratch,
                            out,
                        );
                    }
                }
            });
            return Ok(());
        }
        let mut cursor = 0usize;
        for activation in activations {
            let offsets = &bit_offsets[cursor..cursor + activation.len()];
            cursor += activation.len();
            for row in 0..rows {
                self.note_row_read(row);
            }
            self.with_cache(|cache| {
                for row in 0..rows {
                    row_plane_partials(
                        |column| cache.on_current(row, column),
                        activation.active_columns(),
                        offsets,
                        planes,
                        ladder,
                        level_scratch,
                        out,
                    );
                }
            });
        }
        Ok(())
    }

    fn level_state<'a>(
        programmer: &LevelProgrammer,
        states: &'a mut Vec<Option<ProgrammedState>>,
        level: usize,
    ) -> Result<&'a ProgrammedState> {
        if level >= states.len() {
            states.resize(level + 1, None);
        }
        if states[level].is_none() {
            states[level] = Some(programmer.state_for_level(level)?);
        }
        Ok(states[level].as_ref().expect("just filled"))
    }

    /// Effective threshold error of one programmed cell, in volts: the
    /// stack's time/history-dependent shift plus the polarization deviation
    /// from the level target expressed through the threshold window.
    fn effective_shift(
        &self,
        row: usize,
        column: usize,
        target: &ProgrammedState,
        window: f64,
    ) -> f64 {
        let cell = &self.cells[row * self.layout.columns() + column];
        let ctx = self.cell_context(row, column, cell);
        let pol_error =
            (target.polarization.value() - cell.device().polarization().value()) * window;
        self.stack.vth_shift(&ctx) + pol_error
    }

    /// The largest effective threshold error (volts) over all programmed
    /// cells — the quantity a recalibration scheduler compares against its
    /// tolerance. Cells already classified as stuck are excluded: their
    /// error is permanent by definition and belongs to the scrub/repair
    /// subsystem ([`CrossbarArray::scrub`]), not to drift recalibration.
    pub fn worst_effective_shift(&self) -> f64 {
        let window = self.programmer.params().vth_window();
        let mut states: Vec<Option<ProgrammedState>> = Vec::new();
        let mut worst = 0.0f64;
        for row in 0..self.layout.rows() {
            for column in 0..self.layout.columns() {
                let index = row * self.layout.columns() + column;
                if self.cells[index].is_stuck() {
                    continue;
                }
                let Some(level) = self.cells[index].programmed_level() else {
                    continue;
                };
                let target = Self::level_state(&self.programmer, &mut states, level)
                    .expect("programmed level was validated at program time")
                    .clone();
                worst = worst.max(self.effective_shift(row, column, &target, window).abs());
            }
        }
        worst
    }

    /// One recalibration pass: every programmed cell's effective threshold
    /// error (drift + disturb + polarization relaxation) is checked against
    /// `max_vth_shift` (volts), and any wordline holding an out-of-tolerance
    /// cell is rewritten whole — with minimal Preisach top-up pulse trains
    /// under [`ProgrammingMode::PulseTrain`] (full erase + retrain only when
    /// a cell overshot its target), or a direct state install priced at the
    /// full train under [`ProgrammingMode::Ideal`]. Refreshed rows restart
    /// their retention age, disturb counters and read counters.
    ///
    /// Recalibration writes are modelled disturb-free: a refresh pass is
    /// assumed to use a sequencing that does not half-bias neighbouring
    /// rows, so one pass cannot create the drift it is correcting.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] for a non-positive or non-finite
    /// tolerance, and propagates programming errors.
    pub fn recalibrate(
        &mut self,
        max_vth_shift: f64,
        mode: ProgrammingMode,
    ) -> Result<RefreshOutcome> {
        if !max_vth_shift.is_finite() || max_vth_shift <= 0.0 {
            return Err(CrossbarError::Device(DeviceError::InvalidParameter {
                name: "max_vth_shift",
                reason: "recalibration tolerance must be positive and finite".to_string(),
            }));
        }
        let rows = self.layout.rows();
        let columns = self.layout.columns();
        let window = self.programmer.params().vth_window();
        let energy_per_pulse = self.programmer.params().write_energy_per_pulse;
        let mut states: Vec<Option<ProgrammedState>> = Vec::new();
        let mut outcome = RefreshOutcome::default();
        for row in 0..rows {
            let mut refresh_row = false;
            for column in 0..columns {
                let index = row * columns + column;
                if self.cells[index].is_stuck() {
                    continue;
                }
                let Some(level) = self.cells[index].programmed_level() else {
                    continue;
                };
                outcome.cells_checked += 1;
                let target = Self::level_state(&self.programmer, &mut states, level)?.clone();
                if self.effective_shift(row, column, &target, window).abs() > max_vth_shift {
                    refresh_row = true;
                    break;
                }
            }
            if !refresh_row {
                continue;
            }
            outcome.rows_refreshed += 1;
            let clock = self.clock;
            for column in 0..columns {
                let index = row * columns + column;
                if self.cells[index].is_stuck() {
                    continue;
                }
                let Some(level) = self.cells[index].programmed_level() else {
                    continue;
                };
                let pulses = match mode {
                    ProgrammingMode::Ideal => {
                        let target =
                            Self::level_state(&self.programmer, &mut states, level)?.clone();
                        self.cells[index]
                            .device_mut()
                            .set_polarization(target.polarization);
                        u64::from(target.write_config.pulse_count) + 1
                    }
                    ProgrammingMode::PulseTrain => u64::from(
                        self.programmer
                            .refresh_with_pulses(self.cells[index].device_mut(), level)?,
                    ),
                };
                outcome.cells_refreshed += 1;
                outcome.pulses_applied += pulses;
                let energy = energy_per_pulse * pulses as f64;
                outcome.energy_joules += energy;
                self.write_energy += energy;
                self.cells[index].set_programmed_at(clock);
                self.cells[index].reset_disturb();
            }
            self.row_reads.reset_row(row);
            self.dirty
                .get_mut()
                .mark_row(row, self.layout.cells(), columns);
            self.bump_epoch();
        }
        Ok(outcome)
    }

    /// One BIST-style scrub pass: every programmed cell's effective
    /// threshold error is read back and compared against the program's
    /// expected signature (the memoized per-level target states — the same
    /// oracle the epoch-versioned cache is built from). A cell out of
    /// signature gets one in-place rewrite attempt and is re-read; a cell
    /// that still misses its target after the rewrite is classified as
    /// permanently stuck (latching [`Cell::is_stuck`]) and reported through
    /// a [`FaultReport`] with `repaired == false`.
    ///
    /// Unlike [`CrossbarArray::recalibrate`] — which corrects *recoverable*
    /// drift row-wise and skips known-stuck cells — the scrub is purely
    /// read-driven: it checks every programmed cell including already-stuck
    /// ones, so detection never depends on the fault injector having
    /// annotated the cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::Device`] for a non-positive or non-finite
    /// tolerance, and propagates programming errors.
    pub fn scrub(&mut self, max_vth_shift: f64, mode: ProgrammingMode) -> Result<ScrubOutcome> {
        if !max_vth_shift.is_finite() || max_vth_shift <= 0.0 {
            return Err(CrossbarError::Device(DeviceError::InvalidParameter {
                name: "max_vth_shift",
                reason: "scrub tolerance must be positive and finite".to_string(),
            }));
        }
        let rows = self.layout.rows();
        let columns = self.layout.columns();
        let window = self.programmer.params().vth_window();
        let energy_per_pulse = self.programmer.params().write_energy_per_pulse;
        let mut states: Vec<Option<ProgrammedState>> = Vec::new();
        let mut outcome = ScrubOutcome::default();
        for row in 0..rows {
            let mut row_touched = false;
            for column in 0..columns {
                let index = row * columns + column;
                let Some(level) = self.cells[index].programmed_level() else {
                    continue;
                };
                outcome.cells_checked += 1;
                let target = Self::level_state(&self.programmer, &mut states, level)?.clone();
                if self.effective_shift(row, column, &target, window).abs() <= max_vth_shift {
                    continue;
                }
                // Out of signature: classify the observed state, then try one
                // in-place rewrite. A stuck stack does not respond, so the
                // guard in the device mutation is the physics, not the logic.
                let kind = if self.cells[index].device().polarization().value() >= 0.5 {
                    FaultKind::StuckProgrammed
                } else {
                    FaultKind::StuckErased
                };
                if !self.cells[index].is_stuck() {
                    let clock = self.clock;
                    let pulses = match mode {
                        ProgrammingMode::Ideal => {
                            self.cells[index]
                                .device_mut()
                                .set_polarization(target.polarization);
                            u64::from(target.write_config.pulse_count) + 1
                        }
                        ProgrammingMode::PulseTrain => u64::from(
                            self.programmer
                                .refresh_with_pulses(self.cells[index].device_mut(), level)?,
                        ),
                    };
                    outcome.pulses_applied += pulses;
                    let energy = energy_per_pulse * pulses as f64;
                    outcome.energy_joules += energy;
                    self.write_energy += energy;
                    self.cells[index].set_programmed_at(clock);
                    self.cells[index].reset_disturb();
                    // A rewrite re-settles the wordline's read history the
                    // same way a recalibration refresh does.
                    self.row_reads.reset_row(row);
                    row_touched = true;
                }
                // Re-read after the repair attempt.
                if self.effective_shift(row, column, &target, window).abs() <= max_vth_shift {
                    outcome.cells_repaired += 1;
                    outcome.reports.push(FaultReport {
                        row,
                        column,
                        kind,
                        repaired: true,
                    });
                } else {
                    outcome.stuck_cells += 1;
                    self.cells[index].set_stuck(true);
                    outcome.reports.push(FaultReport {
                        row,
                        column,
                        kind,
                        repaired: false,
                    });
                }
            }
            if row_touched {
                self.dirty
                    .get_mut()
                    .mark_row(row, self.layout.cells(), columns);
                self.bump_epoch();
            }
        }
        Ok(outcome)
    }

    /// The programmed level of every cell as a matrix (for Fig. 8(b)-style
    /// state maps).
    pub fn level_map(&self) -> Vec<Vec<Option<usize>>> {
        (0..self.layout.rows())
            .map(|row| {
                (0..self.layout.columns())
                    .map(|column| {
                        self.cell(row, column)
                            .expect("in-range indices")
                            .programmed_level()
                    })
                    .collect()
            })
            .collect()
    }

    /// The read current of every cell as a matrix, in amperes (diagnostic
    /// state map; does not count as wordline reads).
    pub fn current_map(&self) -> Vec<Vec<f64>> {
        self.with_cache(|cache| {
            (0..self.layout.rows())
                .map(|row| {
                    (0..self.layout.columns())
                        .map(|column| cache.on_current(row, column))
                        .collect()
                })
                .collect()
        })
    }

    /// The cached read current of every cell, flattened row-major into `out`
    /// (cleared first) — the allocation-reusing variant of
    /// [`CrossbarArray::current_map`].
    pub fn current_map_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.layout.cells());
        self.with_cache(|cache| {
            for row in 0..self.layout.rows() {
                for column in 0..self.layout.columns() {
                    out.push(cache.on_current(row, column));
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_device::{
        NonIdealityStack, ReadDisturb, RetentionDrift, VariationModel, WireResistance,
    };

    fn small_array() -> CrossbarArray {
        let layout = CrossbarLayout::new(2, 2, 4, true).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        CrossbarArray::new(layout, programmer)
    }

    fn noisy_stack() -> NonIdealityStack {
        NonIdealityStack::ideal()
            .with_wire(WireResistance::uniform(50.0))
            .with_drift(RetentionDrift::new(0.004, 100))
            .with_disturb(ReadDisturb::new(10, 0.001))
    }

    #[test]
    fn fresh_array_has_negligible_currents() {
        let array = small_array();
        let activation = Activation::all_columns(array.layout());
        let currents = array.wordline_currents(&activation).unwrap();
        assert_eq!(currents.len(), 2);
        for current in currents {
            assert!(current < 1e-8);
        }
    }

    #[test]
    fn programming_raises_wordline_current() {
        let mut array = small_array();
        array.program_cell(0, 1, 9, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::from_columns(array.layout(), &[1]).unwrap();
        let currents = array.wordline_currents(&activation).unwrap();
        assert!(currents[0] > 0.9e-6);
        assert!(currents[1] < 1e-8);
        assert_eq!(array.cell(0, 1).unwrap().programmed_level(), Some(9));
        assert!(array.write_energy() > 0.0);
    }

    #[test]
    fn accumulation_is_additive_across_columns() {
        let mut array = small_array();
        array.program_cell(0, 1, 4, ProgrammingMode::Ideal).unwrap();
        array.program_cell(0, 5, 9, ProgrammingMode::Ideal).unwrap();
        let single_a = array
            .wordline_current(0, &Activation::from_columns(array.layout(), &[1]).unwrap())
            .unwrap();
        let single_b = array
            .wordline_current(0, &Activation::from_columns(array.layout(), &[5]).unwrap())
            .unwrap();
        let both = array
            .wordline_current(
                0,
                &Activation::from_columns(array.layout(), &[1, 5]).unwrap(),
            )
            .unwrap();
        // The off-state leakage of the remaining columns is shared between the
        // measurements, so additivity holds to well below one percent.
        let expected = single_a + single_b;
        assert!((both - expected).abs() / expected < 1e-2);
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut array = small_array();
        assert!(array.cell(5, 0).is_err());
        assert!(array.cell(0, 99).is_err());
        assert!(array.program_cell(5, 0, 1, ProgrammingMode::Ideal).is_err());
        assert!(array
            .wordline_current(7, &Activation::all_columns(array.layout()))
            .is_err());
        assert!(array
            .wordline_current_reference(7, &Activation::all_columns(array.layout()))
            .is_err());
        assert!(array.row_reads(7).is_err());
    }

    #[test]
    fn unreachable_level_propagates_device_error() {
        let mut array = small_array();
        let err = array
            .program_cell(0, 0, 99, ProgrammingMode::Ideal)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::Device(_)));
    }

    #[test]
    fn activation_from_other_layout_rejected() {
        let array = small_array();
        let other_layout = CrossbarLayout::new(2, 3, 4, false).unwrap();
        let activation = Activation::all_columns(&other_layout);
        assert!(matches!(
            array.wordline_currents(&activation),
            Err(CrossbarError::ActivationLengthMismatch { .. })
        ));
        assert!(matches!(
            array.wordline_currents_reference(&activation),
            Err(CrossbarError::ActivationLengthMismatch { .. })
        ));
    }

    #[test]
    fn program_matrix_validates_shape() {
        let mut array = small_array();
        let wrong_rows = vec![vec![None; array.layout().columns()]];
        assert!(array
            .program_matrix(&wrong_rows, ProgrammingMode::Ideal)
            .is_err());
        let wrong_columns = vec![vec![None; 3]; array.layout().rows()];
        assert!(array
            .program_matrix(&wrong_columns, ProgrammingMode::Ideal)
            .is_err());
    }

    #[test]
    fn program_matrix_programs_and_maps_back() {
        let mut array = small_array();
        let mut levels = vec![vec![None; array.layout().columns()]; array.layout().rows()];
        levels[0][0] = Some(3);
        levels[1][8] = Some(7);
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        assert_eq!(array.level_map(), levels);
        let currents = array.current_map();
        assert!(currents[0][0] > currents[0][1]);
        assert!(currents[1][8] > currents[1][7]);
    }

    #[test]
    fn pulse_train_mode_disturbs_other_rows() {
        let mut array = small_array();
        array
            .program_cell(0, 2, 5, ProgrammingMode::PulseTrain)
            .unwrap();
        // The unselected row in the same column absorbed disturb pulses.
        assert!(array.cell(1, 2).unwrap().disturb_pulses() > 0);
        // The programmed cell's disturb counter was reset.
        assert_eq!(array.cell(0, 2).unwrap().disturb_pulses(), 0);
    }

    #[test]
    fn pulse_train_and_ideal_agree_closely() {
        let layout = CrossbarLayout::new(1, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut ideal = CrossbarArray::new(layout, programmer.clone());
        let mut pulsed = CrossbarArray::new(layout, programmer);
        ideal.program_cell(0, 0, 6, ProgrammingMode::Ideal).unwrap();
        pulsed
            .program_cell(0, 0, 6, ProgrammingMode::PulseTrain)
            .unwrap();
        let a = ideal.cell(0, 0).unwrap().read_current_on();
        let b = pulsed.cell(0, 0).unwrap().read_current_on();
        assert!((a - b).abs() / a < 0.1, "ideal {a:.3e} pulsed {b:.3e}");
    }

    #[test]
    fn variation_perturbs_read_currents() {
        let mut array = small_array();
        array.program_cell(0, 0, 5, ProgrammingMode::Ideal).unwrap();
        let nominal = array.cell(0, 0).unwrap().read_current_on();
        let variation = VariationModel::from_millivolts(45.0);
        let mut rng = VariationModel::seeded_rng(3);
        array.apply_variation(&variation, &mut rng);
        let perturbed = array.cell(0, 0).unwrap().read_current_on();
        assert_ne!(nominal, perturbed);
    }

    #[test]
    fn cached_reads_track_every_mutation_path() {
        let mut array = small_array();
        let activation = Activation::all_columns(array.layout());

        // Fresh array: warm the cache, then program and read again.
        let erased = array.wordline_currents(&activation).unwrap();
        array.program_cell(0, 3, 9, ProgrammingMode::Ideal).unwrap();
        let programmed = array.wordline_currents(&activation).unwrap();
        assert!(programmed[0] > erased[0] + 0.9e-6);
        assert_eq!(
            programmed,
            array.wordline_currents_reference(&activation).unwrap()
        );

        // Variation invalidates the cache.
        let variation = VariationModel::from_millivolts(45.0);
        let mut rng = VariationModel::seeded_rng(7);
        array.apply_variation(&variation, &mut rng);
        assert_eq!(
            array.wordline_currents(&activation).unwrap(),
            array.wordline_currents_reference(&activation).unwrap()
        );

        // Direct cell mutation through `cell_mut` invalidates the cache.
        array
            .cell_mut(0, 3)
            .unwrap()
            .device_mut()
            .set_vth_offset(0.1);
        assert_eq!(
            array.wordline_currents(&activation).unwrap(),
            array.wordline_currents_reference(&activation).unwrap()
        );
    }

    #[test]
    fn single_cell_mutation_refreshes_a_single_cell() {
        let mut array = small_array();
        let activation = Activation::all_columns(array.layout());
        array.wordline_currents(&activation).unwrap(); // warm: one full build
        let before = array.rebuild_stats();
        assert_eq!(before.full_rebuilds, 1);

        array
            .cell_mut(1, 3)
            .unwrap()
            .device_mut()
            .set_vth_offset(0.05);
        array.wordline_currents(&activation).unwrap();
        let after = array.rebuild_stats();
        assert_eq!(after.full_rebuilds, 1, "no second full rebuild");
        assert_eq!(after.partial_refreshes, before.partial_refreshes + 1);
        assert_eq!(
            after.cells_recomputed,
            before.cells_recomputed + 1,
            "exactly one cell re-evaluated"
        );
        // And the patched cache still matches the oracle bit for bit.
        assert_eq!(
            array.wordline_currents(&activation).unwrap(),
            array.wordline_currents_reference(&activation).unwrap()
        );
    }

    #[test]
    fn epoch_advances_with_every_mutation() {
        let mut array = small_array();
        let e0 = array.state_epoch();
        array.program_cell(0, 0, 3, ProgrammingMode::Ideal).unwrap();
        let e1 = array.state_epoch();
        assert!(e1 > e0);
        array.cell_mut(0, 0).unwrap();
        let e2 = array.state_epoch();
        assert!(e2 > e1);
        // Without a drift model, time does not invalidate anything.
        array.advance_time(50);
        assert_eq!(array.state_epoch(), e2);
        assert_eq!(array.clock(), 50);
        // With one, it does.
        array
            .set_non_idealities(
                NonIdealityStack::ideal().with_drift(RetentionDrift::new(0.004, 100)),
            )
            .unwrap();
        let e3 = array.state_epoch();
        assert!(e3 > e2);
        array.advance_time(50);
        assert!(array.state_epoch() > e3);
    }

    #[test]
    fn drift_lowers_read_currents_over_time() {
        let layout = CrossbarLayout::new(1, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let stack = NonIdealityStack::ideal().with_drift(RetentionDrift::new(0.010, 100));
        let mut array = CrossbarArray::with_non_idealities(layout, programmer, stack).unwrap();
        array.program_cell(0, 0, 9, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::from_columns(array.layout(), &[0]).unwrap();
        let fresh = array.wordline_current(0, &activation).unwrap();
        array.advance_time(10_000);
        let aged = array.wordline_current(0, &activation).unwrap();
        assert!(aged < fresh, "aged {aged:.3e} fresh {fresh:.3e}");
        // The cached read still matches the oracle after aging.
        assert_eq!(
            aged,
            array.wordline_current_reference(0, &activation).unwrap()
        );
    }

    #[test]
    fn read_disturb_accumulates_per_wordline() {
        let layout = CrossbarLayout::new(2, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let stack = NonIdealityStack::ideal().with_disturb(ReadDisturb::new(5, 0.005));
        let mut array = CrossbarArray::with_non_idealities(layout, programmer, stack).unwrap();
        array.program_cell(0, 0, 9, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::from_columns(array.layout(), &[0]).unwrap();
        let first = array.wordline_current(0, &activation).unwrap();
        // Hammer row 0 across a tier boundary; row 1 is never read.
        let mut last = first;
        for _ in 0..10 {
            last = array.wordline_current(0, &activation).unwrap();
        }
        assert!(last < first, "disturbed {last:.3e} first {first:.3e}");
        assert_eq!(array.row_reads(0).unwrap(), 11);
        assert_eq!(array.row_reads(1).unwrap(), 0);
        // Oracle agreement after the tier crossing.
        assert_eq!(
            last,
            array.wordline_current_reference(0, &activation).unwrap()
        );
    }

    #[test]
    fn wire_resistance_attenuates_far_cells() {
        let layout = CrossbarLayout::new(1, 2, 8, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let ideal = {
            let mut array = CrossbarArray::new(layout, programmer.clone());
            array
                .program_cell(0, 15, 9, ProgrammingMode::Ideal)
                .unwrap();
            array
        };
        let resistive = {
            let stack = NonIdealityStack::ideal().with_wire(WireResistance::uniform(200.0));
            let mut array = CrossbarArray::with_non_idealities(layout, programmer, stack).unwrap();
            array
                .program_cell(0, 15, 9, ProgrammingMode::Ideal)
                .unwrap();
            array
        };
        let activation = Activation::from_columns(&layout, &[15]).unwrap();
        let clean = ideal.wordline_current(0, &activation).unwrap();
        let dropped = resistive.wordline_current(0, &activation).unwrap();
        assert!(dropped < clean, "IR drop must attenuate: {dropped:.3e}");
        assert_eq!(
            dropped,
            resistive
                .wordline_current_reference(0, &activation)
                .unwrap()
        );
    }

    #[test]
    fn batched_reads_match_sequential_under_disturb() {
        let layout = CrossbarLayout::new(2, 2, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let stack = NonIdealityStack::ideal().with_disturb(ReadDisturb::new(3, 0.002));
        let mut batched = CrossbarArray::with_non_idealities(layout, programmer, stack).unwrap();
        let mut levels = vec![vec![None; layout.columns()]; layout.rows()];
        for (row, row_levels) in levels.iter_mut().enumerate() {
            for (column, level) in row_levels.iter_mut().enumerate() {
                *level = Some((row * 3 + column) % 10);
            }
        }
        batched
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        let sequential = batched.clone();

        let activations: Vec<Activation> = (0..8)
            .map(|i| Activation::from_observation(&layout, &[i % 4, (i + 1) % 4]).unwrap())
            .collect();
        let mut batch_out = Vec::new();
        batched
            .wordline_currents_batch_into(&activations, &mut batch_out)
            .unwrap();
        let mut seq_out = Vec::new();
        let mut scratch = Vec::new();
        for activation in &activations {
            sequential
                .wordline_currents_into(activation, &mut scratch)
                .unwrap();
            seq_out.extend_from_slice(&scratch);
        }
        // 8 reads × 3-read tiers: several tier crossings inside the batch.
        assert_eq!(batch_out, seq_out);
        assert_eq!(batched.row_reads(0).unwrap(), 8);
    }

    #[test]
    fn recalibration_restores_drifted_currents() {
        let layout = CrossbarLayout::new(2, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let stack = NonIdealityStack::ideal().with_drift(RetentionDrift::new(0.012, 100));
        let mut array = CrossbarArray::with_non_idealities(layout, programmer, stack).unwrap();
        // Program every cell: recalibration can only restore programmed
        // cells (erased cells have no target level to refresh towards).
        let levels = vec![
            vec![Some(9), Some(1), Some(2), Some(3)],
            vec![Some(4), Some(5), Some(6), Some(7)],
        ];
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        let activation = Activation::all_columns(array.layout());
        let fresh = array.wordline_currents(&activation).unwrap();

        array.advance_time(100_000);
        let aged = array.wordline_currents(&activation).unwrap();
        assert!(aged[0] < fresh[0]);
        assert!(array.worst_effective_shift() > 0.01);

        // Within-tolerance pass is a no-op.
        let lax = array.recalibrate(1.0, ProgrammingMode::Ideal).unwrap();
        assert_eq!(lax.rows_refreshed, 0);
        assert_eq!(lax.cells_refreshed, 0);

        // A tight pass rewrites both rows and restores the fresh currents.
        let energy_before = array.write_energy();
        let outcome = array.recalibrate(0.005, ProgrammingMode::Ideal).unwrap();
        assert_eq!(outcome.rows_refreshed, 2);
        assert_eq!(outcome.cells_refreshed, 8);
        assert!(outcome.pulses_applied > 0);
        assert!(outcome.energy_joules > 0.0);
        assert!(array.write_energy() > energy_before);
        let restored = array.wordline_currents(&activation).unwrap();
        assert_eq!(restored, fresh, "refresh restores the fresh read bitwise");
        assert!(array.worst_effective_shift() < 1e-12);
        // And the patched cache still matches the oracle.
        assert_eq!(
            restored,
            array.wordline_currents_reference(&activation).unwrap()
        );
    }

    #[test]
    fn pulse_train_recalibration_uses_minimal_topups() {
        let layout = CrossbarLayout::new(1, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut array = CrossbarArray::new(layout, programmer);
        array
            .program_cell(0, 0, 8, ProgrammingMode::PulseTrain)
            .unwrap();
        // Relax the polarization slightly, as accumulated disturb would.
        let pol = array.cell(0, 0).unwrap().device().polarization().value();
        array
            .cell_mut(0, 0)
            .unwrap()
            .device_mut()
            .set_polarization(febim_device::Polarization::new(pol * 0.96));
        let full_train = u64::from(
            array
                .programmer()
                .state_for_level(8)
                .unwrap()
                .write_config
                .pulse_count,
        );
        let outcome = array
            .recalibrate(0.005, ProgrammingMode::PulseTrain)
            .unwrap();
        assert_eq!(outcome.cells_refreshed, 1);
        assert!(
            outcome.pulses_applied < full_train / 4,
            "top-up {} vs full train {}",
            outcome.pulses_applied,
            full_train
        );
    }

    #[test]
    fn recalibrate_rejects_bad_tolerance() {
        let mut array = small_array();
        assert!(array.recalibrate(0.0, ProgrammingMode::Ideal).is_err());
        assert!(array.recalibrate(f64::NAN, ProgrammingMode::Ideal).is_err());
    }

    #[test]
    fn invalid_stack_rejected() {
        let layout = CrossbarLayout::new(1, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let bad = NonIdealityStack::ideal().with_wire(WireResistance {
            wordline_ohm_per_cell: f64::NAN,
            bitline_ohm_per_cell: 0.0,
        });
        assert!(CrossbarArray::with_non_idealities(layout, programmer, bad).is_err());
    }

    #[test]
    fn noisy_cached_reads_match_oracle() {
        let layout = CrossbarLayout::new(3, 2, 4, true).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut array =
            CrossbarArray::with_non_idealities(layout, programmer, noisy_stack()).unwrap();
        let mut levels = vec![vec![None; layout.columns()]; layout.rows()];
        for (row, row_levels) in levels.iter_mut().enumerate() {
            for (column, level) in row_levels.iter_mut().enumerate() {
                *level = Some((row * 5 + column) % 10);
            }
        }
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        let activation = Activation::all_columns(array.layout());
        array.advance_time(777);
        for _ in 0..25 {
            let cached = array.wordline_currents(&activation).unwrap();
            let oracle = array.wordline_currents_reference(&activation).unwrap();
            assert_eq!(cached, oracle);
        }
    }

    #[test]
    fn wordline_currents_into_reuses_the_buffer() {
        let mut array = small_array();
        array.program_cell(1, 2, 8, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::from_columns(array.layout(), &[2]).unwrap();
        let mut buffer = vec![42.0; 7];
        array
            .wordline_currents_into(&activation, &mut buffer)
            .unwrap();
        assert_eq!(buffer.len(), array.layout().rows());
        assert_eq!(buffer, array.wordline_currents(&activation).unwrap());
    }

    #[test]
    fn equality_ignores_cache_state() {
        let mut warm = small_array();
        warm.program_cell(0, 0, 5, ProgrammingMode::Ideal).unwrap();
        let mut cold = small_array();
        cold.program_cell(0, 0, 5, ProgrammingMode::Ideal).unwrap();
        // Warm one array's cache but not the other's.
        let activation = Activation::all_columns(warm.layout());
        warm.wordline_currents(&activation).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn scrub_rejects_bad_tolerance() {
        let mut array = small_array();
        assert!(array.scrub(0.0, ProgrammingMode::Ideal).is_err());
        assert!(array.scrub(-1.0, ProgrammingMode::Ideal).is_err());
        assert!(array.scrub(f64::NAN, ProgrammingMode::Ideal).is_err());
    }

    #[test]
    fn scrub_on_clean_array_is_clean() {
        let mut array = small_array();
        array.program_cell(0, 1, 9, ProgrammingMode::Ideal).unwrap();
        array.program_cell(1, 3, 4, ProgrammingMode::Ideal).unwrap();
        let outcome = array.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert!(outcome.is_clean());
        assert!(outcome.fully_repaired());
        assert_eq!(outcome.cells_checked, 2);
        assert_eq!(outcome.pulses_applied, 0);
        assert_eq!(outcome.energy_joules, 0.0);
    }

    #[test]
    fn scrub_repairs_transient_fault_bit_exactly() {
        let mut array = small_array();
        array.program_cell(0, 1, 9, ProgrammingMode::Ideal).unwrap();
        array.program_cell(1, 3, 4, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::all_columns(array.layout());
        let reference = array.wordline_currents(&activation).unwrap();

        crate::fault::apply_scheduled_fault(&mut array, 0, 1, FaultKind::StuckErased, false)
            .unwrap();
        let faulted = array.wordline_currents(&activation).unwrap();
        assert_ne!(faulted, reference);

        let outcome = array.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert!(!outcome.is_clean());
        assert!(outcome.fully_repaired());
        assert_eq!(outcome.cells_repaired, 1);
        assert_eq!(outcome.stuck_cells, 0);
        assert!(outcome.pulses_applied > 0);
        assert!(outcome.energy_joules > 0.0);
        assert_eq!(
            outcome.reports,
            vec![FaultReport {
                row: 0,
                column: 1,
                kind: FaultKind::StuckErased,
                repaired: true,
            }]
        );
        let healed = array.wordline_currents(&activation).unwrap();
        assert_eq!(healed, reference);
    }

    #[test]
    fn scrub_flags_permanent_fault_as_stuck() {
        let mut array = small_array();
        array.program_cell(0, 1, 2, ProgrammingMode::Ideal).unwrap();
        array.program_cell(1, 3, 4, ProgrammingMode::Ideal).unwrap();
        crate::fault::apply_scheduled_fault(&mut array, 0, 1, FaultKind::StuckProgrammed, true)
            .unwrap();

        let outcome = array.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert_eq!(outcome.stuck_cells, 1);
        assert_eq!(outcome.cells_repaired, 0);
        assert!(!outcome.fully_repaired());
        let unrepaired: Vec<&FaultReport> = outcome.unrepaired().collect();
        assert_eq!(unrepaired.len(), 1);
        assert_eq!(unrepaired[0].row, 0);
        assert_eq!(unrepaired[0].column, 1);
        assert_eq!(unrepaired[0].kind, FaultKind::StuckProgrammed);
        assert!(array.cell(0, 1).unwrap().is_stuck());

        // Detection is read-driven: a second scrub still checks and still
        // reports the stuck cell instead of trusting the latched flag.
        let again = array.scrub(0.05, ProgrammingMode::Ideal).unwrap();
        assert_eq!(again.cells_checked, 2);
        assert_eq!(again.stuck_cells, 1);
        assert_eq!(again.pulses_applied, 0);

        // Recalibration leaves stuck cells to the scrub/repair subsystem.
        assert_eq!(array.worst_effective_shift(), 0.0);
        let refresh = array.recalibrate(0.05, ProgrammingMode::Ideal).unwrap();
        assert_eq!(refresh.rows_refreshed, 0);
    }

    #[test]
    fn stuck_cell_ignores_programming() {
        let mut array = small_array();
        array.cell_mut(0, 1).unwrap().set_stuck(true);
        let before = array.cell(0, 1).unwrap().device().polarization().value();
        array.program_cell(0, 1, 9, ProgrammingMode::Ideal).unwrap();
        let after = array.cell(0, 1).unwrap().device().polarization().value();
        assert_eq!(before, after);
        assert_eq!(array.cell(0, 1).unwrap().programmed_level(), Some(9));
        assert!(array.write_energy() > 0.0);

        array
            .program_cell(0, 1, 9, ProgrammingMode::PulseTrain)
            .unwrap();
        let after_train = array.cell(0, 1).unwrap().device().polarization().value();
        assert_eq!(before, after_train);
        // Column neighbours still absorb the half-bias train.
        assert!(array.cell(1, 1).unwrap().disturb_pulses() > 0);
    }

    /// A 2-row array with 16-level cells, programmed so each column stores a
    /// known packed state, plus the flash-ADC ladder matching the
    /// programmer's current window.
    fn packed_array(levels: &[Vec<Option<usize>>]) -> (CrossbarArray, LevelLadder) {
        let layout = CrossbarLayout::new(2, 2, 2, false).unwrap();
        let programmer = LevelProgrammer::febim_default(16).unwrap();
        let ladder = LevelLadder::new(
            programmer.min_current(),
            programmer.max_current(),
            programmer.levels(),
        )
        .unwrap();
        let mut array = CrossbarArray::new(layout, programmer);
        array
            .program_matrix(levels, ProgrammingMode::Ideal)
            .unwrap();
        (array, ladder)
    }

    #[test]
    fn packed_partials_count_the_programmed_bits() {
        // Row 0 stores 0b0110, 0b0001, 0b1111, 0b1000; row 1 the reverse.
        let levels = vec![
            vec![Some(0b0110), Some(0b0001), Some(0b1111), Some(0b1000)],
            vec![Some(0b1000), Some(0b1111), Some(0b0001), Some(0b0110)],
        ];
        let (array, ladder) = packed_array(&levels);
        let activation = Activation::from_columns(array.layout(), &[0, 1, 2]).unwrap();
        // Column 0 contributes digit bits 2..4, columns 1 and 2 bits 0..2.
        let bit_offsets = [2, 0, 0];
        let mut scratch = Vec::new();
        let mut partials = Vec::new();
        array
            .plane_partial_sums_into(
                &activation,
                &bit_offsets,
                2,
                &ladder,
                &mut scratch,
                &mut partials,
            )
            .unwrap();
        // Row 0 plane 0: bit2(0b0110)=1, bit0(0b0001)=1, bit0(0b1111)=1.
        // Row 0 plane 1: bit3(0b0110)=0, bit1(0b0001)=0, bit1(0b1111)=1.
        // Row 1 plane 0: bit2(0b1000)=0, bit0(0b1111)=1, bit0(0b0001)=1.
        // Row 1 plane 1: bit3(0b1000)=1, bit1(0b1111)=1, bit1(0b0001)=0.
        assert_eq!(partials, vec![3.0, 1.0, 2.0, 2.0]);
        let reference = array
            .plane_partial_sums_reference(&activation, &bit_offsets, 2, &ladder)
            .unwrap();
        assert_eq!(partials, reference);
    }

    #[test]
    fn packed_partials_validate_their_inputs() {
        let levels = vec![vec![Some(1); 4]; 2];
        let (array, ladder) = packed_array(&levels);
        let activation = Activation::from_columns(array.layout(), &[0, 1]).unwrap();
        let mut scratch = Vec::new();
        let mut partials = Vec::new();
        // One offset for two activated columns.
        assert!(matches!(
            array.plane_partial_sums_into(
                &activation,
                &[0],
                2,
                &ladder,
                &mut scratch,
                &mut partials,
            ),
            Err(CrossbarError::ActivationLengthMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(array
            .plane_partial_sums_reference(&activation, &[0], 2, &ladder)
            .is_err());
        // Activation built for a different layout.
        let other_layout = CrossbarLayout::new(2, 3, 2, false).unwrap();
        let foreign = Activation::all_columns(&other_layout);
        assert!(array
            .plane_partial_sums_reference(&foreign, &[0; 6], 2, &ladder)
            .is_err());
        // Batch offsets must cover every read exactly.
        assert!(matches!(
            array.plane_partial_sums_batch_into(
                &[activation.clone(), activation],
                &[0; 3],
                2,
                &ladder,
                &mut scratch,
                &mut partials,
            ),
            Err(CrossbarError::ActivationLengthMismatch {
                expected: 4,
                found: 3
            })
        ));
    }

    #[test]
    fn noisy_packed_partials_match_the_oracle_and_register_disturb() {
        let layout = CrossbarLayout::new(2, 2, 2, false).unwrap();
        let programmer = LevelProgrammer::febim_default(16).unwrap();
        let ladder = LevelLadder::new(
            programmer.min_current(),
            programmer.max_current(),
            programmer.levels(),
        )
        .unwrap();
        let mut array =
            CrossbarArray::with_non_idealities(layout, programmer, noisy_stack()).unwrap();
        let levels = vec![
            vec![Some(3), Some(12), Some(7), Some(15)],
            vec![Some(8), Some(1), Some(14), Some(5)],
        ];
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        array.advance_time(555);
        let activation = Activation::all_columns(array.layout());
        let bit_offsets = [0u8, 2, 0, 2];
        let mut scratch = Vec::new();
        let mut partials = Vec::new();
        for _ in 0..20 {
            array
                .plane_partial_sums_into(
                    &activation,
                    &bit_offsets,
                    2,
                    &ladder,
                    &mut scratch,
                    &mut partials,
                )
                .unwrap();
            let oracle = array
                .plane_partial_sums_reference(&activation, &bit_offsets, 2, &ladder)
                .unwrap();
            assert_eq!(partials, oracle);
        }
        // Packed reads feed the read-disturb model like ordinary wordline
        // reads.
        assert_eq!(array.row_reads(0).unwrap(), 20);
    }

    #[test]
    fn batched_packed_partials_match_sequential_reads() {
        for stack in [
            NonIdealityStack::ideal(),
            NonIdealityStack::ideal().with_disturb(ReadDisturb::new(3, 0.002)),
        ] {
            let layout = CrossbarLayout::new(2, 2, 2, false).unwrap();
            let programmer = LevelProgrammer::febim_default(16).unwrap();
            let ladder = LevelLadder::new(
                programmer.min_current(),
                programmer.max_current(),
                programmer.levels(),
            )
            .unwrap();
            let mut batched =
                CrossbarArray::with_non_idealities(layout, programmer.clone(), stack).unwrap();
            let mut sequential =
                CrossbarArray::with_non_idealities(layout, programmer, stack).unwrap();
            let levels = vec![
                vec![Some(9), Some(2), Some(13), Some(6)],
                vec![Some(4), Some(11), Some(0), Some(15)],
            ];
            for array in [&mut batched, &mut sequential] {
                array
                    .program_matrix(&levels, ProgrammingMode::Ideal)
                    .unwrap();
            }
            let reads = [
                (
                    Activation::from_columns(batched.layout(), &[0, 2]).unwrap(),
                    vec![0u8, 2],
                ),
                (Activation::all_columns(batched.layout()), vec![2, 0, 2, 0]),
                (
                    Activation::from_columns(batched.layout(), &[3]).unwrap(),
                    vec![0],
                ),
            ];
            let activations: Vec<Activation> = reads.iter().map(|(a, _)| a.clone()).collect();
            let flat_offsets: Vec<u8> = reads.iter().flat_map(|(_, o)| o.clone()).collect();
            let mut scratch = Vec::new();
            let mut batch_out = Vec::new();
            batched
                .plane_partial_sums_batch_into(
                    &activations,
                    &flat_offsets,
                    2,
                    &ladder,
                    &mut scratch,
                    &mut batch_out,
                )
                .unwrap();
            let mut sequential_out = Vec::new();
            for (activation, offsets) in &reads {
                let mut one = Vec::new();
                sequential
                    .plane_partial_sums_into(
                        activation,
                        offsets,
                        2,
                        &ladder,
                        &mut scratch,
                        &mut one,
                    )
                    .unwrap();
                sequential_out.extend_from_slice(&one);
            }
            assert_eq!(batch_out, sequential_out);
            assert_eq!(
                batched.row_reads(0).unwrap(),
                sequential.row_reads(0).unwrap()
            );
        }
    }
}
