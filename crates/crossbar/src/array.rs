//! The FeFET crossbar array: programming, variation injection and wordline
//! current accumulation.

use std::cell::RefCell;

use rand::Rng;
use serde::{Deserialize, Serialize};

use febim_device::{LevelProgrammer, VariationModel};

use crate::cache::{lane_delta_sum, ConductanceCache};
use crate::cell::Cell;
use crate::errors::{CrossbarError, Result};
use crate::layout::CrossbarLayout;
use crate::read::Activation;
use crate::write::WriteScheme;

/// How cells are programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProgrammingMode {
    /// Install the exact target polarization (fast, used for large sweeps).
    #[default]
    Ideal,
    /// Apply the erase-then-pulse-train sequence through the Preisach model,
    /// including half-bias disturbance of the other cells in the column.
    PulseTrain,
}

/// A programmed FeFET crossbar.
///
/// Reads go through a lazily rebuilt conductance cache: the device I-V
/// model is evaluated once per cell after each mutation (programming,
/// variation injection or direct cell access), and every subsequent
/// [`CrossbarArray::wordline_currents`] call is a sparse accumulation over
/// the activated columns only. The uncached
/// [`CrossbarArray::wordline_currents_reference`] path re-evaluates the
/// device model on every call and serves as the equivalence oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossbarArray {
    layout: CrossbarLayout,
    programmer: LevelProgrammer,
    write_scheme: WriteScheme,
    cells: Vec<Cell>,
    write_energy: f64,
    /// Derived state: `None` means stale (rebuilt on the next read). Skipped
    /// by serialization and ignored by equality.
    #[serde(skip)]
    cache: RefCell<Option<ConductanceCache>>,
}

impl PartialEq for CrossbarArray {
    fn eq(&self, other: &Self) -> bool {
        // The conductance cache is derived state; two arrays are equal when
        // their programmed cells (and bookkeeping) are, cached or not.
        self.layout == other.layout
            && self.programmer == other.programmer
            && self.write_scheme == other.write_scheme
            && self.cells == other.cells
            && self.write_energy == other.write_energy
    }
}

impl CrossbarArray {
    /// Creates an erased crossbar with the given layout and level programmer.
    pub fn new(layout: CrossbarLayout, programmer: LevelProgrammer) -> Self {
        // Build one template cell and clone it, instead of cloning the device
        // parameter struct once per cell.
        let template = Cell::new(programmer.params().clone());
        let cells = vec![template; layout.cells()];
        Self {
            layout,
            programmer,
            write_scheme: WriteScheme::febim_default(),
            cells,
            write_energy: 0.0,
            cache: RefCell::new(None),
        }
    }

    /// Replaces the write scheme (half-bias configuration).
    pub fn set_write_scheme(&mut self, scheme: WriteScheme) {
        self.write_scheme = scheme;
    }

    /// Borrow the layout.
    pub fn layout(&self) -> &CrossbarLayout {
        &self.layout
    }

    /// Borrow the level programmer.
    pub fn programmer(&self) -> &LevelProgrammer {
        &self.programmer
    }

    /// Total write energy spent programming the array so far, in joules.
    pub fn write_energy(&self) -> f64 {
        self.write_energy
    }

    /// Marks the conductance cache stale; the next read rebuilds it.
    fn invalidate_cache(&mut self) {
        *self.cache.get_mut() = None;
    }

    /// Runs `reader` against a fresh conductance cache, rebuilding it first
    /// if any mutation happened since the last read.
    fn with_cache<T>(&self, reader: impl FnOnce(&ConductanceCache) -> T) -> T {
        let mut slot = self.cache.borrow_mut();
        let cache = slot.get_or_insert_with(|| {
            ConductanceCache::build(self.layout.rows(), self.layout.columns(), &self.cells)
        });
        reader(cache)
    }

    fn cell_index(&self, row: usize, column: usize) -> Result<usize> {
        if row >= self.layout.rows() || column >= self.layout.columns() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        Ok(row * self.layout.columns() + column)
    }

    /// Borrow a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside
    /// the array.
    pub fn cell(&self, row: usize, column: usize) -> Result<&Cell> {
        let index = self.cell_index(row, column)?;
        Ok(&self.cells[index])
    }

    /// Mutably borrow a cell.
    ///
    /// The conductance cache is invalidated up front, so any mutation made
    /// through the returned borrow is reflected by the next read.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for coordinates outside
    /// the array.
    pub fn cell_mut(&mut self, row: usize, column: usize) -> Result<&mut Cell> {
        let index = self.cell_index(row, column)?;
        self.invalidate_cache();
        Ok(&mut self.cells[index])
    }

    /// Programs one cell to a multi-level state.
    ///
    /// With [`ProgrammingMode::PulseTrain`] the other cells of the same column
    /// absorb half-bias disturb pulses, mirroring the physical write scheme.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] for bad coordinates and
    /// propagates device errors for unreachable levels.
    pub fn program_cell(
        &mut self,
        row: usize,
        column: usize,
        level: usize,
        mode: ProgrammingMode,
    ) -> Result<()> {
        let index = self.cell_index(row, column)?;
        self.invalidate_cache();
        let state = match mode {
            ProgrammingMode::Ideal => {
                let state = self
                    .programmer
                    .program_ideal(self.cells[index].device_mut(), level)?;
                state
            }
            ProgrammingMode::PulseTrain => {
                let state = self
                    .programmer
                    .program_with_pulses(self.cells[index].device_mut(), level)?;
                // Unselected rows of the same column see V_w/2 pulses.
                let scheme = self.write_scheme;
                let pulses = u64::from(state.write_config.pulse_count) + 1;
                for other_row in 0..self.layout.rows() {
                    if other_row == row {
                        continue;
                    }
                    let other_index = self.cell_index(other_row, column)?;
                    scheme.apply_disturb(&mut self.cells[other_index], pulses);
                }
                state
            }
        };
        self.cells[index].set_programmed_level(level);
        self.cells[index].reset_disturb();
        self.write_energy += self.programmer.write_energy(state.level)?;
        Ok(())
    }

    /// Programs the whole array from a level matrix
    /// (`levels[row][column] = Some(level)` or `None` to leave the cell erased).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::IndexOutOfBounds`] when the matrix shape does
    /// not match the layout, and propagates programming errors.
    pub fn program_matrix(
        &mut self,
        levels: &[Vec<Option<usize>>],
        mode: ProgrammingMode,
    ) -> Result<()> {
        if levels.len() != self.layout.rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row: levels.len(),
                column: 0,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        for (row, row_levels) in levels.iter().enumerate() {
            if row_levels.len() != self.layout.columns() {
                return Err(CrossbarError::IndexOutOfBounds {
                    row,
                    column: row_levels.len(),
                    rows: self.layout.rows(),
                    columns: self.layout.columns(),
                });
            }
            for (column, level) in row_levels.iter().enumerate() {
                if let Some(level) = level {
                    self.program_cell(row, column, *level, mode)?;
                }
            }
        }
        Ok(())
    }

    /// Applies Gaussian threshold-voltage variation to every cell.
    pub fn apply_variation<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        self.invalidate_cache();
        for cell in &mut self.cells {
            let offset = variation.sample_offset(rng);
            cell.device_mut().set_vth_offset(offset);
        }
    }

    fn check_activation(&self, activation: &Activation) -> Result<()> {
        if activation.total_columns() != self.layout.columns() {
            return Err(CrossbarError::ActivationLengthMismatch {
                expected: self.layout.columns(),
                found: activation.total_columns(),
            });
        }
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.layout.rows() {
            return Err(CrossbarError::IndexOutOfBounds {
                row,
                column: 0,
                rows: self.layout.rows(),
                columns: self.layout.columns(),
            });
        }
        Ok(())
    }

    /// Accumulated current of one wordline for an activation pattern, in
    /// amperes: the row's off-state leakage plus the on/off delta of every
    /// activated column, served from the conductance cache.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the activation
    /// was built for a different layout and
    /// [`CrossbarError::IndexOutOfBounds`] for a bad row.
    pub fn wordline_current(&self, row: usize, activation: &Activation) -> Result<f64> {
        self.check_activation(activation)?;
        self.check_row(row)?;
        Ok(self.with_cache(|cache| cache.wordline_current(row, activation)))
    }

    /// Accumulated currents of every wordline for an activation pattern,
    /// written into `out` (cleared first). This is the allocation-free read
    /// used by the batched inference path.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when the activation
    /// was built for a different layout.
    pub fn wordline_currents_into(
        &self,
        activation: &Activation,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_activation(activation)?;
        out.clear();
        out.reserve(self.layout.rows());
        self.with_cache(|cache| {
            for row in 0..self.layout.rows() {
                out.push(cache.wordline_current(row, activation));
            }
        });
        Ok(())
    }

    /// Accumulated wordline currents for a whole group of activation
    /// patterns, written into `out` (cleared first) read after read:
    /// `out[read * rows + row]` is the current of `row` under
    /// `activations[read]`. The conductance cache is borrowed **once** for
    /// the whole group, so a serving batch amortizes the cache check and
    /// borrow across all its reads; every read's currents are bit-identical
    /// to a standalone [`CrossbarArray::wordline_currents_into`] call.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationLengthMismatch`] when any
    /// activation was built for a different layout (before any current is
    /// written).
    pub fn wordline_currents_batch_into(
        &self,
        activations: &[Activation],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        for activation in activations {
            self.check_activation(activation)?;
        }
        let rows = self.layout.rows();
        out.clear();
        out.reserve(rows * activations.len());
        self.with_cache(|cache| {
            for activation in activations {
                for row in 0..rows {
                    out.push(cache.wordline_current(row, activation));
                }
            }
        });
        Ok(())
    }

    /// Accumulated currents of every wordline for an activation pattern.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`CrossbarArray::wordline_currents_into`].
    pub fn wordline_currents(&self, activation: &Activation) -> Result<Vec<f64>> {
        let mut currents = Vec::with_capacity(self.layout.rows());
        self.wordline_currents_into(activation, &mut currents)?;
        Ok(currents)
    }

    /// Uncached single-wordline read: evaluates the FeFET I-V model for every
    /// cell of the row on every call, accumulating in the exact same order as
    /// the cached sparse path — off-state leakage in column order, then the
    /// activated deltas in the committed 4-lane order (see
    /// [`crate::cache`]'s module docs). This is the reference oracle for the
    /// equivalence property tests and the "before" baseline of the perf
    /// record — results are bit-identical to
    /// [`CrossbarArray::wordline_current`] whenever the cache is fresh.
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::wordline_current`].
    pub fn wordline_current_reference(&self, row: usize, activation: &Activation) -> Result<f64> {
        self.check_activation(activation)?;
        self.check_row(row)?;
        let base = row * self.layout.columns();
        let row_cells = &self.cells[base..base + self.layout.columns()];
        let mut current = 0.0;
        for cell in row_cells {
            current += cell.read_current_off();
        }
        let deltas: Vec<f64> = row_cells
            .iter()
            .map(|cell| cell.read_current_on() - cell.read_current_off())
            .collect();
        Ok(current + lane_delta_sum(&deltas, activation.active_columns()))
    }

    /// Uncached all-wordline read (see
    /// [`CrossbarArray::wordline_current_reference`]).
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::wordline_currents`].
    pub fn wordline_currents_reference(&self, activation: &Activation) -> Result<Vec<f64>> {
        (0..self.layout.rows())
            .map(|row| self.wordline_current_reference(row, activation))
            .collect()
    }

    /// The programmed level of every cell as a matrix (for Fig. 8(b)-style
    /// state maps).
    pub fn level_map(&self) -> Vec<Vec<Option<usize>>> {
        (0..self.layout.rows())
            .map(|row| {
                (0..self.layout.columns())
                    .map(|column| {
                        self.cell(row, column)
                            .expect("in-range indices")
                            .programmed_level()
                    })
                    .collect()
            })
            .collect()
    }

    /// The read current of every cell as a matrix, in amperes.
    pub fn current_map(&self) -> Vec<Vec<f64>> {
        self.with_cache(|cache| {
            (0..self.layout.rows())
                .map(|row| {
                    (0..self.layout.columns())
                        .map(|column| cache.on_current(row, column))
                        .collect()
                })
                .collect()
        })
    }

    /// The cached read current of every cell, flattened row-major into `out`
    /// (cleared first) — the allocation-reusing variant of
    /// [`CrossbarArray::current_map`].
    pub fn current_map_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.layout.cells());
        self.with_cache(|cache| {
            for row in 0..self.layout.rows() {
                for column in 0..self.layout.columns() {
                    out.push(cache.on_current(row, column));
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_device::VariationModel;

    fn small_array() -> CrossbarArray {
        let layout = CrossbarLayout::new(2, 2, 4, true).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        CrossbarArray::new(layout, programmer)
    }

    #[test]
    fn fresh_array_has_negligible_currents() {
        let array = small_array();
        let activation = Activation::all_columns(array.layout());
        let currents = array.wordline_currents(&activation).unwrap();
        assert_eq!(currents.len(), 2);
        for current in currents {
            assert!(current < 1e-8);
        }
    }

    #[test]
    fn programming_raises_wordline_current() {
        let mut array = small_array();
        array.program_cell(0, 1, 9, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::from_columns(array.layout(), &[1]).unwrap();
        let currents = array.wordline_currents(&activation).unwrap();
        assert!(currents[0] > 0.9e-6);
        assert!(currents[1] < 1e-8);
        assert_eq!(array.cell(0, 1).unwrap().programmed_level(), Some(9));
        assert!(array.write_energy() > 0.0);
    }

    #[test]
    fn accumulation_is_additive_across_columns() {
        let mut array = small_array();
        array.program_cell(0, 1, 4, ProgrammingMode::Ideal).unwrap();
        array.program_cell(0, 5, 9, ProgrammingMode::Ideal).unwrap();
        let single_a = array
            .wordline_current(0, &Activation::from_columns(array.layout(), &[1]).unwrap())
            .unwrap();
        let single_b = array
            .wordline_current(0, &Activation::from_columns(array.layout(), &[5]).unwrap())
            .unwrap();
        let both = array
            .wordline_current(
                0,
                &Activation::from_columns(array.layout(), &[1, 5]).unwrap(),
            )
            .unwrap();
        // The off-state leakage of the remaining columns is shared between the
        // measurements, so additivity holds to well below one percent.
        let expected = single_a + single_b;
        assert!((both - expected).abs() / expected < 1e-2);
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut array = small_array();
        assert!(array.cell(5, 0).is_err());
        assert!(array.cell(0, 99).is_err());
        assert!(array.program_cell(5, 0, 1, ProgrammingMode::Ideal).is_err());
        assert!(array
            .wordline_current(7, &Activation::all_columns(array.layout()))
            .is_err());
        assert!(array
            .wordline_current_reference(7, &Activation::all_columns(array.layout()))
            .is_err());
    }

    #[test]
    fn unreachable_level_propagates_device_error() {
        let mut array = small_array();
        let err = array
            .program_cell(0, 0, 99, ProgrammingMode::Ideal)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::Device(_)));
    }

    #[test]
    fn activation_from_other_layout_rejected() {
        let array = small_array();
        let other_layout = CrossbarLayout::new(2, 3, 4, false).unwrap();
        let activation = Activation::all_columns(&other_layout);
        assert!(matches!(
            array.wordline_currents(&activation),
            Err(CrossbarError::ActivationLengthMismatch { .. })
        ));
        assert!(matches!(
            array.wordline_currents_reference(&activation),
            Err(CrossbarError::ActivationLengthMismatch { .. })
        ));
    }

    #[test]
    fn program_matrix_validates_shape() {
        let mut array = small_array();
        let wrong_rows = vec![vec![None; array.layout().columns()]];
        assert!(array
            .program_matrix(&wrong_rows, ProgrammingMode::Ideal)
            .is_err());
        let wrong_columns = vec![vec![None; 3]; array.layout().rows()];
        assert!(array
            .program_matrix(&wrong_columns, ProgrammingMode::Ideal)
            .is_err());
    }

    #[test]
    fn program_matrix_programs_and_maps_back() {
        let mut array = small_array();
        let mut levels = vec![vec![None; array.layout().columns()]; array.layout().rows()];
        levels[0][0] = Some(3);
        levels[1][8] = Some(7);
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .unwrap();
        assert_eq!(array.level_map(), levels);
        let currents = array.current_map();
        assert!(currents[0][0] > currents[0][1]);
        assert!(currents[1][8] > currents[1][7]);
    }

    #[test]
    fn pulse_train_mode_disturbs_other_rows() {
        let mut array = small_array();
        array
            .program_cell(0, 2, 5, ProgrammingMode::PulseTrain)
            .unwrap();
        // The unselected row in the same column absorbed disturb pulses.
        assert!(array.cell(1, 2).unwrap().disturb_pulses() > 0);
        // The programmed cell's disturb counter was reset.
        assert_eq!(array.cell(0, 2).unwrap().disturb_pulses(), 0);
    }

    #[test]
    fn pulse_train_and_ideal_agree_closely() {
        let layout = CrossbarLayout::new(1, 1, 4, false).unwrap();
        let programmer = LevelProgrammer::febim_default(10).unwrap();
        let mut ideal = CrossbarArray::new(layout, programmer.clone());
        let mut pulsed = CrossbarArray::new(layout, programmer);
        ideal.program_cell(0, 0, 6, ProgrammingMode::Ideal).unwrap();
        pulsed
            .program_cell(0, 0, 6, ProgrammingMode::PulseTrain)
            .unwrap();
        let a = ideal.cell(0, 0).unwrap().read_current_on();
        let b = pulsed.cell(0, 0).unwrap().read_current_on();
        assert!((a - b).abs() / a < 0.1, "ideal {a:.3e} pulsed {b:.3e}");
    }

    #[test]
    fn variation_perturbs_read_currents() {
        let mut array = small_array();
        array.program_cell(0, 0, 5, ProgrammingMode::Ideal).unwrap();
        let nominal = array.cell(0, 0).unwrap().read_current_on();
        let variation = VariationModel::from_millivolts(45.0);
        let mut rng = VariationModel::seeded_rng(3);
        array.apply_variation(&variation, &mut rng);
        let perturbed = array.cell(0, 0).unwrap().read_current_on();
        assert_ne!(nominal, perturbed);
    }

    #[test]
    fn cached_reads_track_every_mutation_path() {
        let mut array = small_array();
        let activation = Activation::all_columns(array.layout());

        // Fresh array: warm the cache, then program and read again.
        let erased = array.wordline_currents(&activation).unwrap();
        array.program_cell(0, 3, 9, ProgrammingMode::Ideal).unwrap();
        let programmed = array.wordline_currents(&activation).unwrap();
        assert!(programmed[0] > erased[0] + 0.9e-6);
        assert_eq!(
            programmed,
            array.wordline_currents_reference(&activation).unwrap()
        );

        // Variation invalidates the cache.
        let variation = VariationModel::from_millivolts(45.0);
        let mut rng = VariationModel::seeded_rng(7);
        array.apply_variation(&variation, &mut rng);
        assert_eq!(
            array.wordline_currents(&activation).unwrap(),
            array.wordline_currents_reference(&activation).unwrap()
        );

        // Direct cell mutation through `cell_mut` invalidates the cache.
        array
            .cell_mut(0, 3)
            .unwrap()
            .device_mut()
            .set_vth_offset(0.1);
        assert_eq!(
            array.wordline_currents(&activation).unwrap(),
            array.wordline_currents_reference(&activation).unwrap()
        );
    }

    #[test]
    fn wordline_currents_into_reuses_the_buffer() {
        let mut array = small_array();
        array.program_cell(1, 2, 8, ProgrammingMode::Ideal).unwrap();
        let activation = Activation::from_columns(array.layout(), &[2]).unwrap();
        let mut buffer = vec![42.0; 7];
        array
            .wordline_currents_into(&activation, &mut buffer)
            .unwrap();
        assert_eq!(buffer.len(), array.layout().rows());
        assert_eq!(buffer, array.wordline_currents(&activation).unwrap());
    }

    #[test]
    fn equality_ignores_cache_state() {
        let mut warm = small_array();
        warm.program_cell(0, 0, 5, ProgrammingMode::Ideal).unwrap();
        let mut cold = small_array();
        cold.program_cell(0, 0, 5, ProgrammingMode::Ideal).unwrap();
        // Warm one array's cache but not the other's.
        let activation = Activation::all_columns(warm.layout());
        warm.wordline_currents(&activation).unwrap();
        assert_eq!(warm, cold);
    }
}
