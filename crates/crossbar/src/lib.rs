//! # febim-crossbar
//!
//! Model of the FeBiM FeFET crossbar array (Fig. 3 of the paper): one
//! multi-level FeFET per cell, wordlines accumulating the drain currents of
//! the activated cells, a half-bias write scheme with disturb tracking, and
//! activation patterns that select the prior column plus one likelihood
//! column per evidence node.
//!
//! # Example
//!
//! ```
//! use febim_crossbar::{Activation, CrossbarArray, CrossbarLayout, ProgrammingMode};
//! use febim_device::LevelProgrammer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 2 events, 1 evidence node with 4 levels, no prior column.
//! let layout = CrossbarLayout::new(2, 1, 4, false)?;
//! let programmer = LevelProgrammer::febim_default(10)?;
//! let mut array = CrossbarArray::new(layout, programmer);
//! array.program_cell(0, 2, 9, ProgrammingMode::Ideal)?;
//! array.program_cell(1, 2, 3, ProgrammingMode::Ideal)?;
//!
//! let activation = Activation::from_observation(array.layout(), &[2])?;
//! let currents = array.wordline_currents(&activation)?;
//! assert!(currents[0] > currents[1]);
//!
//! // Batched reads reuse one activation and one current buffer: rebuild the
//! // activation in place per sample and read into the same vector. The read
//! // is served from the conductance cache — O(rows × activated columns)
//! // with no per-cell device-model evaluation.
//! let mut scratch_activation = Activation::empty(array.layout());
//! let mut scratch_currents = Vec::new();
//! for observation in [[0usize], [2], [3]] {
//!     scratch_activation.set_observation(array.layout(), &observation)?;
//!     array.wordline_currents_into(&scratch_activation, &mut scratch_currents)?;
//!     assert_eq!(scratch_currents.len(), 2);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod array;
mod cache;
pub mod cell;
pub mod errors;
pub mod fault;
pub mod layout;
pub mod read;
pub mod tiling;
pub mod write;

pub use array::{CrossbarArray, ProgrammingMode, RebuildStats, RefreshOutcome};
pub use cell::Cell;
pub use errors::{CrossbarError, Result};
pub use fault::{
    apply_fault, apply_grid_fault, apply_scheduled_fault, apply_scheduled_grid_fault, FaultKind,
    FaultModel, FaultReport, FaultSchedule, InjectedFault, ScheduledFault, ScrubOutcome,
};
pub use layout::{ColumnRole, CrossbarLayout};
pub use read::{Activation, LevelLadder};
pub use tiling::{GridRebuildStats, RegionWriteOutcome, TileGrid, TilePlan, TileShape};
pub use write::WriteScheme;

// Re-exported so downstream crates can configure arrays without a direct
// `febim-device` dependency on the non-ideality types.
pub use febim_device::{NonIdealityStack, ReadDisturb, RetentionDrift, WireResistance};

#[cfg(test)]
mod proptests {
    use super::*;
    use febim_device::{LevelProgrammer, VariationModel};
    use proptest::prelude::*;
    use rand::Rng;

    /// Programs a random level matrix (with random erased holes) drawn from
    /// the given RNG.
    fn program_random<R: Rng>(array: &mut CrossbarArray, rng: &mut R) {
        let rows = array.layout().rows();
        let columns = array.layout().columns();
        let levels: Vec<Vec<Option<usize>>> = (0..rows)
            .map(|_| {
                (0..columns)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.25 {
                            None
                        } else {
                            Some((rng.gen::<u64>() % 10) as usize)
                        }
                    })
                    .collect()
            })
            .collect();
        array
            .program_matrix(&levels, ProgrammingMode::Ideal)
            .expect("in-range levels");
    }

    /// Asserts the cached sparse read equals the uncached reference path
    /// bit-for-bit: for a sparse observation, for the all-columns stress
    /// pattern, and for every activation prefix length up to nine columns —
    /// the latter walks the 4-lane kernel through every `chunks_exact(4)`
    /// remainder case (0–3 trailing columns) on both full and partial lanes.
    fn assert_reads_match<R: Rng>(array: &CrossbarArray, rng: &mut R) {
        let nodes = array.layout().evidence_nodes();
        let levels = array.layout().evidence_levels();
        let evidence: Vec<usize> = (0..nodes)
            .map(|_| (rng.gen::<u64>() as usize) % levels)
            .collect();
        let sparse = Activation::from_observation(array.layout(), &evidence).unwrap();
        assert_eq!(
            array.wordline_currents(&sparse).unwrap(),
            array.wordline_currents_reference(&sparse).unwrap(),
        );
        let all = Activation::all_columns(array.layout());
        assert_eq!(
            array.wordline_currents(&all).unwrap(),
            array.wordline_currents_reference(&all).unwrap(),
        );
        let columns = array.layout().columns();
        for active in 0..=columns.min(9) {
            let picks: Vec<usize> = (0..active).map(|index| columns - 1 - index).collect();
            let prefix = Activation::from_columns(array.layout(), &picks).unwrap();
            assert_eq!(
                array.wordline_currents(&prefix).unwrap(),
                array.wordline_currents_reference(&prefix).unwrap(),
                "active={active}",
            );
        }
    }

    proptest! {
        /// Column index maps are a bijection between (node, level) pairs and
        /// likelihood columns.
        #[test]
        fn layout_columns_are_bijective(
            events in 1usize..8,
            nodes in 1usize..6,
            levels in 1usize..16,
            has_prior in proptest::bool::ANY,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels, has_prior).unwrap();
            let mut seen = std::collections::HashSet::new();
            for node in 0..nodes {
                for level in 0..levels {
                    let column = layout.likelihood_column(node, level).unwrap();
                    prop_assert!(column < layout.columns());
                    prop_assert!(seen.insert(column), "column {column} reused");
                    prop_assert_eq!(
                        layout.column_role(column).unwrap(),
                        ColumnRole::Likelihood { node, level }
                    );
                }
            }
            if has_prior {
                prop_assert!(!seen.contains(&0));
            }
        }

        /// Wordline currents scale monotonically with the programmed level.
        #[test]
        fn higher_levels_give_higher_currents(level_low in 0usize..9) {
            let layout = CrossbarLayout::new(1, 1, 2, false).unwrap();
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut low = CrossbarArray::new(layout, programmer.clone());
            let mut high = CrossbarArray::new(layout, programmer);
            low.program_cell(0, 0, level_low, ProgrammingMode::Ideal).unwrap();
            high.program_cell(0, 0, level_low + 1, ProgrammingMode::Ideal).unwrap();
            let activation = Activation::from_columns(low.layout(), &[0]).unwrap();
            let current_low = low.wordline_current(0, &activation).unwrap();
            let current_high = high.wordline_current(0, &activation).unwrap();
            prop_assert!(current_high > current_low);
        }

        /// Wordline accumulation equals the sum of the activated cell read
        /// currents plus negligible leakage, for arbitrary level patterns.
        #[test]
        fn accumulation_matches_cell_sum(
            levels in proptest::collection::vec(0usize..10, 1..8),
        ) {
            let nodes = levels.len();
            let layout = CrossbarLayout::new(1, nodes, 1, false).unwrap();
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut array = CrossbarArray::new(layout, programmer);
            let mut expected = 0.0;
            for (column, &level) in levels.iter().enumerate() {
                array.program_cell(0, column, level, ProgrammingMode::Ideal).unwrap();
                expected += array.cell(0, column).unwrap().read_current_on();
            }
            let activation = Activation::all_columns(array.layout());
            let measured = array.wordline_current(0, &activation).unwrap();
            prop_assert!((measured - expected).abs() / expected < 1e-6);
        }

        /// The conductance-cached sparse read path is bit-for-bit identical to
        /// the uncached dense reference path across random layouts, programs,
        /// variations, reprogramming cycles and direct cell mutations.
        #[test]
        fn cached_sparse_reads_match_reference_path(
            events in 1usize..5,
            nodes in 1usize..5,
            levels_per_node in 1usize..6,
            has_prior in proptest::bool::ANY,
            program_seed in 0u64..1_000_000,
            sigma_mv in 0.0f64..60.0,
            variation_seed in 0u64..1_000_000,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels_per_node, has_prior).unwrap();
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut array = CrossbarArray::new(layout, programmer);
            let mut rng = VariationModel::seeded_rng(program_seed);

            // Freshly programmed array.
            program_random(&mut array, &mut rng);
            assert_reads_match(&array, &mut rng);

            // After Gaussian threshold-voltage variation.
            let variation = VariationModel::from_millivolts(sigma_mv);
            let mut variation_rng = VariationModel::seeded_rng(variation_seed);
            array.apply_variation(&variation, &mut variation_rng);
            assert_reads_match(&array, &mut rng);

            // After reprogramming the whole array on top of the variation.
            program_random(&mut array, &mut rng);
            assert_reads_match(&array, &mut rng);

            // After a single-cell reprogram and a direct device mutation.
            let row = (rng.gen::<u64>() as usize) % layout.rows();
            let column = (rng.gen::<u64>() as usize) % layout.columns();
            array.program_cell(row, column, 9, ProgrammingMode::Ideal).unwrap();
            assert_reads_match(&array, &mut rng);
            array.cell_mut(row, column).unwrap().device_mut().set_vth_offset(0.02);
            assert_reads_match(&array, &mut rng);
        }

        /// The committed summation order of the sparse read kernel, pinned
        /// against an independent in-test evaluation: off currents in column
        /// order, then four delta lanes striped over the activation order,
        /// combined `((l0+l1)+(l2+l3)) + tail`. Swept over every activation
        /// length up to the full layout so all `chunks_exact(4)` remainder
        /// cases are exercised; this keeps the fast path and the reference
        /// oracle from ever drifting together.
        #[test]
        fn kernel_summation_order_is_pinned(
            events in 1usize..5,
            nodes in 1usize..4,
            levels_per_node in 1usize..5,
            has_prior in proptest::bool::ANY,
            program_seed in 0u64..1_000_000,
            sigma_mv in 0.0f64..60.0,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels_per_node, has_prior).unwrap();
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut array = CrossbarArray::new(layout, programmer);
            let mut rng = VariationModel::seeded_rng(program_seed);
            program_random(&mut array, &mut rng);
            let variation = VariationModel::from_millivolts(sigma_mv);
            array.apply_variation(&variation, &mut rng);

            let columns = layout.columns();
            for active in 0..=columns {
                // Reversed column order so activation order ≠ column order.
                let picks: Vec<usize> = (0..active).map(|index| columns - 1 - index).collect();
                let activation = Activation::from_columns(&layout, &picks).unwrap();
                let measured = array.wordline_currents(&activation).unwrap();
                for (row, &value) in measured.iter().enumerate() {
                    let mut off_sum = 0.0;
                    for column in 0..columns {
                        off_sum += array.cell(row, column).unwrap().read_current_off();
                    }
                    let deltas: Vec<f64> = picks
                        .iter()
                        .map(|&column| {
                            let cell = array.cell(row, column).unwrap();
                            cell.read_current_on() - cell.read_current_off()
                        })
                        .collect();
                    let mut lanes = [0.0f64; 4];
                    let full = active / 4 * 4;
                    for (slot, delta) in deltas[..full].iter().enumerate() {
                        lanes[slot % 4] += delta;
                    }
                    let mut tail = 0.0;
                    for delta in &deltas[full..] {
                        tail += delta;
                    }
                    let expected =
                        off_sum + (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail);
                    prop_assert_eq!(
                        value, expected,
                        "row {} with {} active columns", row, active
                    );
                }
            }
        }

        /// A tiled fabric holding the same program as a monolithic array
        /// produces bit-for-bit identical wordline currents across random
        /// layouts, tile shapes, programs and device variations, and both
        /// agree with the uncached fabric reference oracle.
        #[test]
        fn tiled_fabric_reads_match_monolithic(
            events in 1usize..7,
            nodes in 1usize..5,
            levels_per_node in 1usize..5,
            has_prior in proptest::bool::ANY,
            tile_rows in 1usize..4,
            tile_columns in 1usize..8,
            program_seed in 0u64..1_000_000,
            sigma_mv in 0.0f64..60.0,
            variation_seed in 0u64..1_000_000,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels_per_node, has_prior).unwrap();
            let shape = TileShape::new(tile_rows, tile_columns).unwrap();
            let plan = TilePlan::new(layout, shape).unwrap();
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut grid = TileGrid::new(plan, programmer.clone());
            let mut array = CrossbarArray::new(layout, programmer);

            // Identical random program on both fabrics.
            let mut rng = VariationModel::seeded_rng(program_seed);
            let levels: Vec<Vec<Option<usize>>> = (0..layout.rows())
                .map(|_| {
                    (0..layout.columns())
                        .map(|_| {
                            if rng.gen::<f64>() < 0.25 {
                                None
                            } else {
                                Some((rng.gen::<u64>() % 10) as usize)
                            }
                        })
                        .collect()
                })
                .collect();
            grid.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();
            array.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();

            let evidence: Vec<usize> = (0..nodes)
                .map(|_| (rng.gen::<u64>() as usize) % levels_per_node)
                .collect();
            let sparse = Activation::from_observation(&layout, &evidence).unwrap();
            let all = Activation::all_columns(&layout);
            for activation in [&sparse, &all] {
                let merged = grid.wordline_currents(activation).unwrap();
                prop_assert_eq!(&merged, &array.wordline_currents(activation).unwrap());
                prop_assert_eq!(&merged, &grid.wordline_currents_reference(activation).unwrap());
            }

            // Every activation length up to nine columns keeps the fabric in
            // lockstep with the monolithic array through all 4-lane
            // remainder cases.
            for active in 0..=layout.columns().min(9) {
                let picks: Vec<usize> =
                    (0..active).map(|index| layout.columns() - 1 - index).collect();
                let prefix = Activation::from_columns(&layout, &picks).unwrap();
                prop_assert_eq!(
                    grid.wordline_currents(&prefix).unwrap(),
                    array.wordline_currents(&prefix).unwrap()
                );
            }

            // Identically seeded variation keeps the fabrics in lockstep.
            let variation = VariationModel::from_millivolts(sigma_mv);
            let mut grid_rng = VariationModel::seeded_rng(variation_seed);
            let mut array_rng = VariationModel::seeded_rng(variation_seed);
            grid.apply_variation(&variation, &mut grid_rng);
            array.apply_variation(&variation, &mut array_rng);
            for activation in [&sparse, &all] {
                prop_assert_eq!(
                    grid.wordline_currents(activation).unwrap(),
                    array.wordline_currents(activation).unwrap()
                );
            }
        }

        /// Under a randomized schedule of drift ticks, reads (disturb-tier
        /// crossings), reprogramming and recalibration passes, the
        /// epoch-versioned caches of both the monolithic array and the tiled
        /// fabric stay bit-for-bit identical to the uncached reference
        /// oracles — and to each other — for every non-ideality
        /// configuration (IR-drop, retention drift, read disturb, and their
        /// composition).
        #[test]
        fn noisy_schedules_keep_caches_bit_exact(
            events in 1usize..5,
            nodes in 1usize..4,
            levels_per_node in 1usize..5,
            has_prior in proptest::bool::ANY,
            tile_rows in 1usize..3,
            tile_columns in 1usize..6,
            schedule_seed in 0u64..1_000_000,
            wire_ohm in 0.0f64..100.0,
            drift_millivolts in 0.0f64..15.0,
            reads_per_tier in 1u64..6,
            disturb_millivolts in 0.0f64..3.0,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels_per_node, has_prior).unwrap();
            let stack = NonIdealityStack::ideal()
                .with_wire(WireResistance::uniform(wire_ohm))
                .with_drift(RetentionDrift::new(drift_millivolts * 1e-3, 50))
                .with_disturb(ReadDisturb::new(reads_per_tier, disturb_millivolts * 1e-3));
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut array =
                CrossbarArray::with_non_idealities(layout, programmer.clone(), stack).unwrap();
            let plan =
                TilePlan::new(layout, TileShape::new(tile_rows, tile_columns).unwrap()).unwrap();
            let mut grid = TileGrid::with_non_idealities(plan, programmer, stack).unwrap();

            let mut rng = VariationModel::seeded_rng(schedule_seed);
            let levels: Vec<Vec<Option<usize>>> = (0..layout.rows())
                .map(|_| {
                    (0..layout.columns())
                        .map(|_| Some((rng.gen::<u64>() % 10) as usize))
                        .collect()
                })
                .collect();
            array.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();
            grid.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();

            for step in 0..10u32 {
                match rng.gen::<u64>() % 4 {
                    0 => {
                        let ticks = rng.gen::<u64>() % 500;
                        array.advance_time(ticks);
                        grid.advance_time(ticks);
                    }
                    1 => {
                        let row = (rng.gen::<u64>() as usize) % layout.rows();
                        let column = (rng.gen::<u64>() as usize) % layout.columns();
                        let level = (rng.gen::<u64>() % 10) as usize;
                        array.program_cell(row, column, level, ProgrammingMode::Ideal).unwrap();
                        grid.program_cell(row, column, level, ProgrammingMode::Ideal).unwrap();
                    }
                    2 => {
                        let a = array.recalibrate(0.02, ProgrammingMode::Ideal).unwrap();
                        let g = grid.recalibrate(0.02, ProgrammingMode::Ideal).unwrap();
                        prop_assert_eq!(a.rows_refreshed, g.rows_refreshed, "step {}", step);
                        prop_assert_eq!(a.cells_refreshed, g.cells_refreshed, "step {}", step);
                    }
                    _ => {}
                }
                let evidence: Vec<usize> = (0..nodes)
                    .map(|_| (rng.gen::<u64>() as usize) % levels_per_node)
                    .collect();
                let activation = Activation::from_observation(&layout, &evidence).unwrap();
                // One cached read per fabric per step: read counters advance
                // in lockstep, so cached, reference and cross-fabric values
                // must all coincide exactly.
                let from_array = array.wordline_currents(&activation).unwrap();
                let from_grid = grid.wordline_currents(&activation).unwrap();
                prop_assert_eq!(&from_array, &from_grid, "step {}", step);
                prop_assert_eq!(
                    &from_array,
                    &array.wordline_currents_reference(&activation).unwrap(),
                    "step {}",
                    step
                );
                prop_assert_eq!(
                    &from_grid,
                    &grid.wordline_currents_reference(&activation).unwrap(),
                    "step {}",
                    step
                );
            }
        }

        /// Spare-row self-repair is read-transparent: after injecting
        /// permanent stuck-at faults at random coordinates and scrubbing, a
        /// fabric provisioned with enough spare rows serves every activation
        /// bit-identically to an unfaulted fabric holding the same program —
        /// including under a position-dependent (IR-drop) stack, because
        /// non-idealities are evaluated in logical coordinates.
        #[test]
        fn remapped_spare_reads_are_bit_identical(
            events in 1usize..6,
            nodes in 1usize..5,
            levels_per_node in 1usize..5,
            has_prior in proptest::bool::ANY,
            tile_rows in 1usize..4,
            tile_columns in 1usize..8,
            fault_seed in 0u64..1_000_000,
            wire_ohm in 0.0f64..80.0,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels_per_node, has_prior).unwrap();
            // Enough spares for the worst case: every logical row of every
            // tile remapped.
            let shape = TileShape::new(tile_rows, tile_columns)
                .unwrap()
                .with_spare_rows(tile_rows);
            let plan = TilePlan::new(layout, shape).unwrap();
            let stack = NonIdealityStack::ideal().with_wire(WireResistance::uniform(wire_ohm));
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut grid =
                TileGrid::with_non_idealities(plan, programmer.clone(), stack).unwrap();
            let mut pristine = TileGrid::with_non_idealities(
                TilePlan::new(layout, TileShape::new(tile_rows, tile_columns).unwrap()).unwrap(),
                programmer,
                stack,
            )
            .unwrap();

            let mut rng = VariationModel::seeded_rng(fault_seed);
            let levels: Vec<Vec<Option<usize>>> = (0..layout.rows())
                .map(|_| {
                    (0..layout.columns())
                        .map(|_| Some((rng.gen::<u64>() % 10) as usize))
                        .collect()
                })
                .collect();
            grid.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();
            pristine.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();

            // Permanent stuck-at faults at up to four random coordinates.
            for _ in 0..=(rng.gen::<u64>() % 4) {
                let row = (rng.gen::<u64>() as usize) % layout.rows();
                let column = (rng.gen::<u64>() as usize) % layout.columns();
                let kind = if rng.gen::<f64>() < 0.5 {
                    FaultKind::StuckErased
                } else {
                    FaultKind::StuckProgrammed
                };
                apply_scheduled_grid_fault(&mut grid, row, column, kind, true).unwrap();
            }

            // A tight tolerance: healthy cells sit exactly on target under
            // Ideal programming and a wire-only stack, while any stuck-at
            // polarization flip is macroscopic.
            let outcome = grid.scrub(1e-6, ProgrammingMode::Ideal).unwrap();
            prop_assert!(outcome.fully_repaired(), "spares were provisioned for every row");

            let all = Activation::all_columns(&layout);
            prop_assert_eq!(
                grid.wordline_currents(&all).unwrap(),
                pristine.wordline_currents(&all).unwrap()
            );
            for active in 0..=layout.columns().min(9) {
                let picks: Vec<usize> =
                    (0..active).map(|index| layout.columns() - 1 - index).collect();
                let prefix = Activation::from_columns(&layout, &picks).unwrap();
                prop_assert_eq!(
                    grid.wordline_currents(&prefix).unwrap(),
                    pristine.wordline_currents(&prefix).unwrap()
                );
            }
        }

        /// Packed bit-plane reads are bit-identical across the cached
        /// monolithic kernel, the cached tiled fabric (including through a
        /// spare-row remap after scrub), their uncached reference oracles,
        /// and an independent in-test unpack oracle computed from the public
        /// per-cell read currents — for random bit widths (1–8), plane
        /// counts, tile shapes, programs and IR-drop strengths.
        #[test]
        fn packed_plane_reads_match_unpacked_oracles(
            events in 1usize..5,
            nodes in 1usize..4,
            levels_per_node in 1usize..5,
            bits in 1u32..9,
            planes_hint in 1usize..9,
            tile_rows in 1usize..4,
            tile_columns in 1usize..8,
            program_seed in 0u64..1_000_000,
            wire_ohm in 0.0f64..80.0,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels_per_node, false).unwrap();
            let state_count = 1usize << bits;
            let programmer = LevelProgrammer::febim_default(state_count).unwrap();
            let ladder = LevelLadder::new(
                programmer.min_current(),
                programmer.max_current(),
                state_count,
            )
            .unwrap();
            let planes = planes_hint.min(bits as usize);
            let stack = NonIdealityStack::ideal().with_wire(WireResistance::uniform(wire_ohm));
            let mut array =
                CrossbarArray::with_non_idealities(layout, programmer.clone(), stack).unwrap();
            let shape = TileShape::new(tile_rows, tile_columns)
                .unwrap()
                .with_spare_rows(tile_rows);
            let plan = TilePlan::new(layout, shape).unwrap();
            let mut grid =
                TileGrid::with_non_idealities(plan, programmer.clone(), stack).unwrap();
            // An ideal-stack twin whose cell currents are publicly readable:
            // the independent unpack oracle below digitizes those directly,
            // keeping the check decoupled from the shared kernel helper.
            let mut ideal = CrossbarArray::new(layout, programmer);

            let mut rng = VariationModel::seeded_rng(program_seed);
            let levels: Vec<Vec<Option<usize>>> = (0..layout.rows())
                .map(|_| {
                    (0..layout.columns())
                        .map(|_| Some((rng.gen::<u64>() as usize) % state_count))
                        .collect()
                })
                .collect();
            array.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();
            grid.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();
            ideal.program_matrix(&levels, ProgrammingMode::Ideal).unwrap();

            // A permanent fault plus a scrub routes one wordline segment of
            // the fabric through a spare row; packed reads must not notice.
            let fault_row = (rng.gen::<u64>() as usize) % layout.rows();
            let fault_col = (rng.gen::<u64>() as usize) % layout.columns();
            apply_scheduled_grid_fault(
                &mut grid,
                fault_row,
                fault_col,
                FaultKind::StuckErased,
                true,
            )
            .unwrap();
            let outcome = grid.scrub(1e-6, ProgrammingMode::Ideal).unwrap();
            prop_assert!(outcome.fully_repaired());

            let evidence: Vec<usize> = (0..nodes)
                .map(|_| (rng.gen::<u64>() as usize) % levels_per_node)
                .collect();
            let sparse = Activation::from_observation(&layout, &evidence).unwrap();
            let all = Activation::all_columns(&layout);
            let mut scratch = Vec::new();
            let mut from_array = Vec::new();
            let mut from_grid = Vec::new();
            let mut from_ideal = Vec::new();
            for activation in [&sparse, &all] {
                let offsets: Vec<u8> = (0..activation.len())
                    .map(|_| {
                        ((rng.gen::<u64>() as usize) % (bits as usize - planes + 1)) as u8
                    })
                    .collect();
                array
                    .plane_partial_sums_into(
                        activation, &offsets, planes, &ladder, &mut scratch, &mut from_array,
                    )
                    .unwrap();
                grid.plane_partial_sums_into(
                    activation, &offsets, planes, &ladder, &mut scratch, &mut from_grid,
                )
                .unwrap();
                prop_assert_eq!(&from_array, &from_grid);
                prop_assert_eq!(
                    &from_array,
                    &array
                        .plane_partial_sums_reference(activation, &offsets, planes, &ladder)
                        .unwrap()
                );
                prop_assert_eq!(
                    &from_grid,
                    &grid
                        .plane_partial_sums_reference(activation, &offsets, planes, &ladder)
                        .unwrap()
                );
                // Independent unpack oracle (partials are exact integers, so
                // plain left-to-right accumulation must coincide exactly).
                ideal
                    .plane_partial_sums_into(
                        activation, &offsets, planes, &ladder, &mut scratch, &mut from_ideal,
                    )
                    .unwrap();
                for row in 0..layout.rows() {
                    for plane in 0..planes {
                        let mut count = 0.0;
                        for (slot, &column) in activation.active_columns().iter().enumerate() {
                            let level = ladder.level_for_current(
                                ideal.cell(row, column).unwrap().read_current_on(),
                            );
                            count +=
                                f64::from(((level >> (offsets[slot] as usize + plane)) & 1) as u32);
                        }
                        prop_assert_eq!(
                            from_ideal[row * planes + plane],
                            count,
                            "row {} plane {}",
                            row,
                            plane
                        );
                    }
                }
            }
        }

        /// The O(1) activation mask agrees with a linear scan of the column
        /// list for every column of the layout.
        #[test]
        fn activation_mask_matches_column_list(
            nodes in 1usize..8,
            levels in 1usize..6,
            has_prior in proptest::bool::ANY,
            column_seed in 0u64..1_000_000,
        ) {
            let layout = CrossbarLayout::new(2, nodes, levels, has_prior).unwrap();
            let mut rng = VariationModel::seeded_rng(column_seed);
            let picks: Vec<usize> = (0..nodes)
                .map(|_| (rng.gen::<u64>() as usize) % layout.columns())
                .collect();
            let activation = Activation::from_columns(&layout, &picks).unwrap();
            for column in 0..layout.columns() + 2 {
                prop_assert_eq!(
                    activation.is_active(column),
                    activation.active_columns().contains(&column)
                );
            }
        }
    }
}
