//! # febim-crossbar
//!
//! Model of the FeBiM FeFET crossbar array (Fig. 3 of the paper): one
//! multi-level FeFET per cell, wordlines accumulating the drain currents of
//! the activated cells, a half-bias write scheme with disturb tracking, and
//! activation patterns that select the prior column plus one likelihood
//! column per evidence node.
//!
//! # Example
//!
//! ```
//! use febim_crossbar::{Activation, CrossbarArray, CrossbarLayout, ProgrammingMode};
//! use febim_device::LevelProgrammer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 2 events, 1 evidence node with 4 levels, no prior column.
//! let layout = CrossbarLayout::new(2, 1, 4, false)?;
//! let programmer = LevelProgrammer::febim_default(10)?;
//! let mut array = CrossbarArray::new(layout, programmer);
//! array.program_cell(0, 2, 9, ProgrammingMode::Ideal)?;
//! array.program_cell(1, 2, 3, ProgrammingMode::Ideal)?;
//!
//! let activation = Activation::from_observation(array.layout(), &[2])?;
//! let currents = array.wordline_currents(&activation)?;
//! assert!(currents[0] > currents[1]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod errors;
pub mod fault;
pub mod layout;
pub mod read;
pub mod write;

pub use array::{CrossbarArray, ProgrammingMode};
pub use cell::Cell;
pub use errors::{CrossbarError, Result};
pub use fault::{apply_fault, FaultKind, FaultModel, InjectedFault};
pub use layout::{ColumnRole, CrossbarLayout};
pub use read::Activation;
pub use write::WriteScheme;

#[cfg(test)]
mod proptests {
    use super::*;
    use febim_device::LevelProgrammer;
    use proptest::prelude::*;

    proptest! {
        /// Column index maps are a bijection between (node, level) pairs and
        /// likelihood columns.
        #[test]
        fn layout_columns_are_bijective(
            events in 1usize..8,
            nodes in 1usize..6,
            levels in 1usize..16,
            has_prior in proptest::bool::ANY,
        ) {
            let layout = CrossbarLayout::new(events, nodes, levels, has_prior).unwrap();
            let mut seen = std::collections::HashSet::new();
            for node in 0..nodes {
                for level in 0..levels {
                    let column = layout.likelihood_column(node, level).unwrap();
                    prop_assert!(column < layout.columns());
                    prop_assert!(seen.insert(column), "column {column} reused");
                    prop_assert_eq!(
                        layout.column_role(column).unwrap(),
                        ColumnRole::Likelihood { node, level }
                    );
                }
            }
            if has_prior {
                prop_assert!(!seen.contains(&0));
            }
        }

        /// Wordline currents scale monotonically with the programmed level.
        #[test]
        fn higher_levels_give_higher_currents(level_low in 0usize..9) {
            let layout = CrossbarLayout::new(1, 1, 2, false).unwrap();
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut low = CrossbarArray::new(layout, programmer.clone());
            let mut high = CrossbarArray::new(layout, programmer);
            low.program_cell(0, 0, level_low, ProgrammingMode::Ideal).unwrap();
            high.program_cell(0, 0, level_low + 1, ProgrammingMode::Ideal).unwrap();
            let activation = Activation::from_columns(low.layout(), &[0]).unwrap();
            let current_low = low.wordline_current(0, &activation).unwrap();
            let current_high = high.wordline_current(0, &activation).unwrap();
            prop_assert!(current_high > current_low);
        }

        /// Wordline accumulation equals the sum of the activated cell read
        /// currents plus negligible leakage, for arbitrary level patterns.
        #[test]
        fn accumulation_matches_cell_sum(
            levels in proptest::collection::vec(0usize..10, 1..8),
        ) {
            let nodes = levels.len();
            let layout = CrossbarLayout::new(1, nodes, 1, false).unwrap();
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut array = CrossbarArray::new(layout, programmer);
            let mut expected = 0.0;
            for (column, &level) in levels.iter().enumerate() {
                array.program_cell(0, column, level, ProgrammingMode::Ideal).unwrap();
                expected += array.cell(0, column).unwrap().read_current_on();
            }
            let activation = Activation::all_columns(array.layout());
            let measured = array.wordline_current(0, &activation).unwrap();
            prop_assert!((measured - expected).abs() / expected < 1e-6);
        }
    }
}
