//! Error types for the FeFET crossbar model.

use std::error::Error;
use std::fmt;

use febim_device::DeviceError;

/// Errors produced by crossbar construction, programming and read operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossbarError {
    /// A row or column index is outside the array.
    IndexOutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        column: usize,
        /// Array row count.
        rows: usize,
        /// Array column count.
        columns: usize,
    },
    /// The layout parameters are degenerate (zero rows, nodes or levels).
    InvalidLayout {
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// An evidence value refers to a node or level outside the layout.
    InvalidEvidence {
        /// Evidence node index.
        node: usize,
        /// Discretized evidence level.
        level: usize,
    },
    /// An observation carries the wrong number of evidence values for the
    /// layout (one per evidence node is required).
    EvidenceCountMismatch {
        /// Number of evidence nodes in the layout.
        expected: usize,
        /// Number of evidence values provided.
        found: usize,
    },
    /// A device-level error occurred while programming or reading a cell.
    Device(DeviceError),
    /// An activation vector has the wrong length for the array.
    ActivationLengthMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Provided activation length.
        found: usize,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::IndexOutOfBounds {
                row,
                column,
                rows,
                columns,
            } => write!(f, "cell ({row}, {column}) outside {rows}x{columns} array"),
            CrossbarError::InvalidLayout { reason } => write!(f, "invalid layout: {reason}"),
            CrossbarError::InvalidEvidence { node, level } => {
                write!(f, "evidence node {node} level {level} outside the layout")
            }
            CrossbarError::EvidenceCountMismatch { expected, found } => write!(
                f,
                "observation provides {found} evidence values, layout has {expected} evidence nodes"
            ),
            CrossbarError::Device(err) => write!(f, "device error: {err}"),
            CrossbarError::ActivationLengthMismatch { expected, found } => write!(
                f,
                "activation vector has {found} entries, expected {expected}"
            ),
        }
    }
}

impl Error for CrossbarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CrossbarError::Device(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DeviceError> for CrossbarError {
    fn from(err: DeviceError) -> Self {
        CrossbarError::Device(err)
    }
}

/// Convenience result alias used throughout the crossbar crate.
pub type Result<T> = std::result::Result<T, CrossbarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CrossbarError::IndexOutOfBounds {
            row: 5,
            column: 9,
            rows: 3,
            columns: 8,
        };
        assert!(err.to_string().contains("(5, 9)"));
        assert!(CrossbarError::InvalidLayout {
            reason: "zero rows".to_string()
        }
        .to_string()
        .contains("zero rows"));
        assert!(CrossbarError::InvalidEvidence { node: 1, level: 7 }
            .to_string()
            .contains("node 1"));
        assert!(CrossbarError::EvidenceCountMismatch {
            expected: 4,
            found: 2
        }
        .to_string()
        .contains("provides 2 evidence values"));
        assert!(CrossbarError::ActivationLengthMismatch {
            expected: 10,
            found: 3
        }
        .to_string()
        .contains("expected 10"));
    }

    #[test]
    fn device_errors_convert_and_chain() {
        let device_err = DeviceError::TooManyLevels {
            requested: 20,
            supported: 10,
        };
        let err: CrossbarError = device_err.clone().into();
        assert!(err.to_string().contains("device error"));
        assert!(Error::source(&err).is_some());
        assert_eq!(err, CrossbarError::Device(device_err));
    }
}
