//! Device-level energy bookkeeping (write and read contributions).

use serde::{Deserialize, Serialize};

use crate::params::FeFetParams;

/// Aggregated energy spent on a device or group of devices, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy dissipated by ferroelectric switching during writes, in joules.
    pub write: f64,
    /// Energy dissipated by the channel during reads, in joules.
    pub read: f64,
}

impl EnergyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.write + self.read
    }

    /// Adds another breakdown component-wise.
    pub fn accumulate(&mut self, other: EnergyBreakdown) {
        self.write += other.write;
        self.read += other.read;
    }
}

/// Write energy (joules) for a pulse train of `pulse_count` nominal pulses
/// plus the preceding erase pulse.
pub fn write_energy(params: &FeFetParams, pulse_count: u32) -> f64 {
    params.write_energy_per_pulse * (pulse_count as f64 + 1.0)
}

/// Read energy (joules) dissipated in the channel when a cell conducts
/// `current` amperes from a drain bias of `v_drain` volts for `duration`
/// seconds.
pub fn read_energy(current: f64, v_drain: f64, duration: f64) -> f64 {
    (current * v_drain * duration).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_energy_counts_erase_pulse() {
        let params = FeFetParams::febim_calibrated();
        let one = write_energy(&params, 0);
        assert!((one - params.write_energy_per_pulse).abs() < 1e-24);
        let many = write_energy(&params, 69);
        assert!((many - 70.0 * params.write_energy_per_pulse).abs() < 1e-24);
    }

    #[test]
    fn read_energy_is_product_of_terms() {
        let e = read_energy(1.0e-6, 0.1, 1.0e-9);
        assert!((e - 1.0e-16).abs() < 1e-26);
    }

    #[test]
    fn read_energy_never_negative() {
        assert_eq!(read_energy(-1.0e-6, 0.1, 1.0e-9), 0.0);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut acc = EnergyBreakdown::new();
        acc.accumulate(EnergyBreakdown {
            write: 1e-15,
            read: 2e-16,
        });
        acc.accumulate(EnergyBreakdown {
            write: 3e-15,
            read: 1e-16,
        });
        assert!((acc.write - 4e-15).abs() < 1e-24);
        assert!((acc.read - 3e-16).abs() < 1e-24);
        assert!((acc.total() - 4.3e-15).abs() < 1e-24);
    }
}
