//! The multi-level FeFET device: polarization state, threshold voltage and
//! drain-source current model.
//!
//! The channel current uses a smooth EKV-like interpolation between the
//! subthreshold exponential and the square-law saturation region, which keeps
//! the model monotone and differentiable across the whole gate-voltage sweep
//! used to reproduce Fig. 1(c).

use serde::{Deserialize, Serialize};

use crate::params::FeFetParams;
use crate::preisach::{Polarization, PreisachModel, Pulse};

/// One FeFET storage device.
///
/// A device owns its polarization state and an additive threshold-voltage
/// offset that models device-to-device variation (see
/// [`crate::variation::VariationModel`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeFet {
    params: FeFetParams,
    polarization: Polarization,
    vth_offset: f64,
}

impl FeFet {
    /// Creates a freshly erased device with the given parameters.
    ///
    /// # Examples
    ///
    /// ```
    /// use febim_device::{FeFet, FeFetParams};
    ///
    /// let device = FeFet::new(FeFetParams::febim_calibrated());
    /// assert!(device.vth() > 1.0); // erased devices sit at the high-V_TH state
    /// ```
    pub fn new(params: FeFetParams) -> Self {
        Self {
            params,
            polarization: Polarization::ERASED,
            vth_offset: 0.0,
        }
    }

    /// Creates a device with an explicit polarization state.
    pub fn with_polarization(params: FeFetParams, polarization: Polarization) -> Self {
        Self {
            params,
            polarization,
            vth_offset: 0.0,
        }
    }

    /// Borrow the device parameters.
    pub fn params(&self) -> &FeFetParams {
        &self.params
    }

    /// Current normalized polarization state.
    pub fn polarization(&self) -> Polarization {
        self.polarization
    }

    /// Overwrites the polarization state directly (used by fast programming
    /// paths that precompute the target state).
    pub fn set_polarization(&mut self, polarization: Polarization) {
        self.polarization = polarization;
    }

    /// Additive threshold-voltage offset in volts (variation model).
    pub fn vth_offset(&self) -> f64 {
        self.vth_offset
    }

    /// Sets the additive threshold-voltage offset in volts.
    pub fn set_vth_offset(&mut self, offset_volts: f64) {
        self.vth_offset = offset_volts;
    }

    /// Effective threshold voltage for the current polarization state, in
    /// volts, including the variation offset.
    ///
    /// The threshold moves linearly from `vth_high` (erased) to `vth_low`
    /// (fully programmed) as polarization accumulates.
    pub fn vth(&self) -> f64 {
        let p = &self.params;
        p.vth_high - self.polarization.value() * p.vth_window() + self.vth_offset
    }

    /// Drain-source current for a gate voltage `vg`, in amperes.
    ///
    /// Uses a smooth interpolation `I = k (n V_T ln(1 + e^{(vg - vth)/(n V_T)}))²`
    /// which reduces to the square law `k (vg - vth)²` far above threshold and
    /// to an exponential subthreshold current below threshold.
    pub fn ids(&self, vg: f64) -> f64 {
        self.ids_with_vth_shift(vg, 0.0)
    }

    /// Drain-source current with an additional threshold-voltage shift, in
    /// amperes.
    ///
    /// The shift is added on top of the polarization-derived threshold and
    /// the static variation offset; time-varying non-ideality models
    /// (retention drift, read disturb) evaluate the device through this
    /// entry point. A zero shift is bit-identical to [`FeFet::ids`].
    pub fn ids_with_vth_shift(&self, vg: f64, vth_shift: f64) -> f64 {
        let p = &self.params;
        let slope = p.thermal_slope();
        let overdrive = (vg - (self.vth() + vth_shift)) / slope;
        // Numerically stable softplus.
        let softplus = if overdrive > 30.0 {
            overdrive
        } else {
            overdrive.exp().ln_1p()
        };
        let v_eff = slope * softplus;
        p.k_sat * v_eff * v_eff
    }

    /// Read current with the activation voltage `V_on` applied to the gate.
    pub fn read_current_on(&self) -> f64 {
        self.ids(self.params.v_on)
    }

    /// Leakage current with the inhibit voltage `V_off` applied to the gate.
    pub fn read_current_off(&self) -> f64 {
        self.ids(self.params.v_off)
    }

    /// Read current at `V_on` under an additional threshold shift (see
    /// [`FeFet::ids_with_vth_shift`]).
    pub fn read_current_on_shifted(&self, vth_shift: f64) -> f64 {
        self.ids_with_vth_shift(self.params.v_on, vth_shift)
    }

    /// Leakage current at `V_off` under an additional threshold shift (see
    /// [`FeFet::ids_with_vth_shift`]).
    pub fn read_current_off_shifted(&self, vth_shift: f64) -> f64 {
        self.ids_with_vth_shift(self.params.v_off, vth_shift)
    }

    /// Applies one gate pulse through the Preisach switching model.
    pub fn apply_pulse(&mut self, pulse: Pulse) {
        self.polarization = PreisachModel::apply_pulse_with(&self.params, self.polarization, pulse);
    }

    /// Applies a train of identical gate pulses.
    pub fn apply_pulse_train(&mut self, pulse: Pulse, count: u32) {
        self.polarization =
            PreisachModel::apply_pulse_train_with(&self.params, self.polarization, pulse, count);
    }

    /// Fully erases the device (nominal negative pulse).
    pub fn erase(&mut self) {
        self.apply_pulse(Pulse::nominal_erase(&self.params));
    }

    /// The threshold voltage (volts) that yields the requested read current at
    /// `V_on`, ignoring the variation offset.
    ///
    /// This inverts the saturation square law, which is accurate in the
    /// 0.1 µA – 1.0 µA read window used by the paper's mapping scheme.
    pub fn vth_for_read_current(params: &FeFetParams, target_amps: f64) -> f64 {
        let v_eff = (target_amps / params.k_sat).sqrt();
        // Invert the softplus: vg - vth = slope * ln(e^{v_eff/slope} - 1).
        let slope = params.thermal_slope();
        let x = v_eff / slope;
        let inv_softplus = if x > 30.0 { x } else { (x.exp() - 1.0).ln() };
        params.v_on - slope * inv_softplus
    }

    /// The polarization value that produces the requested threshold voltage.
    pub fn polarization_for_vth(params: &FeFetParams, vth: f64) -> Polarization {
        Polarization::new((params.vth_high - vth) / params.vth_window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> FeFet {
        FeFet::new(FeFetParams::febim_calibrated())
    }

    #[test]
    fn erased_device_sits_at_high_vth() {
        let d = device();
        assert!((d.vth() - d.params().vth_high).abs() < 1e-12);
    }

    #[test]
    fn fully_programmed_device_sits_at_low_vth() {
        let params = FeFetParams::febim_calibrated();
        let d = FeFet::with_polarization(params.clone(), Polarization::SATURATED);
        assert!((d.vth() - params.vth_low).abs() < 1e-12);
    }

    #[test]
    fn vth_decreases_monotonically_with_polarization() {
        let params = FeFetParams::febim_calibrated();
        let mut previous = f64::INFINITY;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let d = FeFet::with_polarization(params.clone(), Polarization::new(p));
            assert!(d.vth() < previous);
            previous = d.vth();
        }
    }

    #[test]
    fn ids_increases_with_gate_voltage() {
        let d = device();
        let mut previous = -1.0;
        let mut vg = -0.4;
        while vg <= 1.2 {
            let i = d.ids(vg);
            assert!(i > previous, "non-monotone at vg={vg}");
            previous = i;
            vg += 0.05;
        }
    }

    #[test]
    fn erased_device_is_cut_off_at_v_on() {
        let d = device();
        // The erased (high-V_TH) state must read far below the 0.1 µA level.
        assert!(d.read_current_on() < 1e-9);
    }

    #[test]
    fn inhibited_devices_are_cut_off_even_when_programmed() {
        let params = FeFetParams::febim_calibrated();
        let d = FeFet::with_polarization(params, Polarization::new(0.75));
        assert!(d.read_current_off() < 1e-9);
    }

    #[test]
    fn read_window_spans_point_one_to_one_microamp() {
        // The paper's mapping uses read currents between 0.1 µA and 1.0 µA.
        // Verify those currents correspond to reachable polarization states.
        let params = FeFetParams::febim_calibrated();
        for target in [0.1e-6, 0.5e-6, 1.0e-6] {
            let vth = FeFet::vth_for_read_current(&params, target);
            let pol = FeFet::polarization_for_vth(&params, vth);
            assert!(
                pol.value() > 0.0 && pol.value() < 1.0,
                "target {target} unreachable"
            );
            let d = FeFet::with_polarization(params.clone(), pol);
            let relative_error = (d.read_current_on() - target).abs() / target;
            assert!(
                relative_error < 0.02,
                "round trip error {relative_error} for target {target}"
            );
        }
    }

    #[test]
    fn vth_offset_shifts_read_current() {
        let params = FeFetParams::febim_calibrated();
        let vth = FeFet::vth_for_read_current(&params, 0.5e-6);
        let pol = FeFet::polarization_for_vth(&params, vth);
        let mut d = FeFet::with_polarization(params, pol);
        let nominal = d.read_current_on();
        d.set_vth_offset(0.045);
        assert!(d.read_current_on() < nominal);
        d.set_vth_offset(-0.045);
        assert!(d.read_current_on() > nominal);
        assert!((d.vth_offset() + 0.045).abs() < 1e-12);
    }

    #[test]
    fn pulse_train_lowers_vth_and_raises_current() {
        let mut d = device();
        let initial_vth = d.vth();
        let initial_current = d.read_current_on();
        d.apply_pulse_train(Pulse::nominal_write(d.params()), 60);
        assert!(d.vth() < initial_vth);
        assert!(d.read_current_on() > initial_current);
    }

    #[test]
    fn erase_restores_initial_state() {
        let mut d = device();
        d.apply_pulse_train(Pulse::nominal_write(d.params()), 50);
        d.erase();
        assert_eq!(d.polarization(), Polarization::ERASED);
    }

    #[test]
    fn zero_shift_is_bit_identical() {
        let params = FeFetParams::febim_calibrated();
        let d = FeFet::with_polarization(params, Polarization::new(0.6));
        for vg in [-0.5, 0.0, 0.5, 1.2] {
            assert_eq!(d.ids(vg), d.ids_with_vth_shift(vg, 0.0));
        }
        assert_eq!(d.read_current_on(), d.read_current_on_shifted(0.0));
        assert_eq!(d.read_current_off(), d.read_current_off_shifted(0.0));
        // A positive shift lowers the read current like raising V_TH does.
        assert!(d.read_current_on_shifted(0.05) < d.read_current_on());
        assert!(d.read_current_on_shifted(-0.05) > d.read_current_on());
    }

    #[test]
    fn set_polarization_round_trips() {
        let mut d = device();
        d.set_polarization(Polarization::new(0.33));
        assert!((d.polarization().value() - 0.33).abs() < 1e-12);
    }
}
