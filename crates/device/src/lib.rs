//! # febim-device
//!
//! Behavioural compact model of a multi-level-cell (MLC) ferroelectric
//! field-effect transistor (FeFET), the storage and compute device underlying
//! the FeBiM in-memory Bayesian inference engine (Li et al., DAC 2024).
//!
//! The crate provides:
//!
//! * a Preisach-style partial polarization switching model
//!   ([`PreisachModel`]) that turns gate pulse trains into accumulated
//!   polarization, reproducing the saturating multi-level programming
//!   trajectory of the paper's Fig. 1(b) and Fig. 4(b);
//! * the FeFET device itself ([`FeFet`]) with a smooth, monotone
//!   I_D-V_G model used to regenerate the multi-level transfer curves of
//!   Fig. 1(c);
//! * the level programmer ([`LevelProgrammer`]) that maps discrete states to
//!   target read currents (0.1 uA - 1.0 uA at `V_on = 0.5 V`) and the write
//!   pulse counts needed to reach them;
//! * a Gaussian threshold-voltage variation model ([`VariationModel`]) for
//!   Monte-Carlo robustness studies (Fig. 8(c));
//! * energy bookkeeping helpers ([`EnergyBreakdown`]).
//!
//! # Example
//!
//! ```
//! use febim_device::{FeFet, FeFetParams, LevelProgrammer};
//!
//! # fn main() -> Result<(), febim_device::DeviceError> {
//! // Ten-level programming across the paper's 0.1 uA - 1.0 uA read window.
//! let programmer = LevelProgrammer::febim_default(10)?;
//! let mut device = FeFet::new(FeFetParams::febim_calibrated());
//! let state = programmer.program_with_pulses(&mut device, 7)?;
//! assert!(state.write_config.pulse_count > 0);
//! assert!(device.read_current_on() > 1e-7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod energy;
pub mod errors;
pub mod fefet;
pub mod iv;
pub mod nonideality;
pub mod params;
pub mod preisach;
pub mod programming;
pub mod variation;

pub use energy::EnergyBreakdown;
pub use errors::{DeviceError, Result};
pub use fefet::FeFet;
pub use iv::{multilevel_iv_curves, IvCurve, IvPoint, SweepConfig};
pub use nonideality::{
    CellContext, NonIdeality, NonIdealityStack, ReadDisturb, RetentionDrift, WireResistance,
};
pub use params::FeFetParams;
pub use preisach::{Polarization, PreisachModel, Pulse};
pub use programming::{LevelProgrammer, ProgrammedState, WriteConfig};
pub use variation::{standard_normal, VariationModel, VthDistribution};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    proptest! {
        /// Polarization never leaves the physical range whatever pulse is applied.
        #[test]
        fn polarization_stays_physical(
            start in 0.0f64..=1.0,
            amplitude in -6.0f64..6.0,
            width in 1e-9f64..1e-6,
            count in 0u32..200,
        ) {
            let model = PreisachModel::new(FeFetParams::febim_calibrated());
            let state = model.apply_pulse_train(
                Polarization::new(start),
                Pulse::new(amplitude, width),
                count,
            );
            prop_assert!(state.value() >= 0.0);
            prop_assert!(state.value() <= 1.0);
        }

        /// Positive pulse trains are monotone: more pulses never reduce polarization.
        #[test]
        fn positive_trains_are_monotone(count in 0u32..150) {
            let model = PreisachModel::new(FeFetParams::febim_calibrated());
            let pulse = Pulse::nominal_write(model.params());
            let shorter = model.apply_pulse_train(Polarization::ERASED, pulse, count);
            let longer = model.apply_pulse_train(Polarization::ERASED, pulse, count + 1);
            prop_assert!(longer.value() >= shorter.value());
        }

        /// The I_D-V_G characteristic is monotone non-decreasing in V_G for any state.
        #[test]
        fn ids_monotone_in_gate_voltage(
            polarization in 0.0f64..=1.0,
            vg_low in -0.5f64..1.0,
            delta in 0.0f64..0.5,
        ) {
            let device = FeFet::with_polarization(
                FeFetParams::febim_calibrated(),
                Polarization::new(polarization),
            );
            let low = device.ids(vg_low);
            let high = device.ids(vg_low + delta);
            prop_assert!(high >= low);
        }

        /// Read current is monotone in the programmed level.
        #[test]
        fn read_current_monotone_in_level(level in 0usize..9) {
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut low = FeFet::new(programmer.params().clone());
            let mut high = FeFet::new(programmer.params().clone());
            programmer.program_ideal(&mut low, level).unwrap();
            programmer.program_ideal(&mut high, level + 1).unwrap();
            prop_assert!(high.read_current_on() > low.read_current_on());
        }

        /// Variation sampling stays within a few sigma almost always and is symmetric on average.
        #[test]
        fn variation_samples_are_bounded(seed in 0u64..1000) {
            let model = VariationModel::from_millivolts(45.0);
            let mut rng = VariationModel::seeded_rng(seed);
            let sample = model.sample_offset(&mut rng);
            // 8 sigma bound: astronomically unlikely to fail for a correct
            // Gaussian sampler.
            prop_assert!(sample.abs() < 8.0 * model.sigma_vth);
        }

        /// Zero-sigma variation of either family is byte-identical to having
        /// no variation model at all: every offset is exactly 0.0 and the RNG
        /// stream is left untouched.
        #[test]
        fn ideal_variation_is_byte_identical(
            seed in 0u64..1000,
            shape in 1e-6f64..2.0,
            draws in 1usize..32,
        ) {
            for model in [VariationModel::ideal(), VariationModel::lognormal(0.0, shape)] {
                let mut sampled = VariationModel::seeded_rng(seed);
                let mut untouched = VariationModel::seeded_rng(seed);
                for _ in 0..draws {
                    let offset = model.sample_offset(&mut sampled);
                    prop_assert_eq!(offset.to_bits(), 0.0f64.to_bits());
                }
                prop_assert_eq!(sampled.gen::<u64>(), untouched.gen::<u64>());
            }
        }

        /// The ideal non-ideality stack is inert for any cell context: zero
        /// threshold shift and a unit current factor, bitwise.
        #[test]
        fn ideal_stack_is_inert(
            row in 0usize..64,
            column in 0usize..64,
            age in 0u64..1_000_000,
            reads in 0u64..1_000_000,
            current in 1e-9f64..1e-5,
        ) {
            let stack = NonIdealityStack::ideal();
            let ctx = CellContext {
                row,
                column,
                rows: 64,
                columns: 64,
                age_ticks: age,
                disturb_pulses: reads / 7,
                row_reads: reads,
            };
            prop_assert_eq!(stack.vth_shift(&ctx).to_bits(), 0.0f64.to_bits());
            prop_assert_eq!(stack.current_factor(&ctx, current, 0.1).to_bits(), 1.0f64.to_bits());
        }
    }
}
