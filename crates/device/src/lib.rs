//! # febim-device
//!
//! Behavioural compact model of a multi-level-cell (MLC) ferroelectric
//! field-effect transistor (FeFET), the storage and compute device underlying
//! the FeBiM in-memory Bayesian inference engine (Li et al., DAC 2024).
//!
//! The crate provides:
//!
//! * a Preisach-style partial polarization switching model
//!   ([`PreisachModel`]) that turns gate pulse trains into accumulated
//!   polarization, reproducing the saturating multi-level programming
//!   trajectory of the paper's Fig. 1(b) and Fig. 4(b);
//! * the FeFET device itself ([`FeFet`]) with a smooth, monotone
//!   I_D-V_G model used to regenerate the multi-level transfer curves of
//!   Fig. 1(c);
//! * the level programmer ([`LevelProgrammer`]) that maps discrete states to
//!   target read currents (0.1 uA - 1.0 uA at `V_on = 0.5 V`) and the write
//!   pulse counts needed to reach them;
//! * a Gaussian threshold-voltage variation model ([`VariationModel`]) for
//!   Monte-Carlo robustness studies (Fig. 8(c));
//! * energy bookkeeping helpers ([`EnergyBreakdown`]).
//!
//! # Example
//!
//! ```
//! use febim_device::{FeFet, FeFetParams, LevelProgrammer};
//!
//! # fn main() -> Result<(), febim_device::DeviceError> {
//! // Ten-level programming across the paper's 0.1 uA - 1.0 uA read window.
//! let programmer = LevelProgrammer::febim_default(10)?;
//! let mut device = FeFet::new(FeFetParams::febim_calibrated());
//! let state = programmer.program_with_pulses(&mut device, 7)?;
//! assert!(state.write_config.pulse_count > 0);
//! assert!(device.read_current_on() > 1e-7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod energy;
pub mod errors;
pub mod fefet;
pub mod iv;
pub mod params;
pub mod preisach;
pub mod programming;
pub mod variation;

pub use energy::EnergyBreakdown;
pub use errors::{DeviceError, Result};
pub use fefet::FeFet;
pub use iv::{multilevel_iv_curves, IvCurve, IvPoint, SweepConfig};
pub use params::FeFetParams;
pub use preisach::{Polarization, PreisachModel, Pulse};
pub use programming::{LevelProgrammer, ProgrammedState, WriteConfig};
pub use variation::{standard_normal, VariationModel};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Polarization never leaves the physical range whatever pulse is applied.
        #[test]
        fn polarization_stays_physical(
            start in 0.0f64..=1.0,
            amplitude in -6.0f64..6.0,
            width in 1e-9f64..1e-6,
            count in 0u32..200,
        ) {
            let model = PreisachModel::new(FeFetParams::febim_calibrated());
            let state = model.apply_pulse_train(
                Polarization::new(start),
                Pulse::new(amplitude, width),
                count,
            );
            prop_assert!(state.value() >= 0.0);
            prop_assert!(state.value() <= 1.0);
        }

        /// Positive pulse trains are monotone: more pulses never reduce polarization.
        #[test]
        fn positive_trains_are_monotone(count in 0u32..150) {
            let model = PreisachModel::new(FeFetParams::febim_calibrated());
            let pulse = Pulse::nominal_write(model.params());
            let shorter = model.apply_pulse_train(Polarization::ERASED, pulse, count);
            let longer = model.apply_pulse_train(Polarization::ERASED, pulse, count + 1);
            prop_assert!(longer.value() >= shorter.value());
        }

        /// The I_D-V_G characteristic is monotone non-decreasing in V_G for any state.
        #[test]
        fn ids_monotone_in_gate_voltage(
            polarization in 0.0f64..=1.0,
            vg_low in -0.5f64..1.0,
            delta in 0.0f64..0.5,
        ) {
            let device = FeFet::with_polarization(
                FeFetParams::febim_calibrated(),
                Polarization::new(polarization),
            );
            let low = device.ids(vg_low);
            let high = device.ids(vg_low + delta);
            prop_assert!(high >= low);
        }

        /// Read current is monotone in the programmed level.
        #[test]
        fn read_current_monotone_in_level(level in 0usize..9) {
            let programmer = LevelProgrammer::febim_default(10).unwrap();
            let mut low = FeFet::new(programmer.params().clone());
            let mut high = FeFet::new(programmer.params().clone());
            programmer.program_ideal(&mut low, level).unwrap();
            programmer.program_ideal(&mut high, level + 1).unwrap();
            prop_assert!(high.read_current_on() > low.read_current_on());
        }

        /// Variation sampling stays within a few sigma almost always and is symmetric on average.
        #[test]
        fn variation_samples_are_bounded(seed in 0u64..1000) {
            let model = VariationModel::from_millivolts(45.0);
            let mut rng = VariationModel::seeded_rng(seed);
            let sample = model.sample_offset(&mut rng);
            // 8 sigma bound: astronomically unlikely to fail for a correct
            // Gaussian sampler.
            prop_assert!(sample.abs() < 8.0 * model.sigma_vth);
        }
    }
}
