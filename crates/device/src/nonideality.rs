//! Composable time-varying non-ideality models for FeFET crossbar reads.
//!
//! Real arrays do not read the conductances they were programmed with: wire
//! resistance along word/bitlines attenuates far cells (IR-drop), retention
//! loss shifts the threshold voltage as the ferroelectric polarization
//! relaxes over time, and repeated read stress on a wordline accumulates a
//! small disturb shift. Each effect is one [`NonIdeality`] implementation;
//! [`NonIdealityStack`] composes them into the single evaluation point the
//! crossbar crate threads through both its cached read kernel and its
//! uncached reference oracle, so the two stay bit-identical under every
//! configuration.
//!
//! All models are **deterministic functions of the cell's situation**
//! ([`CellContext`]): position in the array, ticks since the cell was last
//! programmed, absorbed half-bias disturb pulses and wordline read count.
//! Randomness stays in [`crate::VariationModel`] (static device-to-device
//! variation sampled once at programming time); the time-varying stack is
//! replayable, which is what makes epoch-versioned conductance caching
//! possible at all.

use serde::{Deserialize, Serialize};

use crate::errors::{DeviceError, Result};

/// Read-time situation of one crossbar cell, consumed by
/// [`NonIdeality`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellContext {
    /// Wordline index of the cell.
    pub row: usize,
    /// Bitline index of the cell.
    pub column: usize,
    /// Total wordlines of the (sub-)array the cell lives in.
    pub rows: usize,
    /// Total bitlines of the (sub-)array the cell lives in.
    pub columns: usize,
    /// Ticks elapsed since the cell was last programmed (retention age).
    pub age_ticks: u64,
    /// Half-bias write-disturb pulses absorbed since the last program.
    pub disturb_pulses: u64,
    /// Reads issued on the cell's wordline since its last refresh.
    pub row_reads: u64,
}

/// One pluggable non-ideality: a deterministic threshold-voltage shift
/// and/or a multiplicative current attenuation for a cell in a given
/// situation.
///
/// Implementations must return exactly `0.0` / `1.0` when the effect is
/// inactive so the ideal configuration stays bit-identical to the
/// no-non-ideality code path (`vth + 0.0` and `i * 1.0` are exact).
pub trait NonIdeality {
    /// Short human-readable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Additive threshold-voltage shift in volts for the cell.
    fn vth_shift(&self, _ctx: &CellContext) -> f64 {
        0.0
    }

    /// Multiplicative attenuation of the cell's read current.
    ///
    /// `unattenuated_amps` is the current the cell would source without this
    /// effect and `v_drain` the read drain bias, so position-dependent
    /// IR-drop models can form the voltage-divider ratio.
    fn current_factor(&self, _ctx: &CellContext, _unattenuated_amps: f64, _v_drain: f64) -> f64 {
        1.0
    }
}

/// Word/bitline wire resistance: per-position IR-drop along the array lines.
///
/// The read current of a cell at `(row, column)` flows through
/// `row + 1` bitline segments and `column + 1` wordline segments of metal
/// before reaching the sense node. To first order the series resistance `R`
/// forms a divider with the cell's own operating point, attenuating the
/// unattenuated current `I0` to `I0 / (1 + (I0 / V_drain) · R)` — far
/// corners of a large array lose the most current, exactly the
/// line-resistance effect modelled by explicit memristor crossbar engines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireResistance {
    /// Wordline metal resistance per cell pitch, in ohms.
    pub wordline_ohm_per_cell: f64,
    /// Bitline metal resistance per cell pitch, in ohms.
    pub bitline_ohm_per_cell: f64,
}

impl WireResistance {
    /// Creates a wire-resistance model; negative resistances clamp to zero.
    pub fn new(wordline_ohm_per_cell: f64, bitline_ohm_per_cell: f64) -> Self {
        Self {
            wordline_ohm_per_cell: wordline_ohm_per_cell.max(0.0),
            bitline_ohm_per_cell: bitline_ohm_per_cell.max(0.0),
        }
    }

    /// Symmetric model with the same per-cell resistance on both lines.
    pub fn uniform(ohm_per_cell: f64) -> Self {
        Self::new(ohm_per_cell, ohm_per_cell)
    }

    /// Series metal resistance seen by the cell at `(ctx.row, ctx.column)`.
    pub fn series_resistance(&self, ctx: &CellContext) -> f64 {
        self.bitline_ohm_per_cell * (ctx.row + 1) as f64
            + self.wordline_ohm_per_cell * (ctx.column + 1) as f64
    }
}

impl NonIdeality for WireResistance {
    fn name(&self) -> &'static str {
        "wire-resistance"
    }

    fn current_factor(&self, ctx: &CellContext, unattenuated_amps: f64, v_drain: f64) -> f64 {
        let resistance = self.series_resistance(ctx);
        if resistance == 0.0 || v_drain <= 0.0 || unattenuated_amps <= 0.0 {
            return 1.0;
        }
        1.0 / (1.0 + (unattenuated_amps / v_drain) * resistance)
    }
}

/// Retention drift: the programmed polarization relaxes over time, raising
/// the effective threshold voltage logarithmically in the cell's age — the
/// classic `ΔV_TH ∝ log(t)` retention trace of ferroelectric memories.
///
/// The shift scales with how many decades of `time_scale_ticks` have passed
/// since the cell was programmed; a freshly refreshed cell (age 0) is
/// exactly unshifted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionDrift {
    /// Threshold shift per decade of elapsed time, in volts.
    pub volts_per_decade: f64,
    /// Ticks that make up the first decade of the drift law.
    pub time_scale_ticks: u64,
}

impl RetentionDrift {
    /// Creates a drift model; the rate clamps to zero and the time scale to
    /// at least one tick.
    pub fn new(volts_per_decade: f64, time_scale_ticks: u64) -> Self {
        Self {
            volts_per_decade: volts_per_decade.max(0.0),
            time_scale_ticks: time_scale_ticks.max(1),
        }
    }
}

impl NonIdeality for RetentionDrift {
    fn name(&self) -> &'static str {
        "retention-drift"
    }

    fn vth_shift(&self, ctx: &CellContext) -> f64 {
        if ctx.age_ticks == 0 || self.volts_per_decade == 0.0 {
            return 0.0;
        }
        let decades = (1.0 + ctx.age_ticks as f64 / self.time_scale_ticks as f64).log10();
        self.volts_per_decade * decades
    }
}

/// Read-disturb accumulation: every read applies `V_on` gate stress to the
/// activated wordline, and over many reads the stress shifts the cells'
/// threshold voltage.
///
/// The shift is **tier-quantized**: it only changes when the wordline's
/// read count crosses a multiple of `reads_per_tier`. Between crossings the
/// shift is constant, which is what lets the epoch-versioned conductance
/// cache stay coherent — a read bumps the cache epoch only at a tier
/// boundary instead of on every single read.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadDisturb {
    /// Reads per disturb tier (cache epoch granularity).
    pub reads_per_tier: u64,
    /// Threshold shift added per completed tier, in volts.
    pub volts_per_tier: f64,
}

impl ReadDisturb {
    /// Creates a read-disturb model; the tier size clamps to at least one
    /// read and the shift to zero.
    pub fn new(reads_per_tier: u64, volts_per_tier: f64) -> Self {
        Self {
            reads_per_tier: reads_per_tier.max(1),
            volts_per_tier: volts_per_tier.max(0.0),
        }
    }

    /// The disturb tier a read count falls into.
    pub fn tier(&self, row_reads: u64) -> u64 {
        row_reads / self.reads_per_tier
    }
}

impl NonIdeality for ReadDisturb {
    fn name(&self) -> &'static str {
        "read-disturb"
    }

    fn vth_shift(&self, ctx: &CellContext) -> f64 {
        if self.volts_per_tier == 0.0 {
            return 0.0;
        }
        self.tier(ctx.row_reads) as f64 * self.volts_per_tier
    }
}

/// The composed non-ideality configuration of one array.
///
/// A concrete struct of optional models (rather than trait objects) so the
/// stack stays `Clone + PartialEq + Serialize` and the crossbar crate can
/// embed it directly in array state. Effects apply in a fixed order: all
/// threshold shifts sum, then all current factors multiply.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NonIdealityStack {
    /// Word/bitline IR-drop, if modelled.
    pub wire: Option<WireResistance>,
    /// Retention drift vs. elapsed ticks, if modelled.
    pub drift: Option<RetentionDrift>,
    /// Read-disturb accumulation per wordline read, if modelled.
    pub disturb: Option<ReadDisturb>,
}

impl NonIdealityStack {
    /// The empty stack: every read is ideal.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// Adds a wire-resistance model.
    pub fn with_wire(mut self, wire: WireResistance) -> Self {
        self.wire = Some(wire);
        self
    }

    /// Adds a retention-drift model.
    pub fn with_drift(mut self, drift: RetentionDrift) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Adds a read-disturb model.
    pub fn with_disturb(mut self, disturb: ReadDisturb) -> Self {
        self.disturb = Some(disturb);
        self
    }

    /// Whether no non-ideality is configured (the fast-path guarantee: an
    /// ideal stack never perturbs a read).
    pub fn is_ideal(&self) -> bool {
        self.wire.is_none() && self.drift.is_none() && self.disturb.is_none()
    }

    /// Whether any configured effect depends on elapsed time.
    pub fn is_time_varying(&self) -> bool {
        self.drift.is_some()
    }

    /// Whether any configured effect depends on the wordline read count.
    pub fn tracks_reads(&self) -> bool {
        self.disturb.is_some()
    }

    /// The disturb tier of a wordline read count (0 when read disturb is not
    /// modelled). Cache epochs advance when this value changes.
    pub fn read_tier(&self, row_reads: u64) -> u64 {
        self.disturb
            .as_ref()
            .map_or(0, |disturb| disturb.tier(row_reads))
    }

    /// Summed threshold-voltage shift of every configured effect, in volts.
    pub fn vth_shift(&self, ctx: &CellContext) -> f64 {
        let mut shift = 0.0;
        if let Some(drift) = &self.drift {
            shift += drift.vth_shift(ctx);
        }
        if let Some(disturb) = &self.disturb {
            shift += disturb.vth_shift(ctx);
        }
        shift
    }

    /// Product of every configured effect's current attenuation.
    pub fn current_factor(&self, ctx: &CellContext, unattenuated_amps: f64, v_drain: f64) -> f64 {
        match &self.wire {
            Some(wire) => wire.current_factor(ctx, unattenuated_amps, v_drain),
            None => 1.0,
        }
    }

    /// Validates the physical consistency of the configured models.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-finite resistances,
    /// drift rates or tier shifts.
    pub fn validate(&self) -> Result<()> {
        if let Some(wire) = &self.wire {
            if !wire.wordline_ohm_per_cell.is_finite() || !wire.bitline_ohm_per_cell.is_finite() {
                return Err(DeviceError::InvalidParameter {
                    name: "wire_resistance",
                    reason: "per-cell line resistances must be finite".to_string(),
                });
            }
            if wire.wordline_ohm_per_cell < 0.0 || wire.bitline_ohm_per_cell < 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "wire_resistance",
                    reason: "per-cell line resistances cannot be negative".to_string(),
                });
            }
        }
        if let Some(drift) = &self.drift {
            if !drift.volts_per_decade.is_finite() || drift.volts_per_decade < 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "retention_drift",
                    reason: "drift rate must be finite and non-negative".to_string(),
                });
            }
            if drift.time_scale_ticks == 0 {
                return Err(DeviceError::InvalidParameter {
                    name: "retention_drift",
                    reason: "time scale must be at least one tick".to_string(),
                });
            }
        }
        if let Some(disturb) = &self.disturb {
            if !disturb.volts_per_tier.is_finite() || disturb.volts_per_tier < 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "read_disturb",
                    reason: "tier shift must be finite and non-negative".to_string(),
                });
            }
            if disturb.reads_per_tier == 0 {
                return Err(DeviceError::InvalidParameter {
                    name: "read_disturb",
                    reason: "tier size must be at least one read".to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(row: usize, column: usize) -> CellContext {
        CellContext {
            row,
            column,
            rows: 4,
            columns: 8,
            age_ticks: 0,
            disturb_pulses: 0,
            row_reads: 0,
        }
    }

    #[test]
    fn ideal_stack_is_exactly_inert() {
        let stack = NonIdealityStack::ideal();
        assert!(stack.is_ideal());
        assert!(!stack.is_time_varying());
        assert!(!stack.tracks_reads());
        let context = ctx(3, 7);
        assert_eq!(stack.vth_shift(&context), 0.0);
        assert_eq!(stack.current_factor(&context, 1e-6, 0.1), 1.0);
        assert_eq!(stack.read_tier(1_000_000), 0);
        stack.validate().unwrap();
    }

    #[test]
    fn wire_resistance_attenuates_far_corners_more() {
        let wire = WireResistance::uniform(50.0);
        let near = wire.current_factor(&ctx(0, 0), 1e-6, 0.1);
        let far = wire.current_factor(&ctx(3, 7), 1e-6, 0.1);
        assert!(near < 1.0);
        assert!(far < near);
        // Zero current or zero resistance is exactly unattenuated.
        assert_eq!(wire.current_factor(&ctx(3, 7), 0.0, 0.1), 1.0);
        assert_eq!(
            WireResistance::uniform(0.0).current_factor(&ctx(3, 7), 1e-6, 0.1),
            1.0
        );
    }

    #[test]
    fn wire_resistance_scales_with_current() {
        // A stronger cell loses a larger fraction: the divider is nonlinear.
        let wire = WireResistance::uniform(100.0);
        let weak = wire.current_factor(&ctx(1, 1), 0.1e-6, 0.1);
        let strong = wire.current_factor(&ctx(1, 1), 1.0e-6, 0.1);
        assert!(strong < weak);
    }

    #[test]
    fn drift_grows_logarithmically_with_age() {
        let drift = RetentionDrift::new(0.010, 1_000);
        let mut context = ctx(0, 0);
        assert_eq!(drift.vth_shift(&context), 0.0);
        context.age_ticks = 1_000;
        let one_decade = drift.vth_shift(&context);
        context.age_ticks = 10_000;
        let two_decades = drift.vth_shift(&context);
        assert!(one_decade > 0.0);
        assert!(two_decades > one_decade);
        // log10(1 + 10) / log10(1 + 1) is about 3.46; a linear law would
        // grow the shift tenfold per decade.
        assert!(two_decades < 4.0 * one_decade, "log law, not linear");
    }

    #[test]
    fn read_disturb_is_tier_quantized() {
        let disturb = ReadDisturb::new(100, 0.002);
        let mut context = ctx(0, 0);
        context.row_reads = 99;
        assert_eq!(disturb.vth_shift(&context), 0.0);
        context.row_reads = 100;
        assert_eq!(disturb.vth_shift(&context), 0.002);
        context.row_reads = 199;
        assert_eq!(disturb.vth_shift(&context), 0.002);
        context.row_reads = 250;
        assert_eq!(disturb.vth_shift(&context), 2.0 * 0.002);
        assert_eq!(disturb.tier(250), 2);
    }

    #[test]
    fn stack_composes_shifts_and_factors() {
        let stack = NonIdealityStack::ideal()
            .with_wire(WireResistance::uniform(25.0))
            .with_drift(RetentionDrift::new(0.005, 100))
            .with_disturb(ReadDisturb::new(10, 0.001));
        assert!(!stack.is_ideal());
        assert!(stack.is_time_varying());
        assert!(stack.tracks_reads());
        let mut context = ctx(1, 2);
        context.age_ticks = 100;
        context.row_reads = 25;
        let shift = stack.vth_shift(&context);
        let drift_only = RetentionDrift::new(0.005, 100).vth_shift(&context);
        let disturb_only = ReadDisturb::new(10, 0.001).vth_shift(&context);
        assert_eq!(shift, drift_only + disturb_only);
        assert!(stack.current_factor(&context, 1e-6, 0.1) < 1.0);
        assert_eq!(stack.read_tier(25), 2);
        stack.validate().unwrap();
    }

    #[test]
    fn constructors_clamp_unphysical_inputs() {
        let wire = WireResistance::new(-5.0, -1.0);
        assert_eq!(wire.wordline_ohm_per_cell, 0.0);
        assert_eq!(wire.bitline_ohm_per_cell, 0.0);
        let drift = RetentionDrift::new(-0.1, 0);
        assert_eq!(drift.volts_per_decade, 0.0);
        assert_eq!(drift.time_scale_ticks, 1);
        let disturb = ReadDisturb::new(0, -1.0);
        assert_eq!(disturb.reads_per_tier, 1);
        assert_eq!(disturb.volts_per_tier, 0.0);
    }

    #[test]
    fn validation_rejects_non_finite_parameters() {
        let mut stack = NonIdealityStack::ideal().with_wire(WireResistance {
            wordline_ohm_per_cell: f64::NAN,
            bitline_ohm_per_cell: 0.0,
        });
        assert!(stack.validate().is_err());
        stack.wire = None;
        stack.drift = Some(RetentionDrift {
            volts_per_decade: f64::INFINITY,
            time_scale_ticks: 1,
        });
        assert!(stack.validate().is_err());
        stack.drift = Some(RetentionDrift {
            volts_per_decade: 0.01,
            time_scale_ticks: 0,
        });
        assert!(stack.validate().is_err());
        stack.drift = None;
        stack.disturb = Some(ReadDisturb {
            reads_per_tier: 0,
            volts_per_tier: 0.001,
        });
        assert!(stack.validate().is_err());
    }

    #[test]
    fn trait_objects_compose_too() {
        // The trait is object-safe so custom effects can be prototyped
        // outside the built-in stack.
        let effects: Vec<Box<dyn NonIdeality>> = vec![
            Box::new(WireResistance::uniform(10.0)),
            Box::new(RetentionDrift::new(0.01, 100)),
            Box::new(ReadDisturb::new(50, 0.001)),
        ];
        let mut context = ctx(2, 3);
        context.age_ticks = 500;
        context.row_reads = 120;
        let shift: f64 = effects.iter().map(|e| e.vth_shift(&context)).sum();
        assert!(shift > 0.0);
        assert_eq!(effects[0].name(), "wire-resistance");
        assert_eq!(effects[1].name(), "retention-drift");
        assert_eq!(effects[2].name(), "read-disturb");
    }
}
