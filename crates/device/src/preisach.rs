//! Preisach-style partial polarization switching model.
//!
//! The ferroelectric layer of a FeFET is modelled as an ensemble of
//! independent switching domains. Applying a positive gate pulse flips a
//! fraction of the domains that are still pointing towards the gate metal;
//! the flipped fraction per pulse grows strongly with pulse amplitude and
//! sub-linearly with pulse width. Accumulating pulses therefore produces the
//! saturating multi-level programming trajectory of Fig. 1(b) / Fig. 4(b) of
//! the FeBiM paper. A sufficiently strong negative pulse erases the device
//! back to the fully unswitched state.

use serde::{Deserialize, Serialize};

use crate::params::FeFetParams;

/// One gate voltage pulse applied to the ferroelectric gate stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pulse {
    /// Pulse amplitude in volts. Positive values program (lower V_TH),
    /// negative values erase (raise V_TH).
    pub amplitude: f64,
    /// Pulse width in seconds.
    pub width: f64,
}

impl Pulse {
    /// Creates a pulse with the given amplitude (volts) and width (seconds).
    ///
    /// # Examples
    ///
    /// ```
    /// use febim_device::Pulse;
    ///
    /// let p = Pulse::new(4.0, 300e-9);
    /// assert_eq!(p.amplitude, 4.0);
    /// ```
    pub fn new(amplitude: f64, width: f64) -> Self {
        Self { amplitude, width }
    }

    /// The nominal programming pulse for the given parameter set.
    pub fn nominal_write(params: &FeFetParams) -> Self {
        Self::new(params.write_amplitude, params.write_width)
    }

    /// The nominal erase pulse (full negative amplitude) for the parameter set.
    pub fn nominal_erase(params: &FeFetParams) -> Self {
        Self::new(-params.write_amplitude, params.write_width)
    }
}

/// Normalized polarization state of the ferroelectric layer.
///
/// `0.0` corresponds to the fully erased (high-V_TH) state and `1.0` to the
/// fully programmed (low-V_TH) state.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Polarization(f64);

impl Polarization {
    /// Fully erased state (all domains pointing towards the gate metal).
    pub const ERASED: Polarization = Polarization(0.0);
    /// Fully programmed state (all domains switched towards the channel).
    pub const SATURATED: Polarization = Polarization(1.0);

    /// Creates a polarization value, clamping into the physical range `[0, 1]`.
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            Polarization(0.0)
        } else {
            Polarization(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the normalized polarization as a plain `f64` in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for Polarization {
    fn default() -> Self {
        Polarization::ERASED
    }
}

impl From<f64> for Polarization {
    fn from(value: f64) -> Self {
        Polarization::new(value)
    }
}

/// Preisach-style accumulation model shared by all FeFET instances that use
/// the same [`FeFetParams`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreisachModel {
    params: FeFetParams,
}

impl PreisachModel {
    /// Builds the switching model from a device parameter set.
    pub fn new(params: FeFetParams) -> Self {
        Self { params }
    }

    /// Borrow the underlying parameter set.
    pub fn params(&self) -> &FeFetParams {
        &self.params
    }

    /// Per-pulse switching fraction for a borrowed parameter set, without
    /// constructing a model (the hot-path entry point used by
    /// [`crate::FeFet`], which would otherwise clone its parameters on every
    /// pulse).
    pub fn switching_fraction_with(params: &FeFetParams, pulse: Pulse) -> f64 {
        if pulse.amplitude <= 0.0 || pulse.width <= 0.0 {
            return 0.0;
        }
        let voltage_factor =
            ((pulse.amplitude - params.write_amplitude) / params.switch_voltage_slope).exp();
        let width_factor = (pulse.width / params.write_width).powf(params.switch_width_exponent);
        (params.switch_rate * voltage_factor * width_factor).clamp(0.0, 1.0)
    }

    /// Per-pulse switching fraction for a pulse of the given amplitude and
    /// width.
    ///
    /// The fraction is referenced to the nominal write pulse and scales
    /// exponentially with amplitude (field-driven nucleation) and as a
    /// power law with width, clamped to `[0, 1]`.
    pub fn switching_fraction(&self, pulse: Pulse) -> f64 {
        Self::switching_fraction_with(&self.params, pulse)
    }

    /// Applies a single pulse for a borrowed parameter set (see
    /// [`PreisachModel::apply_pulse`] for the semantics).
    pub fn apply_pulse_with(
        params: &FeFetParams,
        state: Polarization,
        pulse: Pulse,
    ) -> Polarization {
        if pulse.amplitude > 0.0 {
            let alpha = Self::switching_fraction_with(params, pulse);
            Polarization::new(state.value() + alpha * (1.0 - state.value()))
        } else if pulse.amplitude < 0.0 {
            let erase_pulse = Pulse::new(-pulse.amplitude, pulse.width);
            let alpha = Self::switching_fraction_with(params, erase_pulse);
            // A full-amplitude erase pulse removes essentially all switched
            // polarization in one shot, consistent with the "full erase"
            // operation that precedes multi-level programming.
            if -pulse.amplitude >= params.write_amplitude {
                Polarization::ERASED
            } else {
                Polarization::new(state.value() - alpha * state.value())
            }
        } else {
            state
        }
    }

    /// Applies a single pulse to a polarization state and returns the new state.
    ///
    /// Positive pulses move the state towards [`Polarization::SATURATED`];
    /// negative pulses with at least half the nominal amplitude move it back
    /// towards [`Polarization::ERASED`] (modelling the full erase used in the
    /// paper before multi-level programming), while weak negative pulses
    /// partially de-program symmetrically to programming.
    pub fn apply_pulse(&self, state: Polarization, pulse: Pulse) -> Polarization {
        Self::apply_pulse_with(&self.params, state, pulse)
    }

    /// Applies `count` identical pulses for a borrowed parameter set.
    pub fn apply_pulse_train_with(
        params: &FeFetParams,
        state: Polarization,
        pulse: Pulse,
        count: u32,
    ) -> Polarization {
        let mut s = state;
        for _ in 0..count {
            s = Self::apply_pulse_with(params, s, pulse);
        }
        s
    }

    /// Applies `count` identical pulses and returns the final state.
    pub fn apply_pulse_train(&self, state: Polarization, pulse: Pulse, count: u32) -> Polarization {
        Self::apply_pulse_train_with(&self.params, state, pulse, count)
    }

    /// Closed-form polarization reached after `count` nominal write pulses
    /// starting from the erased state: `1 - (1 - alpha)^count`.
    pub fn polarization_after_nominal_pulses(&self, count: u32) -> Polarization {
        let alpha = self.switching_fraction(Pulse::nominal_write(&self.params));
        Polarization::new(1.0 - (1.0 - alpha).powi(count as i32))
    }

    /// Number of nominal write pulses (rounded up) required to reach at least
    /// the requested polarization starting from the erased state, for a
    /// borrowed parameter set.
    ///
    /// Returns `None` if the target is unreachable (e.g. exactly 1.0, which is
    /// only approached asymptotically, is capped at a large pulse count).
    pub fn pulses_to_reach_with(params: &FeFetParams, target: Polarization) -> Option<u32> {
        let alpha = Self::switching_fraction_with(params, Pulse::nominal_write(params));
        if alpha <= 0.0 {
            return None;
        }
        let t = target.value();
        if t <= 0.0 {
            return Some(0);
        }
        if t >= 1.0 {
            return None;
        }
        let n = (1.0 - t).ln() / (1.0 - alpha).ln();
        Some(n.ceil().max(0.0) as u32)
    }

    /// Number of nominal write pulses (rounded up) required to reach at least
    /// the requested polarization starting from the erased state.
    ///
    /// Returns `None` if the target is unreachable (e.g. exactly 1.0, which is
    /// only approached asymptotically, is capped at a large pulse count).
    pub fn pulses_to_reach(&self, target: Polarization) -> Option<u32> {
        Self::pulses_to_reach_with(&self.params, target)
    }

    /// Number of nominal write pulses (rounded up) required to raise the
    /// polarization from `from` to at least `target`, for a borrowed
    /// parameter set — the minimal top-up train a recalibration pass applies
    /// to a cell that has only partially decayed, instead of paying the full
    /// erase-and-retrain cost.
    ///
    /// Returns `Some(0)` when the state is already at or above the target
    /// and `None` when the target is unreachable (≥ 1.0).
    pub fn pulses_to_reach_from_with(
        params: &FeFetParams,
        from: Polarization,
        target: Polarization,
    ) -> Option<u32> {
        let alpha = Self::switching_fraction_with(params, Pulse::nominal_write(params));
        if alpha <= 0.0 {
            return None;
        }
        let s = from.value();
        let t = target.value();
        if t <= s {
            return Some(0);
        }
        if t >= 1.0 {
            return None;
        }
        // Each pulse leaves a (1 - alpha) fraction of the unswitched
        // remainder: (1 - t) = (1 - s)(1 - alpha)^n.
        let n = ((1.0 - t) / (1.0 - s)).ln() / (1.0 - alpha).ln();
        Some(n.ceil().max(0.0) as u32)
    }

    /// Number of nominal write pulses (rounded up) required to raise the
    /// polarization from `from` to at least `target` (see
    /// [`PreisachModel::pulses_to_reach_from_with`]).
    pub fn pulses_to_reach_from(&self, from: Polarization, target: Polarization) -> Option<u32> {
        Self::pulses_to_reach_from_with(&self.params, from, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PreisachModel {
        PreisachModel::new(FeFetParams::febim_calibrated())
    }

    #[test]
    fn polarization_clamps_to_physical_range() {
        assert_eq!(Polarization::new(-0.5).value(), 0.0);
        assert_eq!(Polarization::new(1.5).value(), 1.0);
        assert_eq!(Polarization::new(f64::NAN).value(), 0.0);
        assert_eq!(Polarization::from(0.25).value(), 0.25);
    }

    #[test]
    fn nominal_pulse_switching_fraction_matches_calibration() {
        let m = model();
        let alpha = m.switching_fraction(Pulse::nominal_write(m.params()));
        assert!((alpha - 0.019).abs() < 1e-12);
    }

    #[test]
    fn zero_or_negative_geometry_pulses_do_not_switch() {
        let m = model();
        assert_eq!(m.switching_fraction(Pulse::new(4.0, 0.0)), 0.0);
        assert_eq!(m.switching_fraction(Pulse::new(0.0, 300e-9)), 0.0);
    }

    #[test]
    fn higher_amplitude_switches_more() {
        let m = model();
        let low = m.switching_fraction(Pulse::new(3.0, 300e-9));
        let nominal = m.switching_fraction(Pulse::new(4.0, 300e-9));
        let high = m.switching_fraction(Pulse::new(4.5, 300e-9));
        assert!(low < nominal);
        assert!(nominal < high);
    }

    #[test]
    fn longer_pulse_switches_more() {
        let m = model();
        let short = m.switching_fraction(Pulse::new(4.0, 100e-9));
        let long = m.switching_fraction(Pulse::new(4.0, 900e-9));
        assert!(short < long);
    }

    #[test]
    fn pulse_train_saturates_towards_one() {
        let m = model();
        let p = m.apply_pulse_train(Polarization::ERASED, Pulse::nominal_write(m.params()), 500);
        assert!(p.value() > 0.99);
        assert!(p.value() <= 1.0);
    }

    #[test]
    fn closed_form_matches_iterative_train() {
        let m = model();
        for count in [0u32, 1, 5, 40, 70, 120] {
            let iterative = m.apply_pulse_train(
                Polarization::ERASED,
                Pulse::nominal_write(m.params()),
                count,
            );
            let closed = m.polarization_after_nominal_pulses(count);
            assert!(
                (iterative.value() - closed.value()).abs() < 1e-9,
                "mismatch at {count} pulses"
            );
        }
    }

    #[test]
    fn full_erase_resets_state() {
        let m = model();
        let programmed =
            m.apply_pulse_train(Polarization::ERASED, Pulse::nominal_write(m.params()), 60);
        assert!(programmed.value() > 0.5);
        let erased = m.apply_pulse(programmed, Pulse::nominal_erase(m.params()));
        assert_eq!(erased, Polarization::ERASED);
    }

    #[test]
    fn weak_negative_pulse_partially_deprograms() {
        let m = model();
        let programmed = Polarization::new(0.6);
        let after = m.apply_pulse(programmed, Pulse::new(-3.0, 300e-9));
        assert!(after.value() < 0.6);
        assert!(after.value() > 0.0);
    }

    #[test]
    fn zero_amplitude_pulse_is_identity() {
        let m = model();
        let state = Polarization::new(0.42);
        assert_eq!(m.apply_pulse(state, Pulse::new(0.0, 300e-9)), state);
    }

    #[test]
    fn pulses_to_reach_brackets_the_target() {
        let m = model();
        for target in [0.1, 0.3, 0.529, 0.748, 0.9] {
            let n = m
                .pulses_to_reach(Polarization::new(target))
                .expect("reachable");
            let reached = m.polarization_after_nominal_pulses(n).value();
            assert!(
                reached >= target - 1e-9,
                "target {target} not reached at {n}"
            );
            if n > 0 {
                let before = m.polarization_after_nominal_pulses(n - 1).value();
                assert!(
                    before < target,
                    "target {target} already reached before {n}"
                );
            }
        }
    }

    #[test]
    fn pulses_to_reach_paper_window_is_roughly_40_to_70() {
        // The paper's Fig. 4(b) shows the 0.1 µA..1.0 µA states being reached
        // with roughly 40 to 70 pulses; the calibration targets p ≈ 0.53 and
        // p ≈ 0.75 for those two extreme states.
        let m = model();
        let low_state = m.pulses_to_reach(Polarization::new(0.529)).unwrap();
        let high_state = m.pulses_to_reach(Polarization::new(0.748)).unwrap();
        assert!(
            (35..=45).contains(&low_state),
            "low state pulses {low_state}"
        );
        assert!(
            (65..=80).contains(&high_state),
            "high state pulses {high_state}"
        );
    }

    #[test]
    fn top_up_trains_are_minimal_and_bracket_the_target() {
        let m = model();
        for (from, target) in [(0.0, 0.3), (0.2, 0.529), (0.5, 0.748), (0.74, 0.748)] {
            let from = Polarization::new(from);
            let target = Polarization::new(target);
            let n = m.pulses_to_reach_from(from, target).expect("reachable");
            let reached = m
                .apply_pulse_train(from, Pulse::nominal_write(m.params()), n)
                .value();
            assert!(
                reached >= target.value() - 1e-9,
                "target not reached at {n}"
            );
            if n > 0 {
                let before = m
                    .apply_pulse_train(from, Pulse::nominal_write(m.params()), n - 1)
                    .value();
                assert!(before < target.value(), "train of {n} not minimal");
            }
        }
        // Topping up from erased matches the from-scratch count.
        let target = Polarization::new(0.6);
        assert_eq!(
            m.pulses_to_reach_from(Polarization::ERASED, target),
            m.pulses_to_reach(target)
        );
        // A decayed-but-close state needs far fewer pulses than a retrain.
        let close = m
            .pulses_to_reach_from(Polarization::new(0.72), Polarization::new(0.748))
            .unwrap();
        let scratch = m.pulses_to_reach(Polarization::new(0.748)).unwrap();
        assert!(close < scratch / 4, "top-up {close} vs retrain {scratch}");
    }

    #[test]
    fn top_up_handles_degenerate_inputs() {
        let m = model();
        assert_eq!(
            m.pulses_to_reach_from(Polarization::new(0.8), Polarization::new(0.5)),
            Some(0)
        );
        assert_eq!(
            m.pulses_to_reach_from(Polarization::new(0.3), Polarization::SATURATED),
            None
        );
    }

    #[test]
    fn unreachable_targets_reported() {
        let m = model();
        assert_eq!(m.pulses_to_reach(Polarization::SATURATED), None);
        assert_eq!(m.pulses_to_reach(Polarization::ERASED), Some(0));
    }
}
