//! I_D–V_G characterization sweeps used to regenerate Fig. 1(c).

use serde::{Deserialize, Serialize};

use crate::errors::{DeviceError, Result};
use crate::fefet::FeFet;
use crate::params::FeFetParams;
use crate::programming::LevelProgrammer;

/// One point of an I_D–V_G curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvPoint {
    /// Gate voltage in volts.
    pub vg: f64,
    /// Drain-source current in amperes.
    pub ids: f64,
}

/// A complete I_D–V_G curve for one programmed multi-level state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IvCurve {
    /// Zero-based multi-level state index.
    pub level: usize,
    /// Threshold voltage of the programmed state in volts.
    pub vth: f64,
    /// Sweep points in increasing gate voltage order.
    pub points: Vec<IvPoint>,
}

impl IvCurve {
    /// The current read at the activation voltage `V_on`.
    pub fn current_at(&self, vg: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.vg - vg)
                    .abs()
                    .partial_cmp(&(b.vg - vg).abs())
                    .expect("finite sweep voltages")
            })
            .map(|p| p.ids)
    }
}

/// Configuration of an I_D–V_G sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Sweep start gate voltage in volts (paper: −0.4 V).
    pub vg_start: f64,
    /// Sweep stop gate voltage in volts (paper: 1.2 V).
    pub vg_stop: f64,
    /// Number of evenly spaced sweep points (≥ 2).
    pub points: usize,
}

impl SweepConfig {
    /// The sweep window used in Fig. 1(c): −0.4 V to 1.2 V.
    pub fn febim_figure1() -> Self {
        Self {
            vg_start: -0.4,
            vg_stop: 1.2,
            points: 161,
        }
    }

    /// Validates the sweep configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] when the window is empty or
    /// fewer than two points are requested.
    pub fn validate(&self) -> Result<()> {
        if self.vg_stop <= self.vg_start {
            return Err(DeviceError::InvalidParameter {
                name: "vg_stop",
                reason: "sweep stop voltage must exceed start voltage".to_string(),
            });
        }
        if self.points < 2 {
            return Err(DeviceError::InvalidParameter {
                name: "points",
                reason: "sweep needs at least two points".to_string(),
            });
        }
        Ok(())
    }

    /// The gate voltages of the sweep, evenly spaced and inclusive of both ends.
    pub fn voltages(&self) -> Vec<f64> {
        let step = (self.vg_stop - self.vg_start) / (self.points - 1) as f64;
        (0..self.points)
            .map(|i| self.vg_start + i as f64 * step)
            .collect()
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::febim_figure1()
    }
}

/// Sweeps a single device across the configured gate-voltage window.
///
/// # Errors
///
/// Returns [`DeviceError::InvalidParameter`] when the sweep configuration is
/// invalid.
pub fn sweep_device(device: &FeFet, config: &SweepConfig) -> Result<Vec<IvPoint>> {
    config.validate()?;
    Ok(config
        .voltages()
        .into_iter()
        .map(|vg| IvPoint {
            vg,
            ids: device.ids(vg),
        })
        .collect())
}

/// Generates the family of I_D–V_G curves for a multi-level configuration,
/// reproducing the data behind Fig. 1(c).
///
/// `levels` is the number of distinct programmed states (4 in the 2-bit
/// example of the paper).
///
/// # Errors
///
/// Propagates parameter and programming errors from [`LevelProgrammer`] and
/// sweep-configuration errors from [`SweepConfig::validate`].
pub fn multilevel_iv_curves(
    params: &FeFetParams,
    levels: usize,
    config: &SweepConfig,
) -> Result<Vec<IvCurve>> {
    config.validate()?;
    let programmer = LevelProgrammer::new(
        params.clone(),
        levels,
        crate::programming::DEFAULT_MIN_READ_CURRENT,
        crate::programming::DEFAULT_MAX_READ_CURRENT,
    )?;
    let mut curves = Vec::with_capacity(levels);
    for level in 0..levels {
        let mut device = FeFet::new(params.clone());
        programmer.program_ideal(&mut device, level)?;
        let points = sweep_device(&device, config)?;
        curves.push(IvCurve {
            level,
            vth: device.vth(),
            points,
        });
    }
    Ok(curves)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_matches_figure_window() {
        let config = SweepConfig::default();
        assert!((config.vg_start + 0.4).abs() < 1e-12);
        assert!((config.vg_stop - 1.2).abs() < 1e-12);
        let voltages = config.voltages();
        assert_eq!(voltages.len(), config.points);
        assert!((voltages[0] - config.vg_start).abs() < 1e-12);
        assert!((voltages.last().unwrap() - config.vg_stop).abs() < 1e-9);
    }

    #[test]
    fn invalid_sweeps_rejected() {
        let config = SweepConfig {
            points: 1,
            ..SweepConfig::default()
        };
        assert!(config.validate().is_err());
        let defaults = SweepConfig::default();
        let config = SweepConfig {
            vg_stop: defaults.vg_start,
            ..defaults
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn sweep_points_are_monotone_in_current() {
        let device = FeFet::new(FeFetParams::febim_calibrated());
        let points = sweep_device(&device, &SweepConfig::default()).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].ids >= pair[0].ids);
        }
    }

    #[test]
    fn four_state_family_is_ordered() {
        let params = FeFetParams::febim_calibrated();
        let curves = multilevel_iv_curves(&params, 4, &SweepConfig::default()).unwrap();
        assert_eq!(curves.len(), 4);
        // Higher levels have lower V_TH and therefore higher current at V_on.
        for pair in curves.windows(2) {
            assert!(pair[1].vth < pair[0].vth);
            let on_low = pair[0].current_at(params.v_on).unwrap();
            let on_high = pair[1].current_at(params.v_on).unwrap();
            assert!(on_high > on_low);
        }
    }

    #[test]
    fn on_off_ratio_is_large() {
        // Fig. 1(c) shows an ON/OFF window of several orders of magnitude
        // between V_off and strong activation.
        let params = FeFetParams::febim_calibrated();
        let curves = multilevel_iv_curves(&params, 4, &SweepConfig::default()).unwrap();
        for curve in &curves {
            let on = curve.current_at(params.v_on).unwrap();
            let off = curve.current_at(params.v_off).unwrap();
            assert!(on / off > 1e4, "level {} ratio {}", curve.level, on / off);
        }
    }

    #[test]
    fn current_at_picks_nearest_point() {
        let device = FeFet::new(FeFetParams::febim_calibrated());
        let points = sweep_device(&device, &SweepConfig::default()).unwrap();
        let curve = IvCurve {
            level: 0,
            vth: device.vth(),
            points,
        };
        let exact = device.ids(0.5);
        let sampled = curve.current_at(0.5).unwrap();
        assert!((exact - sampled).abs() / exact.max(1e-30) < 0.2);
    }
}
