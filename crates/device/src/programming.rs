//! Multi-level programming: turning target read currents into write-pulse
//! configurations (Fig. 4(b) of the paper) and applying them to devices.

use serde::{Deserialize, Serialize};

use crate::errors::{DeviceError, Result};
use crate::fefet::FeFet;
use crate::params::FeFetParams;
use crate::preisach::{Polarization, PreisachModel, Pulse};

/// A write configuration: how many nominal pulses program one multi-level state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteConfig {
    /// Number of nominal write pulses applied after a full erase.
    pub pulse_count: u32,
}

impl WriteConfig {
    /// Creates a write configuration with the given pulse count.
    pub fn new(pulse_count: u32) -> Self {
        Self { pulse_count }
    }
}

/// A discrete multi-level state of the device together with everything needed
/// to program and read it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgrammedState {
    /// Zero-based level index (0 = lowest read current).
    pub level: usize,
    /// Target read current at `V_on`, in amperes.
    pub target_current: f64,
    /// Polarization that realizes the target current.
    pub polarization: Polarization,
    /// Write configuration (pulse count) that reaches the polarization.
    pub write_config: WriteConfig,
}

/// Programmer that maps discrete levels to target currents, polarizations and
/// pulse counts for a given parameter set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelProgrammer {
    params: FeFetParams,
    /// Read current of the lowest level, in amperes (paper: 0.1 µA).
    min_current: f64,
    /// Read current of the highest level, in amperes (paper: 1.0 µA).
    max_current: f64,
    /// Number of discrete levels.
    levels: usize,
}

/// Default lowest mapped read current (0.1 µA), matching Fig. 4(a).
pub const DEFAULT_MIN_READ_CURRENT: f64 = 0.1e-6;
/// Default highest mapped read current (1.0 µA), matching Fig. 4(a).
pub const DEFAULT_MAX_READ_CURRENT: f64 = 1.0e-6;

impl LevelProgrammer {
    /// Creates a programmer with `levels` states whose read currents are
    /// linearly spaced between `min_current` and `max_current` (amperes).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the current window is
    /// empty or non-positive, [`DeviceError::TooManyLevels`] if fewer than two
    /// levels are requested, and [`DeviceError::TargetUnreachable`] if either
    /// end of the window cannot be realized by a physical polarization state.
    pub fn new(
        params: FeFetParams,
        levels: usize,
        min_current: f64,
        max_current: f64,
    ) -> Result<Self> {
        params.validate()?;
        if levels < 2 {
            return Err(DeviceError::TooManyLevels {
                requested: levels,
                supported: 2,
            });
        }
        if !(min_current > 0.0 && max_current > min_current) {
            return Err(DeviceError::InvalidParameter {
                name: "min_current/max_current",
                reason: "current window must satisfy 0 < min < max".to_string(),
            });
        }
        let programmer = Self {
            params,
            min_current,
            max_current,
            levels,
        };
        // Both window ends must correspond to programmable polarizations.
        for current in [min_current, max_current] {
            let pol = programmer.polarization_for_current(current);
            if pol.value() <= 0.0 || pol.value() >= 1.0 {
                return Err(DeviceError::TargetUnreachable {
                    target_amps: current,
                    min_amps: 0.0,
                    max_amps: f64::INFINITY,
                });
            }
        }
        Ok(programmer)
    }

    /// Programmer calibrated to the paper's ten-level 0.1 µA – 1.0 µA window.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`LevelProgrammer::new`]; the
    /// calibrated defaults never trigger them.
    pub fn febim_default(levels: usize) -> Result<Self> {
        Self::new(
            FeFetParams::febim_calibrated(),
            levels,
            DEFAULT_MIN_READ_CURRENT,
            DEFAULT_MAX_READ_CURRENT,
        )
    }

    /// Number of discrete levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Borrow the parameter set used by this programmer.
    pub fn params(&self) -> &FeFetParams {
        &self.params
    }

    /// The lowest mapped read current in amperes.
    pub fn min_current(&self) -> f64 {
        self.min_current
    }

    /// The highest mapped read current in amperes.
    pub fn max_current(&self) -> f64 {
        self.max_current
    }

    /// Target read current for a level index.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::TooManyLevels`] if `level >= self.levels()`.
    pub fn target_current(&self, level: usize) -> Result<f64> {
        if level >= self.levels {
            return Err(DeviceError::TooManyLevels {
                requested: level + 1,
                supported: self.levels,
            });
        }
        let fraction = level as f64 / (self.levels - 1) as f64;
        Ok(self.min_current + fraction * (self.max_current - self.min_current))
    }

    fn polarization_for_current(&self, current: f64) -> Polarization {
        let vth = FeFet::vth_for_read_current(&self.params, current);
        FeFet::polarization_for_vth(&self.params, vth)
    }

    /// Full programmed-state descriptor for a level index.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`LevelProgrammer::target_current`], plus
    /// [`DeviceError::ProgrammingDidNotConverge`] if the closed-form pulse
    /// solution does not exist (which the constructor prevents in practice).
    pub fn state_for_level(&self, level: usize) -> Result<ProgrammedState> {
        let target_current = self.target_current(level)?;
        let polarization = self.polarization_for_current(target_current);
        let pulse_count = PreisachModel::pulses_to_reach_with(&self.params, polarization).ok_or(
            DeviceError::ProgrammingDidNotConverge {
                max_pulses: u32::MAX,
                target_amps: target_current,
            },
        )?;
        Ok(ProgrammedState {
            level,
            target_current,
            polarization,
            write_config: WriteConfig::new(pulse_count),
        })
    }

    /// Descriptors for every level, in level order (the data behind Fig. 4(b)).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LevelProgrammer::state_for_level`].
    pub fn all_states(&self) -> Result<Vec<ProgrammedState>> {
        (0..self.levels).map(|l| self.state_for_level(l)).collect()
    }

    /// Programs a device to the requested level using an erase followed by the
    /// level's pulse train, mimicking the physical write sequence.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LevelProgrammer::state_for_level`].
    pub fn program_with_pulses(&self, device: &mut FeFet, level: usize) -> Result<ProgrammedState> {
        let state = self.state_for_level(level)?;
        device.erase();
        device.apply_pulse_train(
            Pulse::nominal_write(&self.params),
            state.write_config.pulse_count,
        );
        Ok(state)
    }

    /// Programs a device to the requested level by directly installing the
    /// target polarization (fast path used by large array simulations).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LevelProgrammer::state_for_level`].
    pub fn program_ideal(&self, device: &mut FeFet, level: usize) -> Result<ProgrammedState> {
        let state = self.state_for_level(level)?;
        device.set_polarization(state.polarization);
        Ok(state)
    }

    /// Total write energy (joules) spent programming the given level with a
    /// full erase plus the level's pulse train.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LevelProgrammer::state_for_level`].
    pub fn write_energy(&self, level: usize) -> Result<f64> {
        let state = self.state_for_level(level)?;
        // One erase pulse plus the programming pulse train.
        Ok(self.params.write_energy_per_pulse * (state.write_config.pulse_count as f64 + 1.0))
    }

    /// Minimal pulse train that tops a partially relaxed device back up to the
    /// target polarization of `level` without an erase.
    ///
    /// Returns `Some(pulses)` when the device sits at or below the target
    /// (retention drift and read disturb only ever relax polarization toward
    /// the erased state, so this is the common recalibration case) and `None`
    /// when the device has overshot the target and needs a full erase +
    /// retrain instead.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LevelProgrammer::state_for_level`].
    pub fn top_up_pulses(&self, device: &FeFet, level: usize) -> Result<Option<u32>> {
        let state = self.state_for_level(level)?;
        let current = device.polarization();
        if current.value() > state.polarization.value() {
            return Ok(None);
        }
        Ok(PreisachModel::pulses_to_reach_from_with(
            &self.params,
            current,
            state.polarization,
        ))
    }

    /// Refreshes a drifted device back to `level` with the cheapest physical
    /// pulse sequence: a minimal top-up train when the device relaxed below
    /// the target, or a full erase + retrain when it overshot.
    ///
    /// Returns the total pulse count applied (including the erase pulse when
    /// one was needed), which prices the refresh at
    /// `pulses * write_energy_per_pulse` joules.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LevelProgrammer::state_for_level`].
    pub fn refresh_with_pulses(&self, device: &mut FeFet, level: usize) -> Result<u32> {
        match self.top_up_pulses(device, level)? {
            Some(pulses) => {
                device.apply_pulse_train(Pulse::nominal_write(&self.params), pulses);
                Ok(pulses)
            }
            None => {
                let state = self.program_with_pulses(device, level)?;
                Ok(state.write_config.pulse_count + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmer() -> LevelProgrammer {
        LevelProgrammer::febim_default(10).expect("calibrated programmer")
    }

    #[test]
    fn default_window_matches_paper() {
        let p = programmer();
        assert_eq!(p.levels(), 10);
        assert!((p.min_current() - 0.1e-6).abs() < 1e-12);
        assert!((p.max_current() - 1.0e-6).abs() < 1e-12);
    }

    #[test]
    fn too_few_levels_rejected() {
        let err = LevelProgrammer::febim_default(1).unwrap_err();
        assert!(matches!(err, DeviceError::TooManyLevels { .. }));
    }

    #[test]
    fn empty_current_window_rejected() {
        let err = LevelProgrammer::new(FeFetParams::febim_calibrated(), 4, 1e-6, 1e-7).unwrap_err();
        assert!(matches!(err, DeviceError::InvalidParameter { .. }));
    }

    #[test]
    fn unreachable_window_rejected() {
        // 1 A is far above anything the device can deliver at V_on = 0.5 V.
        let err = LevelProgrammer::new(FeFetParams::febim_calibrated(), 4, 0.5, 1.0).unwrap_err();
        assert!(matches!(err, DeviceError::TargetUnreachable { .. }));
    }

    #[test]
    fn target_currents_are_linearly_spaced() {
        let p = programmer();
        let step = (p.max_current() - p.min_current()) / 9.0;
        for level in 0..10 {
            let expected = p.min_current() + level as f64 * step;
            assert!((p.target_current(level).unwrap() - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn out_of_range_level_rejected() {
        let p = programmer();
        assert!(p.target_current(10).is_err());
        assert!(p.state_for_level(99).is_err());
    }

    #[test]
    fn pulse_counts_increase_with_level() {
        let p = programmer();
        let states = p.all_states().unwrap();
        assert_eq!(states.len(), 10);
        for pair in states.windows(2) {
            assert!(
                pair[1].write_config.pulse_count > pair[0].write_config.pulse_count,
                "pulse count not strictly increasing between levels {} and {}",
                pair[0].level,
                pair[1].level
            );
        }
    }

    #[test]
    fn pulse_counts_lie_in_paper_reported_range() {
        // Fig. 4(b): roughly 40 pulses for the 0.1 µA state and roughly 70 for
        // the 1.0 µA state.
        let p = programmer();
        let states = p.all_states().unwrap();
        let first = states.first().unwrap().write_config.pulse_count;
        let last = states.last().unwrap().write_config.pulse_count;
        assert!((30..=50).contains(&first), "first level pulses {first}");
        assert!((60..=85).contains(&last), "last level pulses {last}");
    }

    #[test]
    fn pulse_programming_hits_target_current() {
        let p = programmer();
        for level in [0, 4, 9] {
            let mut device = FeFet::new(p.params().clone());
            let state = p.program_with_pulses(&mut device, level).unwrap();
            let read = device.read_current_on();
            let relative_error = (read - state.target_current).abs() / state.target_current;
            // Pulse quantization leaves a small overshoot relative to the
            // ideal target, bounded by one pulse worth of polarization, which
            // is proportionally largest for the lowest-current level.
            assert!(
                relative_error < 0.2,
                "level {level}: read {read:.3e} target {:.3e}",
                state.target_current
            );
        }
    }

    #[test]
    fn ideal_programming_is_exact() {
        let p = programmer();
        for level in 0..10 {
            let mut device = FeFet::new(p.params().clone());
            let state = p.program_ideal(&mut device, level).unwrap();
            let read = device.read_current_on();
            let relative_error = (read - state.target_current).abs() / state.target_current;
            assert!(
                relative_error < 0.02,
                "level {level} error {relative_error}"
            );
        }
    }

    #[test]
    fn programmed_levels_are_monotone_in_read_current() {
        let p = programmer();
        let mut previous = 0.0;
        for level in 0..10 {
            let mut device = FeFet::new(p.params().clone());
            p.program_ideal(&mut device, level).unwrap();
            let read = device.read_current_on();
            assert!(read > previous);
            previous = read;
        }
    }

    #[test]
    fn top_up_refresh_is_cheaper_than_retrain() {
        let p = programmer();
        let level = 6;
        let state = p.state_for_level(level).unwrap();
        let mut device = FeFet::new(p.params().clone());
        p.program_ideal(&mut device, level).unwrap();
        // Relax the device slightly below target, as retention drift would.
        device.set_polarization(Polarization::new(state.polarization.value() * 0.97));
        let top_up = p.top_up_pulses(&device, level).unwrap().expect("reachable");
        assert!(top_up > 0);
        assert!(
            top_up < state.write_config.pulse_count / 4,
            "top-up {top_up} vs full retrain {}",
            state.write_config.pulse_count
        );
        let applied = p.refresh_with_pulses(&mut device, level).unwrap();
        assert_eq!(applied, top_up);
        assert!(device.polarization().value() >= state.polarization.value());
        let relative_error =
            (device.read_current_on() - state.target_current).abs() / state.target_current;
        assert!(relative_error < 0.1, "post-refresh error {relative_error}");
    }

    #[test]
    fn overshoot_falls_back_to_full_retrain() {
        let p = programmer();
        let level = 2;
        let state = p.state_for_level(level).unwrap();
        let mut device = FeFet::new(p.params().clone());
        device.set_polarization(Polarization::new(state.polarization.value() + 0.1));
        assert!(p.top_up_pulses(&device, level).unwrap().is_none());
        let applied = p.refresh_with_pulses(&mut device, level).unwrap();
        assert_eq!(applied, state.write_config.pulse_count + 1);
        let relative_error =
            (device.read_current_on() - state.target_current).abs() / state.target_current;
        assert!(relative_error < 0.2, "post-retrain error {relative_error}");
    }

    #[test]
    fn write_energy_scales_with_pulse_count() {
        let p = programmer();
        let low = p.write_energy(0).unwrap();
        let high = p.write_energy(9).unwrap();
        assert!(high > low);
        // Order of femtojoules per programmed state.
        assert!(low > 1e-15 && high < 1e-12);
    }
}
