//! Threshold-voltage variation model used for the Monte-Carlo robustness
//! analysis (Fig. 8(c) of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::fefet::FeFet;

/// Gaussian device-to-device threshold-voltage variation.
///
/// The paper sweeps `σ_VTH` from 0 to 45 mV and cites an experimental
/// device-to-device variation of 38 mV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Standard deviation of the device-to-device V_TH offset, in volts.
    pub sigma_vth: f64,
}

impl VariationModel {
    /// Creates a variation model with the given σ_VTH in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use febim_device::VariationModel;
    ///
    /// let variation = VariationModel::from_millivolts(38.0);
    /// assert!((variation.sigma_vth - 0.038).abs() < 1e-12);
    /// ```
    pub fn new(sigma_vth: f64) -> Self {
        Self {
            sigma_vth: sigma_vth.max(0.0),
        }
    }

    /// Creates a variation model from a σ_VTH expressed in millivolts.
    pub fn from_millivolts(sigma_mv: f64) -> Self {
        Self::new(sigma_mv * 1e-3)
    }

    /// The ideal, variation-free model.
    pub fn ideal() -> Self {
        Self::new(0.0)
    }

    /// σ_VTH in millivolts.
    pub fn sigma_millivolts(&self) -> f64 {
        self.sigma_vth * 1e3
    }

    /// Draws one V_TH offset sample in volts.
    pub fn sample_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma_vth == 0.0 {
            return 0.0;
        }
        self.sigma_vth * standard_normal(rng)
    }

    /// Applies an independent random offset to every device in the slice.
    pub fn apply_to_devices<R: Rng + ?Sized>(&self, devices: &mut [FeFet], rng: &mut R) {
        for device in devices.iter_mut() {
            device.set_vth_offset(self.sample_offset(rng));
        }
    }

    /// Convenience helper: deterministic RNG for reproducible Monte-Carlo runs.
    pub fn seeded_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Draws one sample from the standard normal distribution via the
/// Box–Muller transform (avoids an extra dependency on `rand_distr`).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FeFetParams;

    #[test]
    fn ideal_model_produces_zero_offsets() {
        let model = VariationModel::ideal();
        let mut rng = VariationModel::seeded_rng(1);
        for _ in 0..10 {
            assert_eq!(model.sample_offset(&mut rng), 0.0);
        }
    }

    #[test]
    fn millivolt_constructor_converts_units() {
        let model = VariationModel::from_millivolts(45.0);
        assert!((model.sigma_vth - 0.045).abs() < 1e-12);
        assert!((model.sigma_millivolts() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn negative_sigma_is_clamped() {
        let model = VariationModel::new(-0.01);
        assert_eq!(model.sigma_vth, 0.0);
    }

    #[test]
    fn sample_statistics_match_requested_sigma() {
        let model = VariationModel::from_millivolts(30.0);
        let mut rng = VariationModel::seeded_rng(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample_offset(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let sigma = var.sqrt();
        assert!(mean.abs() < 2e-3, "mean {mean}");
        assert!((sigma - 0.030).abs() < 2e-3, "sigma {sigma}");
    }

    #[test]
    fn same_seed_reproduces_offsets() {
        let model = VariationModel::from_millivolts(15.0);
        let a: Vec<f64> = {
            let mut rng = VariationModel::seeded_rng(7);
            (0..16).map(|_| model.sample_offset(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = VariationModel::seeded_rng(7);
            (0..16).map(|_| model.sample_offset(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn apply_to_devices_sets_offsets() {
        let model = VariationModel::from_millivolts(38.0);
        let mut devices: Vec<FeFet> = (0..8)
            .map(|_| FeFet::new(FeFetParams::febim_calibrated()))
            .collect();
        let mut rng = VariationModel::seeded_rng(3);
        model.apply_to_devices(&mut devices, &mut rng);
        let non_zero = devices.iter().filter(|d| d.vth_offset() != 0.0).count();
        assert!(non_zero >= 7, "expected nearly all devices perturbed");
    }

    #[test]
    fn standard_normal_is_roughly_symmetric() {
        let mut rng = VariationModel::seeded_rng(11);
        let n = 10_000;
        let positive = (0..n)
            .map(|_| standard_normal(&mut rng))
            .filter(|s| *s > 0.0)
            .count();
        let fraction = positive as f64 / n as f64;
        assert!(
            (fraction - 0.5).abs() < 0.03,
            "positive fraction {fraction}"
        );
    }
}
