//! Threshold-voltage variation model used for the Monte-Carlo robustness
//! analysis (Fig. 8(c) of the paper).
//!
//! Device-to-device V_TH variation is sampled once per cell at programming
//! time. Two distribution families are supported: the paper's Gaussian
//! (symmetric, σ_VTH from 0 to 45 mV, experimental value 38 mV) and a
//! zero-median lognormal-style skewed family matching the resistance
//! statistics reported for filamentary RRAM — the tail of a lognormal
//! distribution produces the rare far-out devices a Gaussian underestimates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::fefet::FeFet;

/// Shape of the device-to-device V_TH offset distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum VthDistribution {
    /// Symmetric Gaussian offsets (the paper's Fig. 8(c) model).
    #[default]
    Gaussian,
    /// Zero-median skewed offsets `σ · (exp(shape · z) − 1) / shape` with
    /// `z ~ N(0, 1)`: the offset is a shifted lognormal whose right tail
    /// grows with `shape`, recovering the Gaussian as `shape → 0`.
    Lognormal {
        /// Skewness parameter of the lognormal tail (σ of the underlying
        /// normal in log space); must be positive.
        shape: f64,
    },
}

/// Device-to-device threshold-voltage variation.
///
/// The scale parameter `sigma_vth` is the standard deviation of the
/// underlying normal draw in volts; for the lognormal family it sets the
/// small-shape slope, so both families are directly comparable at the same
/// `sigma_vth`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Standard deviation of the device-to-device V_TH offset, in volts.
    pub sigma_vth: f64,
    /// Distribution family the offsets are drawn from.
    pub distribution: VthDistribution,
}

impl VariationModel {
    /// Creates a Gaussian variation model with the given σ_VTH in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use febim_device::VariationModel;
    ///
    /// let variation = VariationModel::from_millivolts(38.0);
    /// assert!((variation.sigma_vth - 0.038).abs() < 1e-12);
    /// ```
    pub fn new(sigma_vth: f64) -> Self {
        Self {
            sigma_vth: sigma_vth.max(0.0),
            distribution: VthDistribution::Gaussian,
        }
    }

    /// Creates a Gaussian variation model from a σ_VTH in millivolts.
    pub fn from_millivolts(sigma_mv: f64) -> Self {
        Self::new(sigma_mv * 1e-3)
    }

    /// Creates a lognormal-family variation model with the given σ_VTH in
    /// volts and tail shape (clamped positive; a vanishing shape recovers
    /// the Gaussian limit).
    pub fn lognormal(sigma_vth: f64, shape: f64) -> Self {
        Self {
            sigma_vth: sigma_vth.max(0.0),
            distribution: VthDistribution::Lognormal {
                shape: shape.max(1e-12),
            },
        }
    }

    /// Creates a lognormal-family model from a σ_VTH in millivolts.
    pub fn lognormal_from_millivolts(sigma_mv: f64, shape: f64) -> Self {
        Self::lognormal(sigma_mv * 1e-3, shape)
    }

    /// The ideal, variation-free model.
    pub fn ideal() -> Self {
        Self::new(0.0)
    }

    /// σ_VTH in millivolts.
    pub fn sigma_millivolts(&self) -> f64 {
        self.sigma_vth * 1e3
    }

    /// Draws one V_TH offset sample in volts.
    ///
    /// A zero-σ model returns exactly `0.0` **without consuming the RNG**,
    /// so ideal configurations are byte-identical to a build with no
    /// variation model at all and RNG streams stay aligned across
    /// configurations that mix ideal and non-ideal arrays.
    pub fn sample_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma_vth == 0.0 {
            return 0.0;
        }
        let z = standard_normal(rng);
        match self.distribution {
            VthDistribution::Gaussian => self.sigma_vth * z,
            VthDistribution::Lognormal { shape } => self.sigma_vth * (shape * z).exp_m1() / shape,
        }
    }

    /// Applies an independent random offset to every device in the slice.
    pub fn apply_to_devices<R: Rng + ?Sized>(&self, devices: &mut [FeFet], rng: &mut R) {
        for device in devices.iter_mut() {
            device.set_vth_offset(self.sample_offset(rng));
        }
    }

    /// Convenience helper: deterministic RNG for reproducible Monte-Carlo runs.
    pub fn seeded_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Draws one sample from the standard normal distribution via the
/// Box–Muller transform (avoids an extra dependency on `rand_distr`).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FeFetParams;

    #[test]
    fn ideal_model_produces_zero_offsets() {
        let model = VariationModel::ideal();
        let mut rng = VariationModel::seeded_rng(1);
        for _ in 0..10 {
            assert_eq!(model.sample_offset(&mut rng), 0.0);
        }
    }

    #[test]
    fn ideal_model_does_not_consume_the_rng() {
        // Zero-σ sampling must leave the RNG stream untouched for either
        // family, so ideal and absent variation are indistinguishable.
        for model in [VariationModel::ideal(), VariationModel::lognormal(0.0, 0.5)] {
            let mut sampled = VariationModel::seeded_rng(9);
            let mut untouched = VariationModel::seeded_rng(9);
            for _ in 0..5 {
                assert_eq!(model.sample_offset(&mut sampled), 0.0);
            }
            assert_eq!(sampled.gen::<u64>(), untouched.gen::<u64>());
        }
    }

    #[test]
    fn millivolt_constructor_converts_units() {
        let model = VariationModel::from_millivolts(45.0);
        assert!((model.sigma_vth - 0.045).abs() < 1e-12);
        assert!((model.sigma_millivolts() - 45.0).abs() < 1e-9);
        assert_eq!(model.distribution, VthDistribution::Gaussian);
    }

    #[test]
    fn negative_sigma_is_clamped() {
        let model = VariationModel::new(-0.01);
        assert_eq!(model.sigma_vth, 0.0);
        let skewed = VariationModel::lognormal(-0.01, 0.4);
        assert_eq!(skewed.sigma_vth, 0.0);
    }

    #[test]
    fn sample_statistics_match_requested_sigma() {
        let model = VariationModel::from_millivolts(30.0);
        let mut rng = VariationModel::seeded_rng(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample_offset(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let sigma = var.sqrt();
        assert!(mean.abs() < 2e-3, "mean {mean}");
        assert!((sigma - 0.030).abs() < 2e-3, "sigma {sigma}");
    }

    #[test]
    fn lognormal_family_is_right_skewed_with_zero_median() {
        let model = VariationModel::lognormal_from_millivolts(30.0, 0.8);
        let mut rng = VariationModel::seeded_rng(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample_offset(&mut rng)).collect();
        let positive = samples.iter().filter(|s| **s > 0.0).count() as f64 / n as f64;
        // Median at zero: the sign split stays balanced...
        assert!(
            (positive - 0.5).abs() < 0.02,
            "positive fraction {positive}"
        );
        // ...but the mean is pulled up by the heavy right tail.
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean > 0.005, "mean {mean}");
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > -min, "tail asymmetry: max {max} min {min}");
        // The offset is bounded below by -σ/shape (lognormal support).
        assert!(min > -model.sigma_vth / 0.8 - 1e-12, "min {min}");
    }

    #[test]
    fn small_shape_recovers_the_gaussian_limit() {
        let gaussian = VariationModel::from_millivolts(30.0);
        let skewed = VariationModel::lognormal_from_millivolts(30.0, 1e-9);
        let mut rng_a = VariationModel::seeded_rng(5);
        let mut rng_b = VariationModel::seeded_rng(5);
        for _ in 0..64 {
            let a = gaussian.sample_offset(&mut rng_a);
            let b = skewed.sample_offset(&mut rng_b);
            assert!((a - b).abs() < 1e-9, "gaussian {a} lognormal-limit {b}");
        }
    }

    #[test]
    fn same_seed_reproduces_offsets() {
        for model in [
            VariationModel::from_millivolts(15.0),
            VariationModel::lognormal_from_millivolts(15.0, 0.6),
        ] {
            let a: Vec<f64> = {
                let mut rng = VariationModel::seeded_rng(7);
                (0..16).map(|_| model.sample_offset(&mut rng)).collect()
            };
            let b: Vec<f64> = {
                let mut rng = VariationModel::seeded_rng(7);
                (0..16).map(|_| model.sample_offset(&mut rng)).collect()
            };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn apply_to_devices_sets_offsets() {
        let model = VariationModel::from_millivolts(38.0);
        let mut devices: Vec<FeFet> = (0..8)
            .map(|_| FeFet::new(FeFetParams::febim_calibrated()))
            .collect();
        let mut rng = VariationModel::seeded_rng(3);
        model.apply_to_devices(&mut devices, &mut rng);
        let non_zero = devices.iter().filter(|d| d.vth_offset() != 0.0).count();
        assert!(non_zero >= 7, "expected nearly all devices perturbed");
    }

    #[test]
    fn standard_normal_is_roughly_symmetric() {
        let mut rng = VariationModel::seeded_rng(11);
        let n = 10_000;
        let positive = (0..n)
            .map(|_| standard_normal(&mut rng))
            .filter(|s| *s > 0.0)
            .count();
        let fraction = positive as f64 / n as f64;
        assert!(
            (fraction - 0.5).abs() < 0.03,
            "positive fraction {fraction}"
        );
    }
}
