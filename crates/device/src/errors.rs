//! Error types for the FeFET device model.

use std::error::Error;
use std::fmt;

/// Errors produced by the FeFET device model.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A device parameter is outside its physically meaningful range.
    ///
    /// Contains the parameter name and a human readable explanation.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A requested target current cannot be reached by any programmable state.
    TargetUnreachable {
        /// The requested drain-source current in amperes.
        target_amps: f64,
        /// Minimum reachable current in amperes.
        min_amps: f64,
        /// Maximum reachable current in amperes.
        max_amps: f64,
    },
    /// Programming did not converge within the allowed number of pulses.
    ProgrammingDidNotConverge {
        /// The pulse budget that was exhausted.
        max_pulses: u32,
        /// The requested target current in amperes.
        target_amps: f64,
    },
    /// A multi-level configuration requested more states than the device window supports.
    TooManyLevels {
        /// Requested number of levels.
        requested: usize,
        /// Maximum supported number of levels.
        supported: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, reason } => {
                write!(f, "invalid device parameter `{name}`: {reason}")
            }
            DeviceError::TargetUnreachable {
                target_amps,
                min_amps,
                max_amps,
            } => write!(
                f,
                "target current {target_amps:.3e} A outside reachable window [{min_amps:.3e}, {max_amps:.3e}] A"
            ),
            DeviceError::ProgrammingDidNotConverge {
                max_pulses,
                target_amps,
            } => write!(
                f,
                "programming did not converge to {target_amps:.3e} A within {max_pulses} pulses"
            ),
            DeviceError::TooManyLevels {
                requested,
                supported,
            } => write!(
                f,
                "requested {requested} levels but the device window supports at most {supported}"
            ),
        }
    }
}

impl Error for DeviceError {}

/// Convenience result alias used throughout the device crate.
pub type Result<T> = std::result::Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let err = DeviceError::InvalidParameter {
            name: "vth_high",
            reason: "must exceed vth_low".to_string(),
        };
        let msg = err.to_string();
        assert!(msg.contains("vth_high"));
        assert!(msg.contains("must exceed"));
    }

    #[test]
    fn display_target_unreachable() {
        let err = DeviceError::TargetUnreachable {
            target_amps: 5e-6,
            min_amps: 1e-7,
            max_amps: 1e-6,
        };
        assert!(err.to_string().contains("outside reachable window"));
    }

    #[test]
    fn display_did_not_converge() {
        let err = DeviceError::ProgrammingDidNotConverge {
            max_pulses: 100,
            target_amps: 1e-6,
        };
        assert!(err.to_string().contains("100 pulses"));
    }

    #[test]
    fn display_too_many_levels() {
        let err = DeviceError::TooManyLevels {
            requested: 64,
            supported: 16,
        };
        assert!(err.to_string().contains("64 levels"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
