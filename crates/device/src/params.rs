//! Device parameter set for the behavioural multi-level FeFET model.
//!
//! The defaults are calibrated so that the read window reproduces the
//! characteristics reported in the FeBiM paper: ten distinguishable states
//! whose read currents at `V_on = 0.5 V` span 0.1 µA to 1.0 µA, reached with
//! roughly 40–70 write pulses of 4 V / 300 ns (Fig. 4), and a clean cut-off at
//! `V_off = -0.5 V`.

use serde::{Deserialize, Serialize};

use crate::errors::{DeviceError, Result};

/// Boltzmann thermal voltage at 300 K in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// Full set of parameters describing one FeFET device instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeFetParams {
    /// Threshold voltage of the fully erased (high-V_TH) state, in volts.
    pub vth_high: f64,
    /// Threshold voltage of the fully programmed (low-V_TH) state, in volts.
    pub vth_low: f64,
    /// Transconductance-like factor of the saturation current law, in A/V².
    pub k_sat: f64,
    /// Subthreshold ideality factor (dimensionless, ≥ 1).
    pub ideality: f64,
    /// Gate read voltage that activates the device, in volts (paper: 0.5 V).
    pub v_on: f64,
    /// Gate inhibit voltage that cuts the device off, in volts (paper: -0.5 V).
    pub v_off: f64,
    /// Nominal write pulse amplitude, in volts (paper: 4 V).
    pub write_amplitude: f64,
    /// Nominal write pulse width, in seconds (paper: 300 ns).
    pub write_width: f64,
    /// Fraction of the remaining unswitched polarization flipped by one
    /// nominal write pulse (Preisach-style accumulation rate).
    pub switch_rate: f64,
    /// Exponential voltage sensitivity of the switching rate, in volts.
    ///
    /// The per-pulse switching fraction scales as
    /// `switch_rate * exp((amplitude - write_amplitude) / switch_voltage_slope)`.
    pub switch_voltage_slope: f64,
    /// Power-law exponent of the pulse-width dependence of the switching rate.
    pub switch_width_exponent: f64,
    /// Ferroelectric switching energy per nominal pulse, in joules
    /// (order of fJ per bit as reported for FeFET write operations).
    pub write_energy_per_pulse: f64,
    /// Drain bias applied during read accumulation, in volts.
    pub v_drain_read: f64,
}

impl FeFetParams {
    /// Parameter set calibrated to the FeBiM paper's operating point.
    ///
    /// # Examples
    ///
    /// ```
    /// use febim_device::FeFetParams;
    ///
    /// let params = FeFetParams::febim_calibrated();
    /// assert!(params.vth_high > params.vth_low);
    /// ```
    pub fn febim_calibrated() -> Self {
        Self {
            vth_high: 1.1,
            vth_low: -0.3,
            k_sat: 5.0e-6,
            ideality: 1.5,
            v_on: 0.5,
            v_off: -0.5,
            write_amplitude: 4.0,
            write_width: 300e-9,
            switch_rate: 0.019,
            switch_voltage_slope: 0.25,
            switch_width_exponent: 0.5,
            write_energy_per_pulse: 1.0e-15,
            v_drain_read: 0.1,
        }
    }

    /// Validates the physical consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any value is outside its
    /// physically meaningful range (for example `vth_high <= vth_low`, a
    /// non-positive transconductance, or a switching rate outside `(0, 1)`).
    pub fn validate(&self) -> Result<()> {
        if !self.vth_high.is_finite() || !self.vth_low.is_finite() {
            return Err(DeviceError::InvalidParameter {
                name: "vth_high/vth_low",
                reason: "threshold voltages must be finite".to_string(),
            });
        }
        if self.vth_high <= self.vth_low {
            return Err(DeviceError::InvalidParameter {
                name: "vth_high",
                reason: format!(
                    "must exceed vth_low ({} <= {})",
                    self.vth_high, self.vth_low
                ),
            });
        }
        if self.k_sat <= 0.0 || !self.k_sat.is_finite() {
            return Err(DeviceError::InvalidParameter {
                name: "k_sat",
                reason: "saturation transconductance must be positive".to_string(),
            });
        }
        if self.ideality < 1.0 {
            return Err(DeviceError::InvalidParameter {
                name: "ideality",
                reason: "subthreshold ideality factor must be >= 1".to_string(),
            });
        }
        if self.v_on <= self.v_off {
            return Err(DeviceError::InvalidParameter {
                name: "v_on",
                reason: "activation voltage must exceed inhibit voltage".to_string(),
            });
        }
        if !(0.0 < self.switch_rate && self.switch_rate < 1.0) {
            return Err(DeviceError::InvalidParameter {
                name: "switch_rate",
                reason: "per-pulse switching fraction must be in (0, 1)".to_string(),
            });
        }
        if self.switch_voltage_slope <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "switch_voltage_slope",
                reason: "voltage slope must be positive".to_string(),
            });
        }
        if self.write_width <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "write_width",
                reason: "pulse width must be positive".to_string(),
            });
        }
        if self.write_amplitude <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "write_amplitude",
                reason: "write amplitude must be positive".to_string(),
            });
        }
        if self.write_energy_per_pulse < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "write_energy_per_pulse",
                reason: "energy per pulse cannot be negative".to_string(),
            });
        }
        if self.v_drain_read <= 0.0 || !self.v_drain_read.is_finite() {
            // Wire-resistance IR-drop models divide by the read drain bias.
            return Err(DeviceError::InvalidParameter {
                name: "v_drain_read",
                reason: "read drain bias must be positive and finite".to_string(),
            });
        }
        Ok(())
    }

    /// The thermal slope `n * V_T` of the subthreshold region, in volts.
    pub fn thermal_slope(&self) -> f64 {
        self.ideality * THERMAL_VOLTAGE
    }

    /// Total programmable threshold window `vth_high - vth_low`, in volts.
    pub fn vth_window(&self) -> f64 {
        self.vth_high - self.vth_low
    }
}

impl Default for FeFetParams {
    fn default() -> Self {
        Self::febim_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        FeFetParams::default().validate().expect("defaults valid");
    }

    #[test]
    fn swapped_thresholds_rejected() {
        let p = FeFetParams {
            vth_high: -1.0,
            vth_low: 1.0,
            ..FeFetParams::default()
        };
        assert!(matches!(
            p.validate(),
            Err(DeviceError::InvalidParameter {
                name: "vth_high",
                ..
            })
        ));
    }

    #[test]
    fn non_positive_k_rejected() {
        let p = FeFetParams {
            k_sat: 0.0,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn switch_rate_out_of_range_rejected() {
        let mut p = FeFetParams {
            switch_rate: 1.5,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
        p.switch_rate = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn v_on_below_v_off_rejected() {
        let p = FeFetParams {
            v_on: -1.0,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn ideality_below_one_rejected() {
        let p = FeFetParams {
            ideality: 0.5,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn non_positive_drain_bias_rejected() {
        let p = FeFetParams {
            v_drain_read: 0.0,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn thermal_slope_positive() {
        let p = FeFetParams::default();
        assert!(p.thermal_slope() > 0.0);
        assert!(p.thermal_slope() < 0.1);
    }

    #[test]
    fn vth_window_matches_difference() {
        let p = FeFetParams::default();
        assert!((p.vth_window() - (p.vth_high - p.vth_low)).abs() < 1e-12);
    }

    #[test]
    fn clone_preserves_equality() {
        let p = FeFetParams::default();
        assert_eq!(p.clone(), p);
    }
}
