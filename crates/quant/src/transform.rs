//! Probability-domain transforms: truncation, logarithm and the column
//! normalization of Eq. (6).

/// Replaces probabilities below `floor` with `floor` (the truncation step of
/// Fig. 4(a)) and clamps values above one back to one.
///
/// # Panics
///
/// Panics in debug builds if `floor` is not in `(0, 1]`.
pub fn truncate_probability(p: f64, floor: f64) -> f64 {
    debug_assert!(floor > 0.0 && floor <= 1.0, "floor must be in (0, 1]");
    if !p.is_finite() {
        return floor;
    }
    p.clamp(floor, 1.0)
}

/// Truncates then takes the natural logarithm of a probability.
pub fn truncated_log(p: f64, floor: f64) -> f64 {
    truncate_probability(p, floor).ln()
}

/// Column normalization of Eq. (6): adds the constant `1 - max(values)` to
/// every entry so the maximum becomes exactly one, enhancing the contrast
/// between posteriors without changing their ordering.
///
/// Empty slices are left untouched.
pub fn column_normalize(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return;
    }
    let shift = 1.0 - max;
    for value in values.iter_mut() {
        *value += shift;
    }
}

/// Returns a normalized copy of the column (see [`column_normalize`]).
pub fn column_normalized(values: &[f64]) -> Vec<f64> {
    let mut copy = values.to_vec();
    column_normalize(&mut copy);
    copy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_floors_small_probabilities() {
        assert_eq!(truncate_probability(0.01, 0.1), 0.1);
        assert_eq!(truncate_probability(0.5, 0.1), 0.5);
        assert_eq!(truncate_probability(1.5, 0.1), 1.0);
        assert_eq!(truncate_probability(f64::NAN, 0.1), 0.1);
        assert_eq!(truncate_probability(0.0, 0.1), 0.1);
    }

    #[test]
    fn truncated_log_matches_paper_example() {
        // Fig. 4(a): with a floor of 0.1 the most truncated probability maps
        // to ln(0.1) ≈ -2.3 before normalization.
        let value = truncated_log(0.001, 0.1);
        assert!((value - 0.1f64.ln()).abs() < 1e-12);
        assert_eq!(truncated_log(1.0, 0.1), 0.0);
    }

    #[test]
    fn normalization_scales_maximum_to_one() {
        let mut column = vec![-2.3, -0.7, -1.2];
        column_normalize(&mut column);
        let max = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        // Differences between entries are preserved.
        assert!((column[1] - column[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_preserves_ordering() {
        let original = vec![-5.0, -1.0, -3.0];
        let normalized = column_normalized(&original);
        for i in 0..original.len() {
            for j in 0..original.len() {
                assert_eq!(
                    original[i] < original[j],
                    normalized[i] < normalized[j],
                    "ordering changed between {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn degenerate_columns_are_safe() {
        let mut empty: Vec<f64> = vec![];
        column_normalize(&mut empty);
        assert!(empty.is_empty());

        let mut infinite = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        column_normalize(&mut infinite);
        assert!(infinite.iter().all(|v| v.is_infinite()));

        let mut single = vec![-4.2];
        column_normalize(&mut single);
        assert!((single[0] - 1.0).abs() < 1e-12);
    }
}
