//! The full probability quantization pipeline of Sec. 3.3: truncation,
//! logarithm, column normalization (Eq. 6), feature discretization and
//! uniform quantization of the resulting log-likelihood table.
//!
//! The output, [`QuantizedGnbc`], is both a software model (used to evaluate
//! the pure quantization loss of Fig. 7 / Fig. 8(a)) and the programming
//! source for the FeFET crossbar (via its level tables).

use serde::{Deserialize, Serialize};

use febim_bayes::{argmax, GaussianNaiveBayes};
use febim_data::Dataset;

use crate::discretize::FeatureDiscretizer;
use crate::errors::{QuantError, Result};
use crate::quantizer::UniformQuantizer;
use crate::transform::{column_normalized, truncated_log};

/// Configuration of the quantization pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Feature (evidence) quantization precision `Q_f` in bits; each evidence
    /// node gets `2^Q_f` bitlines.
    pub feature_bits: u32,
    /// Likelihood quantization precision `Q_l` in bits; probabilities map to
    /// `2^Q_l` FeFET states.
    pub likelihood_bits: u32,
    /// Truncation floor applied to the likelihoods of each column *relative
    /// to the column maximum* before the log transform (the `P < 0.1 -> 0.1`
    /// step of Fig. 4(a)). A floor of `0.01` clips any probability below 1 %
    /// of the most likely class for that evidence value, bounding the
    /// log-domain dynamic range that has to be quantized to `ln(1/floor)`.
    pub probability_floor: f64,
    /// Whether the column normalization of Eq. (6) is applied. Disabling it
    /// is an ablation knob: the paper argues normalization enhances the
    /// contrast between posteriors and mitigates quantization loss.
    pub column_normalization: bool,
}

impl QuantConfig {
    /// The paper's chosen operating point for iris: `Q_f = 4` bit,
    /// `Q_l = 2` bit.
    pub fn febim_optimal() -> Self {
        Self {
            feature_bits: 4,
            likelihood_bits: 2,
            probability_floor: 0.01,
            column_normalization: true,
        }
    }

    /// Creates a configuration with the default truncation floor.
    pub fn new(feature_bits: u32, likelihood_bits: u32) -> Self {
        Self {
            feature_bits,
            likelihood_bits,
            probability_floor: 0.01,
            column_normalization: true,
        }
    }

    /// Returns a copy with a different truncation floor.
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.probability_floor = floor;
        self
    }

    /// Returns a copy with the Eq. (6) column normalization disabled
    /// (ablation study).
    pub fn without_column_normalization(mut self) -> Self {
        self.column_normalization = false;
        self
    }

    /// Number of discretized evidence levels (`2^Q_f`).
    pub fn feature_levels(&self) -> usize {
        1usize << self.feature_bits
    }

    /// Number of quantized likelihood levels (`2^Q_l`).
    pub fn likelihood_levels(&self) -> usize {
        1usize << self.likelihood_bits
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidPrecision`] for zero or more than 16 bits
    /// and [`QuantError::InvalidParameter`] for a floor outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.feature_bits == 0 || self.feature_bits > 16 {
            return Err(QuantError::InvalidPrecision {
                kind: "feature",
                bits: self.feature_bits,
            });
        }
        if self.likelihood_bits == 0 || self.likelihood_bits > 16 {
            return Err(QuantError::InvalidPrecision {
                kind: "likelihood",
                bits: self.likelihood_bits,
            });
        }
        if !(self.probability_floor > 0.0 && self.probability_floor <= 1.0) {
            return Err(QuantError::InvalidParameter {
                name: "probability_floor",
                reason: format!("floor {} must lie in (0, 1]", self.probability_floor),
            });
        }
        Ok(())
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self::febim_optimal()
    }
}

/// A Gaussian naive Bayes model quantized for in-memory deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedGnbc {
    config: QuantConfig,
    discretizer: FeatureDiscretizer,
    quantizer: UniformQuantizer,
    /// `likelihood_levels[class][feature][bin]`.
    likelihood_levels: Vec<Vec<Vec<usize>>>,
    /// `prior_levels[class]`.
    prior_levels: Vec<usize>,
    uniform_prior: bool,
    n_classes: usize,
    n_features: usize,
}

impl QuantizedGnbc {
    /// Quantizes a trained GNBC using the training dataset to fit the feature
    /// discretizer.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation, discretizer and Bayesian-model
    /// errors, and returns [`QuantError::InvalidParameter`] when the model and
    /// dataset disagree on the number of features.
    pub fn quantize(
        model: &GaussianNaiveBayes,
        train_data: &Dataset,
        config: QuantConfig,
    ) -> Result<Self> {
        config.validate()?;
        if model.n_features() != train_data.n_features() {
            return Err(QuantError::InvalidParameter {
                name: "train_data",
                reason: format!(
                    "model has {} features but the dataset has {}",
                    model.n_features(),
                    train_data.n_features()
                ),
            });
        }
        let discretizer = FeatureDiscretizer::fit(train_data, config.feature_bits)?;
        let n_classes = model.n_classes();
        let n_features = model.n_features();
        let bins = discretizer.bins();

        // Normalized log-likelihood columns: for each (feature, bin) column,
        // the per-class log bin-probabilities are clipped to within
        // `ln(floor)` of the column maximum (truncation), then shifted so the
        // per-column maximum is exactly one (Eq. 6). The relative clipping
        // keeps the pipeline invariant to the bin width, so increasing the
        // feature precision never erases likelihood information.
        let floor_log = config.probability_floor.ln();
        let mut normalized_likelihoods = vec![vec![vec![0.0f64; bins]; n_features]; n_classes];
        // Columns are naturally (feature, bin)-major while the table is
        // class-major, so the write below scatters across the outer axis.
        #[allow(clippy::needless_range_loop)]
        for feature in 0..n_features {
            let width = discretizer.bin_width(feature)?;
            // A feature with a single distinct training value has zero-width
            // bins; `ln(width)` would collapse toward -744 and poison the
            // global quantization range (catastrophically so on the
            // unnormalized ablation path). Such a feature carries no
            // discriminative signal, so it gets the degenerate single-level
            // mapping: every class reads the ln(1) cap in every bin.
            let degenerate = discretizer.is_degenerate(feature)?;
            for bin in 0..bins {
                let center = discretizer.bin_center(feature, bin)?;
                let column: Vec<f64> = (0..n_classes)
                    .map(|class| {
                        if degenerate {
                            return 0.0;
                        }
                        let log_pdf = model
                            .feature_log_likelihood(class, feature, center)
                            .expect("validated indices");
                        // Log bin probability ≈ ln(pdf(center) * bin width),
                        // capped at ln(1).
                        (log_pdf + width.max(f64::MIN_POSITIVE).ln()).min(0.0)
                    })
                    .collect();
                let column_max = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let clipped: Vec<f64> = column
                    .iter()
                    .map(|&v| v.max(column_max + floor_log))
                    .collect();
                let transformed = if config.column_normalization {
                    column_normalized(&clipped)
                } else {
                    clipped
                };
                for (class, value) in transformed.into_iter().enumerate() {
                    normalized_likelihoods[class][feature][bin] = value;
                }
            }
        }

        // Normalized log-priors (their own column in the crossbar), clipped
        // relative to the most probable class like every other column.
        let prior_logs: Vec<f64> = model
            .classes()
            .iter()
            .map(|c| truncated_log(c.prior, f64::MIN_POSITIVE))
            .collect();
        let prior_max = prior_logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let prior_column: Vec<f64> = prior_logs
            .iter()
            .map(|&v| v.max(prior_max + floor_log))
            .collect();
        let normalized_priors = if config.column_normalization {
            column_normalized(&prior_column)
        } else {
            prior_column
        };
        let uniform_prior = model.has_uniform_prior();

        // Global quantization range. With the Eq. (6) normalization the
        // per-column maxima are all 1; without it (ablation) the range spans
        // whatever the clipped log-probabilities cover.
        let mut low = f64::INFINITY;
        let mut high = f64::NEG_INFINITY;
        for value in normalized_likelihoods.iter().flatten().flatten().copied() {
            low = low.min(value);
            high = high.max(value);
        }
        for &value in &normalized_priors {
            low = low.min(value);
            high = high.max(value);
        }
        if config.column_normalization {
            high = 1.0;
        }
        // `partial_cmp` keeps NaN bounds (no ordering) on the degenerate
        // path, exactly like the old `!(low < high)`.
        if low.partial_cmp(&high) != Some(std::cmp::Ordering::Less) {
            // Fully uniform model (every column identical): give the quantizer
            // a non-degenerate range one natural-log unit wide.
            low = high - 1.0;
        }
        let quantizer = UniformQuantizer::with_bits(low, high, config.likelihood_bits)?;

        let likelihood_levels: Vec<Vec<Vec<usize>>> = normalized_likelihoods
            .iter()
            .map(|per_feature| {
                per_feature
                    .iter()
                    .map(|per_bin| per_bin.iter().map(|&v| quantizer.quantize(v)).collect())
                    .collect()
            })
            .collect();
        let prior_levels: Vec<usize> = normalized_priors
            .iter()
            .map(|&v| quantizer.quantize(v))
            .collect();

        Ok(Self {
            config,
            discretizer,
            quantizer,
            likelihood_levels,
            prior_levels,
            uniform_prior,
            n_classes,
            n_features,
        })
    }

    /// The quantization configuration.
    pub fn config(&self) -> &QuantConfig {
        &self.config
    }

    /// The fitted feature discretizer.
    pub fn discretizer(&self) -> &FeatureDiscretizer {
        &self.discretizer
    }

    /// The fitted likelihood quantizer.
    pub fn quantizer(&self) -> &UniformQuantizer {
        &self.quantizer
    }

    /// Number of classes (events).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features (evidence nodes).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Whether the underlying model has a uniform class prior, in which case
    /// the crossbar's prior column can be omitted (Fig. 8(b)).
    pub fn has_uniform_prior(&self) -> bool {
        self.uniform_prior
    }

    /// Quantized level stored for `(class, feature, bin)`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] for out-of-range indices.
    pub fn likelihood_level(&self, class: usize, feature: usize, bin: usize) -> Result<usize> {
        self.likelihood_levels
            .get(class)
            .ok_or(QuantError::UnknownIndex {
                kind: "class",
                index: class,
            })?
            .get(feature)
            .ok_or(QuantError::UnknownIndex {
                kind: "feature",
                index: feature,
            })?
            .get(bin)
            .copied()
            .ok_or(QuantError::UnknownIndex {
                kind: "bin",
                index: bin,
            })
    }

    /// Quantized level stored for the prior of one class.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] for an out-of-range class.
    pub fn prior_level(&self, class: usize) -> Result<usize> {
        self.prior_levels
            .get(class)
            .copied()
            .ok_or(QuantError::UnknownIndex {
                kind: "class",
                index: class,
            })
    }

    /// Discretizes a continuous sample into per-feature bin indices (which
    /// bitline of each likelihood block to activate).
    ///
    /// # Errors
    ///
    /// Propagates discretizer errors.
    pub fn discretize_sample(&self, sample: &[f64]) -> Result<Vec<usize>> {
        self.discretizer.discretize_sample(sample)
    }

    /// Discretizes a continuous sample into `out` (cleared first), reusing
    /// the caller's allocation across samples.
    ///
    /// # Errors
    ///
    /// Propagates discretizer errors.
    pub fn discretize_sample_into(&self, sample: &[f64], out: &mut Vec<usize>) -> Result<()> {
        self.discretizer.discretize_sample_into(sample, out)
    }

    /// Quantized log-posterior score of every class for one sample, computed
    /// in software (the idealized version of the crossbar accumulation).
    ///
    /// # Errors
    ///
    /// Propagates discretization and lookup errors.
    pub fn log_posterior_scores(&self, sample: &[f64]) -> Result<Vec<f64>> {
        let bins = self.discretize_sample(sample)?;
        let mut scores = Vec::with_capacity(self.n_classes);
        for class in 0..self.n_classes {
            let mut score = self.quantizer.dequantize(self.prior_levels[class])?;
            for (feature, &bin) in bins.iter().enumerate() {
                let level = self.likelihood_level(class, feature, bin)?;
                score += self.quantizer.dequantize(level)?;
            }
            scores.push(score);
        }
        Ok(scores)
    }

    /// Predicts the maximum-posterior class for one sample.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantizedGnbc::log_posterior_scores`] errors.
    pub fn predict(&self, sample: &[f64]) -> Result<usize> {
        let scores = self.log_posterior_scores(sample)?;
        Ok(argmax(&scores).expect("at least one class"))
    }

    /// Classification accuracy of the quantized software model on a dataset.
    ///
    /// # Errors
    ///
    /// Propagates per-sample prediction errors.
    pub fn score(&self, dataset: &Dataset) -> Result<f64> {
        let mut correct = 0usize;
        for (sample, label) in dataset.iter() {
            if self.predict(sample)? == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / dataset.n_samples() as f64)
    }

    /// Quantized level stored at one crossbar-ordered coordinate: column 0 is
    /// the prior (when `include_prior`), followed by `n_features` blocks of
    /// `2^Q_f` likelihood columns.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] for coordinates outside the
    /// crossbar-ordered matrix.
    pub fn level_at(&self, class: usize, column: usize, include_prior: bool) -> Result<usize> {
        let bins = self.discretizer.bins();
        if include_prior && column == 0 {
            return self.prior_level(class);
        }
        let offset =
            column
                .checked_sub(usize::from(include_prior))
                .ok_or(QuantError::UnknownIndex {
                    kind: "column",
                    index: column,
                })?;
        let feature = offset / bins;
        if feature >= self.n_features {
            return Err(QuantError::UnknownIndex {
                kind: "column",
                index: column,
            });
        }
        self.likelihood_level(class, feature, offset % bins)
    }

    /// Tile-aware view of the level matrix: the quantized levels of one
    /// rectangular block of the crossbar-ordered matrix (`classes` rows ×
    /// crossbar `columns`), the programming source for one fabric tile.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] when the block reaches outside
    /// the matrix.
    pub fn level_matrix_block(
        &self,
        include_prior: bool,
        classes: std::ops::Range<usize>,
        columns: std::ops::Range<usize>,
    ) -> Result<Vec<Vec<usize>>> {
        classes
            .map(|class| {
                columns
                    .clone()
                    .map(|column| self.level_at(class, column, include_prior))
                    .collect()
            })
            .collect()
    }

    /// Cell-level matrix of quantized levels in crossbar column order:
    /// one optional prior column followed by `n_features` blocks of
    /// `2^Q_f` likelihood columns, one row per class.
    ///
    /// `include_prior` selects whether the prior column is emitted; the paper
    /// omits it when the prior is uniform.
    pub fn level_matrix(&self, include_prior: bool) -> Vec<Vec<usize>> {
        let bins = self.discretizer.bins();
        (0..self.n_classes)
            .map(|class| {
                let mut row =
                    Vec::with_capacity(usize::from(include_prior) + self.n_features * bins);
                if include_prior {
                    row.push(self.prior_levels[class]);
                }
                for feature in 0..self.n_features {
                    for bin in 0..bins {
                        row.push(self.likelihood_levels[class][feature][bin]);
                    }
                }
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;

    fn trained_iris() -> (GaussianNaiveBayes, Dataset, Dataset) {
        let dataset = iris_like(21).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(21)).unwrap();
        let model = GaussianNaiveBayes::fit(&split.train).unwrap();
        (model, split.train, split.test)
    }

    #[test]
    fn config_validation() {
        assert!(QuantConfig::new(0, 2).validate().is_err());
        assert!(QuantConfig::new(4, 0).validate().is_err());
        assert!(QuantConfig::new(17, 2).validate().is_err());
        assert!(QuantConfig::new(4, 2).with_floor(0.0).validate().is_err());
        assert!(QuantConfig::new(4, 2).with_floor(1.5).validate().is_err());
        assert!(QuantConfig::febim_optimal().validate().is_ok());
        assert_eq!(QuantConfig::febim_optimal().feature_levels(), 16);
        assert_eq!(QuantConfig::febim_optimal().likelihood_levels(), 4);
    }

    #[test]
    fn quantized_model_has_expected_shape() {
        let (model, train, _) = trained_iris();
        let quantized =
            QuantizedGnbc::quantize(&model, &train, QuantConfig::febim_optimal()).unwrap();
        assert_eq!(quantized.n_classes(), 3);
        assert_eq!(quantized.n_features(), 4);
        assert!(quantized.has_uniform_prior());
        assert_eq!(quantized.quantizer().levels(), 4);
        assert_eq!(quantized.discretizer().bins(), 16);
        // Every stored level is a valid quantizer level.
        for class in 0..3 {
            assert!(quantized.prior_level(class).unwrap() < 4);
            for feature in 0..4 {
                for bin in 0..16 {
                    assert!(quantized.likelihood_level(class, feature, bin).unwrap() < 4);
                }
            }
        }
    }

    #[test]
    fn paper_operating_point_keeps_accuracy_close_to_baseline() {
        // Fig. 8(a): Q_f = 4 bit, Q_l = 2 bit loses less than ~1 % accuracy
        // relative to the FP64 software baseline. Allow a slightly wider
        // margin for the synthetic dataset.
        let (model, train, test) = trained_iris();
        let baseline = model.score(&test).unwrap();
        let quantized =
            QuantizedGnbc::quantize(&model, &train, QuantConfig::febim_optimal()).unwrap();
        let quantized_accuracy = quantized.score(&test).unwrap();
        assert!(
            baseline - quantized_accuracy < 0.05,
            "baseline {baseline} quantized {quantized_accuracy}"
        );
        assert!(quantized_accuracy > 0.85, "quantized {quantized_accuracy}");
    }

    #[test]
    fn higher_precision_does_not_hurt() {
        let (model, train, test) = trained_iris();
        let coarse = QuantizedGnbc::quantize(&model, &train, QuantConfig::new(2, 2))
            .unwrap()
            .score(&test)
            .unwrap();
        let fine = QuantizedGnbc::quantize(&model, &train, QuantConfig::new(8, 8))
            .unwrap()
            .score(&test)
            .unwrap();
        assert!(fine + 1e-9 >= coarse - 0.1, "coarse {coarse} fine {fine}");
        assert!(fine > 0.85);
    }

    #[test]
    fn mismatched_dataset_rejected() {
        let (model, _, _) = trained_iris();
        let other = febim_data::synthetic::wine_like(3).unwrap();
        assert!(matches!(
            QuantizedGnbc::quantize(&model, &other, QuantConfig::febim_optimal()),
            Err(QuantError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn unknown_indices_rejected() {
        let (model, train, _) = trained_iris();
        let quantized =
            QuantizedGnbc::quantize(&model, &train, QuantConfig::febim_optimal()).unwrap();
        assert!(quantized.likelihood_level(9, 0, 0).is_err());
        assert!(quantized.likelihood_level(0, 9, 0).is_err());
        assert!(quantized.likelihood_level(0, 0, 99).is_err());
        assert!(quantized.prior_level(9).is_err());
        assert!(quantized.predict(&[1.0]).is_err());
    }

    #[test]
    fn level_matrix_shapes() {
        let (model, train, _) = trained_iris();
        let quantized =
            QuantizedGnbc::quantize(&model, &train, QuantConfig::febim_optimal()).unwrap();
        let with_prior = quantized.level_matrix(true);
        let without_prior = quantized.level_matrix(false);
        assert_eq!(with_prior.len(), 3);
        assert_eq!(with_prior[0].len(), 1 + 4 * 16);
        assert_eq!(without_prior[0].len(), 64);
        // The prior column of a uniform-prior model stores the same level for
        // every class.
        let prior_levels: Vec<usize> = with_prior.iter().map(|row| row[0]).collect();
        assert!(prior_levels.iter().all(|&l| l == prior_levels[0]));
    }

    #[test]
    fn normalization_ablation_runs_and_costs_accuracy_at_low_precision() {
        // The paper argues the Eq. (6) column normalization enhances the
        // contrast between posteriors under aggressive quantization. The
        // ablation path must work, and with 2-bit likelihoods the normalized
        // variant should be at least as accurate (up to noise) as the
        // unnormalized one.
        let (model, train, test) = trained_iris();
        let normalized = QuantizedGnbc::quantize(&model, &train, QuantConfig::new(4, 2))
            .unwrap()
            .score(&test)
            .unwrap();
        let ablated = QuantizedGnbc::quantize(
            &model,
            &train,
            QuantConfig::new(4, 2).without_column_normalization(),
        )
        .unwrap()
        .score(&test)
        .unwrap();
        assert!(ablated > 0.3, "ablated accuracy {ablated}");
        assert!(
            normalized >= ablated - 0.05,
            "normalized {normalized} vs ablated {ablated}"
        );
    }

    #[test]
    fn single_valued_feature_gets_a_degenerate_mapping() {
        // Regression: a constant feature used to feed ln(0-width) ≈ -744
        // into the quantizer range, flattening every other feature's levels
        // on the unnormalized path. It must instead map to one neutral level
        // and leave the discriminative features intact.
        let (model_src, train_src, test_src) = trained_iris();
        let widen = |data: &Dataset| {
            let samples: Vec<Vec<f64>> = data
                .samples()
                .iter()
                .map(|s| {
                    let mut s = s.clone();
                    s.push(42.0);
                    s
                })
                .collect();
            let mut names: Vec<String> = (0..data.n_features()).map(|f| format!("f{f}")).collect();
            names.push("constant".to_string());
            Dataset::new(
                "widened",
                names,
                data.n_classes(),
                samples,
                data.labels().to_vec(),
            )
            .unwrap()
        };
        let train = widen(&train_src);
        let test = widen(&test_src);
        let model = GaussianNaiveBayes::fit(&train).unwrap();
        for config in [
            QuantConfig::febim_optimal(),
            QuantConfig::febim_optimal().without_column_normalization(),
        ] {
            let quantized = QuantizedGnbc::quantize(&model, &train, config).unwrap();
            // The degenerate feature maps every class to one shared level in
            // every bin: no discrimination, no range damage.
            let constant = quantized.n_features() - 1;
            let level = quantized.likelihood_level(0, constant, 0).unwrap();
            for class in 0..quantized.n_classes() {
                for bin in 0..quantized.discretizer().bins() {
                    assert_eq!(
                        quantized.likelihood_level(class, constant, bin).unwrap(),
                        level
                    );
                }
            }
            // The quantizer range stays in the truncated-log regime instead
            // of collapsing to ln(f64::MIN_POSITIVE) ≈ -744.
            assert!(
                quantized.quantizer().low() > -50.0,
                "quantizer low {} poisoned by the zero-width bin",
                quantized.quantizer().low()
            );
            // The other features still discriminate.
            let accuracy = quantized.score(&test).unwrap();
            assert!(accuracy > 0.8, "accuracy collapsed to {accuracy}");
        }
        // Baseline: same data without the constant feature scores the same.
        let baseline =
            QuantizedGnbc::quantize(&model_src, &train_src, QuantConfig::febim_optimal())
                .unwrap()
                .score(&test_src)
                .unwrap();
        let widened = QuantizedGnbc::quantize(&model, &train, QuantConfig::febim_optimal())
            .unwrap()
            .score(&test)
            .unwrap();
        assert!(
            (baseline - widened).abs() < 0.05,
            "baseline {baseline} vs widened {widened}"
        );
    }

    #[test]
    fn quantized_predictions_follow_discretized_evidence() {
        let (model, train, test) = trained_iris();
        let quantized =
            QuantizedGnbc::quantize(&model, &train, QuantConfig::febim_optimal()).unwrap();
        let sample = test.sample(0).unwrap();
        let bins = quantized.discretize_sample(sample).unwrap();
        assert_eq!(bins.len(), 4);
        for &bin in &bins {
            assert!(bin < 16);
        }
        let scores = quantized.log_posterior_scores(sample).unwrap();
        assert_eq!(scores.len(), 3);
        let prediction = quantized.predict(sample).unwrap();
        assert_eq!(prediction, argmax(&scores).unwrap());
    }
}
