//! Linear mapping between quantized probability levels and FeFET read
//! currents / write configurations (the right half of Fig. 4).

use serde::{Deserialize, Serialize};

use febim_device::{LevelProgrammer, ProgrammedState};

use crate::errors::{QuantError, Result};

/// Linear map from quantized-level indices to target FeFET read currents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelCurrentMap {
    /// Read current of level 0, in amperes (paper: 0.1 µA).
    pub min_current: f64,
    /// Read current of the highest level, in amperes (paper: 1.0 µA).
    pub max_current: f64,
    /// Number of levels.
    pub levels: usize,
}

impl LevelCurrentMap {
    /// The paper's 0.1 µA – 1.0 µA window with the given number of levels.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for fewer than two levels.
    pub fn febim_default(levels: usize) -> Result<Self> {
        Self::new(0.1e-6, 1.0e-6, levels)
    }

    /// Creates a custom map.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] when the window is empty or
    /// fewer than two levels are requested.
    pub fn new(min_current: f64, max_current: f64, levels: usize) -> Result<Self> {
        if !(min_current > 0.0 && max_current > min_current) {
            return Err(QuantError::InvalidParameter {
                name: "min_current/max_current",
                reason: "current window must satisfy 0 < min < max".to_string(),
            });
        }
        if levels < 2 {
            return Err(QuantError::InvalidParameter {
                name: "levels",
                reason: "at least two levels are required".to_string(),
            });
        }
        Ok(Self {
            min_current,
            max_current,
            levels,
        })
    }

    /// Target read current of a level.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] for a non-existent level.
    pub fn current_for_level(&self, level: usize) -> Result<f64> {
        if level >= self.levels {
            return Err(QuantError::UnknownIndex {
                kind: "level",
                index: level,
            });
        }
        let fraction = level as f64 / (self.levels - 1) as f64;
        Ok(self.min_current + fraction * (self.max_current - self.min_current))
    }

    /// Target read currents of a tile-sized block of quantized levels (the
    /// per-tile analogue of mapping the whole level matrix): `None` entries
    /// (erased cells) map to zero current.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] for any level outside the map.
    pub fn block_currents(&self, levels: &[Vec<Option<usize>>]) -> Result<Vec<Vec<f64>>> {
        levels
            .iter()
            .map(|row| {
                row.iter()
                    .map(|level| match level {
                        Some(level) => self.current_for_level(*level),
                        None => Ok(0.0),
                    })
                    .collect()
            })
            .collect()
    }

    /// Builds the corresponding device-level programmer so levels can be
    /// turned into write-pulse configurations.
    ///
    /// # Errors
    ///
    /// Propagates device-parameter validation errors.
    pub fn to_programmer(&self, params: febim_device::FeFetParams) -> Result<LevelProgrammer> {
        Ok(LevelProgrammer::new(
            params,
            self.levels,
            self.min_current,
            self.max_current,
        )?)
    }

    /// Programmed-state descriptors (target current, polarization, pulse
    /// count) for every level, using the calibrated device parameters — the
    /// data behind Fig. 4(b).
    ///
    /// # Errors
    ///
    /// Propagates device-model errors.
    pub fn programmed_states(&self) -> Result<Vec<ProgrammedState>> {
        let programmer = self.to_programmer(febim_device::FeFetParams::febim_calibrated())?;
        Ok(programmer.all_states()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_currents_map_cell_by_cell_with_erased_cells_at_zero() {
        let map = LevelCurrentMap::febim_default(4).unwrap();
        let block = vec![vec![Some(0), Some(3), None], vec![None, Some(1), Some(2)]];
        let currents = map.block_currents(&block).unwrap();
        for (row, row_levels) in block.iter().enumerate() {
            for (column, level) in row_levels.iter().enumerate() {
                let expected = match level {
                    Some(level) => map.current_for_level(*level).unwrap(),
                    None => 0.0,
                };
                assert_eq!(currents[row][column], expected);
            }
        }
        assert!(map.block_currents(&[vec![Some(99)]]).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(LevelCurrentMap::new(0.0, 1e-6, 4).is_err());
        assert!(LevelCurrentMap::new(1e-6, 1e-7, 4).is_err());
        assert!(LevelCurrentMap::new(1e-7, 1e-6, 1).is_err());
        assert!(LevelCurrentMap::febim_default(10).is_ok());
    }

    #[test]
    fn ten_levels_span_the_paper_window() {
        let map = LevelCurrentMap::febim_default(10).unwrap();
        assert!((map.current_for_level(0).unwrap() - 0.1e-6).abs() < 1e-15);
        assert!((map.current_for_level(9).unwrap() - 1.0e-6).abs() < 1e-15);
        assert!((map.current_for_level(5).unwrap() - 0.6e-6).abs() < 1e-12);
        assert!(map.current_for_level(10).is_err());
    }

    #[test]
    fn currents_are_monotone_in_level() {
        let map = LevelCurrentMap::febim_default(4).unwrap();
        let mut previous = 0.0;
        for level in 0..4 {
            let current = map.current_for_level(level).unwrap();
            assert!(current > previous);
            previous = current;
        }
    }

    #[test]
    fn programmed_states_match_the_map() {
        let map = LevelCurrentMap::febim_default(10).unwrap();
        let states = map.programmed_states().unwrap();
        assert_eq!(states.len(), 10);
        for (level, state) in states.iter().enumerate() {
            let expected = map.current_for_level(level).unwrap();
            assert!((state.target_current - expected).abs() / expected < 1e-9);
        }
        // Pulse counts grow with the level (Fig. 4(b)).
        for pair in states.windows(2) {
            assert!(pair[1].write_config.pulse_count > pair[0].write_config.pulse_count);
        }
    }
}
