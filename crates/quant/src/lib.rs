//! # febim-quant
//!
//! The probability quantization and mapping pipeline of FeBiM (Sec. 3.3 and
//! Fig. 4 of the paper): probabilities are truncated, converted to the log
//! domain, column-normalized (Eq. 6), uniformly quantized, and linearly
//! mapped to discrete FeFET read currents.
//!
//! The central type is [`QuantizedGnbc`], the quantized form of a trained
//! Gaussian naive Bayes classifier. It serves both as a software model (to
//! measure pure quantization loss, Fig. 7 / Fig. 8(a)) and as the programming
//! source for the crossbar in `febim-core`.
//!
//! # Example
//!
//! ```
//! use febim_bayes::GaussianNaiveBayes;
//! use febim_data::{rng::seeded_rng, split::stratified_split, synthetic::iris_like};
//! use febim_quant::{QuantConfig, QuantizedGnbc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = iris_like(1)?;
//! let split = stratified_split(&dataset, 0.7, &mut seeded_rng(1))?;
//! let model = GaussianNaiveBayes::fit(&split.train)?;
//! let quantized = QuantizedGnbc::quantize(&model, &split.train, QuantConfig::febim_optimal())?;
//! let accuracy = quantized.score(&split.test)?;
//! assert!(accuracy > 0.8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod discretize;
pub mod errors;
pub mod mapping;
pub mod pipeline;
pub mod quantizer;
pub mod transform;

pub use discretize::FeatureDiscretizer;
pub use errors::{QuantError, Result};
pub use mapping::LevelCurrentMap;
pub use pipeline::{QuantConfig, QuantizedGnbc};
pub use quantizer::UniformQuantizer;
pub use transform::{column_normalize, column_normalized, truncate_probability, truncated_log};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Truncated probabilities always stay inside [floor, 1].
        #[test]
        fn truncation_is_bounded(p in -1.0f64..2.0, floor in 1e-6f64..1.0) {
            let t = truncate_probability(p, floor);
            prop_assert!(t >= floor);
            prop_assert!(t <= 1.0);
        }

        /// Column normalization makes the maximum exactly one and preserves
        /// pairwise differences.
        #[test]
        fn normalization_invariants(
            column in proptest::collection::vec(-20.0f64..0.0, 1..8)
        ) {
            let normalized = column_normalized(&column);
            let max = normalized.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9);
            for i in 0..column.len() {
                for j in 0..column.len() {
                    let original = column[i] - column[j];
                    let shifted = normalized[i] - normalized[j];
                    prop_assert!((original - shifted).abs() < 1e-9);
                }
            }
        }

        /// Quantize / dequantize error never exceeds half a step.
        #[test]
        fn quantizer_round_trip(
            low in -10.0f64..0.0,
            width in 0.5f64..10.0,
            bits in 1u32..8,
            value in -12.0f64..12.0,
        ) {
            let q = UniformQuantizer::with_bits(low, low + width, bits).unwrap();
            let reconstructed = q.reconstruct(value);
            let clamped = value.clamp(q.low(), q.high());
            prop_assert!((reconstructed - clamped).abs() <= q.step() / 2.0 + 1e-9);
        }

        /// Discretized bins are always inside the configured range.
        #[test]
        fn discretizer_bins_in_range(seed in 0u64..100, bits in 1u32..6, value in -10.0f64..20.0) {
            let dataset = febim_data::synthetic::iris_like(seed).unwrap();
            let discretizer = FeatureDiscretizer::fit(&dataset, bits).unwrap();
            for feature in 0..dataset.n_features() {
                let bin = discretizer.bin(feature, value).unwrap();
                prop_assert!(bin < discretizer.bins());
            }
        }
    }
}
