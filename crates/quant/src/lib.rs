//! # febim-quant
//!
//! The probability quantization and mapping pipeline of FeBiM (Sec. 3.3 and
//! Fig. 4 of the paper): probabilities are truncated, converted to the log
//! domain, column-normalized (Eq. 6), uniformly quantized, and linearly
//! mapped to discrete FeFET read currents.
//!
//! The central type is [`QuantizedGnbc`], the quantized form of a trained
//! Gaussian naive Bayes classifier. It serves both as a software model (to
//! measure pure quantization loss, Fig. 7 / Fig. 8(a)) and as the programming
//! source for the crossbar in `febim-core`.
//!
//! # Example
//!
//! ```
//! use febim_bayes::GaussianNaiveBayes;
//! use febim_data::{rng::seeded_rng, split::stratified_split, synthetic::iris_like};
//! use febim_quant::{QuantConfig, QuantizedGnbc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = iris_like(1)?;
//! let split = stratified_split(&dataset, 0.7, &mut seeded_rng(1))?;
//! let model = GaussianNaiveBayes::fit(&split.train)?;
//! let quantized = QuantizedGnbc::quantize(&model, &split.train, QuantConfig::febim_optimal())?;
//! let accuracy = quantized.score(&split.test)?;
//! assert!(accuracy > 0.8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod discretize;
pub mod encoding;
pub mod errors;
pub mod mapping;
pub mod pipeline;
pub mod quantizer;
pub mod transform;

pub use discretize::FeatureDiscretizer;
pub use encoding::{
    bit_offset_of, digit_slot_of, pack_digits, pack_feature_levels, packed_column_of, unpack_digit,
    Encoding, MAX_BITPLANE_BITS,
};
pub use errors::{QuantError, Result};
pub use mapping::LevelCurrentMap;
pub use pipeline::{QuantConfig, QuantizedGnbc};
pub use quantizer::UniformQuantizer;
pub use transform::{column_normalize, column_normalized, truncate_probability, truncated_log};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Truncated probabilities always stay inside [floor, 1].
        #[test]
        fn truncation_is_bounded(p in -1.0f64..2.0, floor in 1e-6f64..1.0) {
            let t = truncate_probability(p, floor);
            prop_assert!(t >= floor);
            prop_assert!(t <= 1.0);
        }

        /// Column normalization makes the maximum exactly one and preserves
        /// pairwise differences.
        #[test]
        fn normalization_invariants(
            column in proptest::collection::vec(-20.0f64..0.0, 1..8)
        ) {
            let normalized = column_normalized(&column);
            let max = normalized.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9);
            for i in 0..column.len() {
                for j in 0..column.len() {
                    let original = column[i] - column[j];
                    let shifted = normalized[i] - normalized[j];
                    prop_assert!((original - shifted).abs() < 1e-9);
                }
            }
        }

        /// Quantize / dequantize error never exceeds half a step.
        #[test]
        fn quantizer_round_trip(
            low in -10.0f64..0.0,
            width in 0.5f64..10.0,
            bits in 1u32..8,
            value in -12.0f64..12.0,
        ) {
            let q = UniformQuantizer::with_bits(low, low + width, bits).unwrap();
            let reconstructed = q.reconstruct(value);
            let clamped = value.clamp(q.low(), q.high());
            prop_assert!((reconstructed - clamped).abs() <= q.step() / 2.0 + 1e-9);
        }

        /// Discretized bins are always inside the configured range.
        #[test]
        fn discretizer_bins_in_range(seed in 0u64..100, bits in 1u32..6, value in -10.0f64..20.0) {
            let dataset = febim_data::synthetic::iris_like(seed).unwrap();
            let discretizer = FeatureDiscretizer::fit(&dataset, bits).unwrap();
            for feature in 0..dataset.n_features() {
                let bin = discretizer.bin(feature, value).unwrap();
                prop_assert!(bin < discretizer.bins());
            }
        }

        /// The crossbar-ordered views of a quantized model agree cell for
        /// cell under any bit-widths and any tile shape: `level_at` matches
        /// the flat `level_matrix`, every tile-shaped `level_matrix_block`
        /// of a full grid partition is the corresponding flat window, and
        /// mapping a block to read currents round-trips identically to
        /// mapping the flat matrix.
        #[test]
        fn level_views_agree_cell_for_cell(
            seed in 0u64..20,
            feature_bits in 1u32..5,
            likelihood_bits in 1u32..4,
            tile_rows in 1usize..4,
            tile_columns in 1usize..20,
            include_prior in proptest::bool::ANY,
        ) {
            let dataset = febim_data::synthetic::iris_like(seed).unwrap();
            let split = febim_data::split::stratified_split(
                &dataset, 0.7, &mut febim_data::rng::seeded_rng(seed)).unwrap();
            let model = febim_bayes::GaussianNaiveBayes::fit(&split.train).unwrap();
            let quantized = QuantizedGnbc::quantize(
                &model, &split.train, QuantConfig::new(feature_bits, likelihood_bits)).unwrap();
            let flat = quantized.level_matrix(include_prior);
            let rows = quantized.n_classes();
            let columns =
                usize::from(include_prior) + quantized.n_features() * quantized.discretizer().bins();
            prop_assert_eq!(flat.len(), rows);
            prop_assert_eq!(flat[0].len(), columns);
            for (class, row) in flat.iter().enumerate() {
                for (column, &level) in row.iter().enumerate() {
                    prop_assert_eq!(
                        quantized.level_at(class, column, include_prior).unwrap(),
                        level
                    );
                }
            }
            // Partition the matrix into (tile_rows x tile_columns) tiles, as
            // a fabric deployment would, and check every block view.
            let map = LevelCurrentMap::febim_default(quantized.quantizer().levels()).unwrap();
            for row_start in (0..rows).step_by(tile_rows) {
                for col_start in (0..columns).step_by(tile_columns) {
                    let row_end = rows.min(row_start + tile_rows);
                    let col_end = columns.min(col_start + tile_columns);
                    let block = quantized
                        .level_matrix_block(include_prior, row_start..row_end, col_start..col_end)
                        .unwrap();
                    prop_assert_eq!(block.len(), row_end - row_start);
                    for (r, block_row) in block.iter().enumerate() {
                        prop_assert_eq!(block_row.len(), col_end - col_start);
                        for (c, &level) in block_row.iter().enumerate() {
                            prop_assert_eq!(level, flat[row_start + r][col_start + c]);
                        }
                    }
                    // Mapping round trip: the block's programmed currents are
                    // the flat matrix's currents for the same cells.
                    let occupied: Vec<Vec<Option<usize>>> = block
                        .iter()
                        .map(|row| row.iter().map(|&level| Some(level)).collect())
                        .collect();
                    let currents = map.block_currents(&occupied).unwrap();
                    for (r, row_currents) in currents.iter().enumerate() {
                        for (c, &current) in row_currents.iter().enumerate() {
                            let expected = map
                                .current_for_level(flat[row_start + r][col_start + c])
                                .unwrap();
                            prop_assert_eq!(current, expected);
                        }
                    }
                }
            }
            // Blocks reaching outside the matrix are rejected.
            prop_assert!(quantized
                .level_matrix_block(include_prior, 0..rows + 1, 0..columns)
                .is_err());
            prop_assert!(quantized
                .level_matrix_block(include_prior, 0..rows, 0..columns + 1)
                .is_err());
        }

        /// Discretize → level round trip: for any sample, the crossbar
        /// column each feature activates stores exactly the likelihood level
        /// of that feature's discretized bin, for every class — the
        /// invariant that makes the crossbar accumulation equal the
        /// quantized software sum.
        #[test]
        fn discretized_samples_activate_the_right_levels(
            seed in 0u64..20,
            feature_bits in 1u32..5,
            likelihood_bits in 1u32..4,
            index in 0usize..105,
            include_prior in proptest::bool::ANY,
        ) {
            let dataset = febim_data::synthetic::iris_like(seed).unwrap();
            let split = febim_data::split::stratified_split(
                &dataset, 0.7, &mut febim_data::rng::seeded_rng(seed)).unwrap();
            let model = febim_bayes::GaussianNaiveBayes::fit(&split.train).unwrap();
            let quantized = QuantizedGnbc::quantize(
                &model, &split.train, QuantConfig::new(feature_bits, likelihood_bits)).unwrap();
            let sample = split.test.sample(index % split.test.n_samples()).unwrap();
            let bins = quantized.discretize_sample(sample).unwrap();
            let mut reused = vec![99; 1];
            quantized.discretize_sample_into(sample, &mut reused).unwrap();
            prop_assert_eq!(&bins, &reused);
            prop_assert_eq!(bins.len(), quantized.n_features());
            let bin_count = quantized.discretizer().bins();
            for (feature, &bin) in bins.iter().enumerate() {
                prop_assert!(bin < bin_count);
                let column = usize::from(include_prior) + feature * bin_count + bin;
                for class in 0..quantized.n_classes() {
                    prop_assert_eq!(
                        quantized.level_at(class, column, include_prior).unwrap(),
                        quantized.likelihood_level(class, feature, bin).unwrap()
                    );
                }
            }
        }
    }
}
