//! Feature discretization: mapping continuous evidence values onto the
//! `2^Q_f` bitlines of each likelihood block.

use serde::{Deserialize, Serialize};

use febim_data::Dataset;

use crate::errors::{QuantError, Result};

/// Per-feature uniform binning fitted on training data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDiscretizer {
    minimums: Vec<f64>,
    maximums: Vec<f64>,
    bins: usize,
}

impl FeatureDiscretizer {
    /// Fits the discretizer on the feature ranges of a training dataset,
    /// using `2^feature_bits` uniform bins per feature.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidPrecision`] for zero or more than 16 bits.
    pub fn fit(dataset: &Dataset, feature_bits: u32) -> Result<Self> {
        if feature_bits == 0 || feature_bits > 16 {
            return Err(QuantError::InvalidPrecision {
                kind: "feature",
                bits: feature_bits,
            });
        }
        let bins = 1usize << feature_bits;
        let mut minimums = Vec::with_capacity(dataset.n_features());
        let mut maximums = Vec::with_capacity(dataset.n_features());
        for feature in 0..dataset.n_features() {
            let (min, max) = dataset.feature_range(feature);
            minimums.push(min);
            maximums.push(max);
        }
        Ok(Self {
            minimums,
            maximums,
            bins,
        })
    }

    /// Number of bins (bitlines) per feature.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of features the discretizer was fitted on.
    pub fn n_features(&self) -> usize {
        self.minimums.len()
    }

    /// Whether a feature's fitted range is degenerate: a single distinct
    /// training value (or NaN bounds) leaves every bin zero-width, so all
    /// values collapse onto bin 0. The quantization pipeline gives such
    /// features a neutral single-level mapping instead of letting the
    /// zero bin width poison the log-domain dynamic range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] when the feature does not exist.
    pub fn is_degenerate(&self, feature: usize) -> Result<bool> {
        if feature >= self.n_features() {
            return Err(QuantError::UnknownIndex {
                kind: "feature",
                index: feature,
            });
        }
        let min = self.minimums[feature];
        let max = self.maximums[feature];
        Ok(max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater))
    }

    /// Bin index of one feature value; values outside the fitted range clamp
    /// to the first/last bin (as happens for unseen test samples).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] when the feature does not exist.
    pub fn bin(&self, feature: usize, value: f64) -> Result<usize> {
        if feature >= self.n_features() {
            return Err(QuantError::UnknownIndex {
                kind: "feature",
                index: feature,
            });
        }
        let min = self.minimums[feature];
        let max = self.maximums[feature];
        // `partial_cmp` keeps the NaN-bounds case (no ordering) on the
        // degenerate path, exactly like the old `!(max > min)`.
        if max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) || value.is_nan() {
            return Ok(0);
        }
        let normalized = ((value - min) / (max - min)).clamp(0.0, 1.0);
        let bin = (normalized * self.bins as f64) as usize;
        Ok(bin.min(self.bins - 1))
    }

    /// Centre value of one bin in the original feature units.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] for a bad feature or bin index.
    pub fn bin_center(&self, feature: usize, bin: usize) -> Result<f64> {
        if feature >= self.n_features() {
            return Err(QuantError::UnknownIndex {
                kind: "feature",
                index: feature,
            });
        }
        if bin >= self.bins {
            return Err(QuantError::UnknownIndex {
                kind: "bin",
                index: bin,
            });
        }
        let min = self.minimums[feature];
        let max = self.maximums[feature];
        let width = (max - min) / self.bins as f64;
        Ok(min + (bin as f64 + 0.5) * width)
    }

    /// Width of each bin for one feature.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] for a bad feature index.
    pub fn bin_width(&self, feature: usize) -> Result<f64> {
        if feature >= self.n_features() {
            return Err(QuantError::UnknownIndex {
                kind: "feature",
                index: feature,
            });
        }
        Ok((self.maximums[feature] - self.minimums[feature]) / self.bins as f64)
    }

    /// Discretizes a whole sample into per-feature bin indices.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::FeatureCountMismatch`] for a sample of the wrong
    /// length.
    pub fn discretize_sample(&self, sample: &[f64]) -> Result<Vec<usize>> {
        let mut bins = Vec::with_capacity(sample.len());
        self.discretize_sample_into(sample, &mut bins)?;
        Ok(bins)
    }

    /// Discretizes a whole sample into per-feature bin indices, written into
    /// `out` (cleared first) so batched callers reuse one allocation.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::FeatureCountMismatch`] for a sample of the wrong
    /// length.
    pub fn discretize_sample_into(&self, sample: &[f64], out: &mut Vec<usize>) -> Result<()> {
        if sample.len() != self.n_features() {
            return Err(QuantError::FeatureCountMismatch {
                expected: self.n_features(),
                found: sample.len(),
            });
        }
        out.clear();
        out.reserve(sample.len());
        for (feature, &value) in sample.iter().enumerate() {
            out.push(self.bin(feature, value)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::synthetic::iris_like;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec!["a".to_string(), "b".to_string()],
            2,
            vec![vec![0.0, -1.0], vec![10.0, 1.0], vec![5.0, 0.0]],
            vec![0, 1, 0],
        )
        .unwrap()
    }

    #[test]
    fn precision_validation() {
        assert!(FeatureDiscretizer::fit(&toy(), 0).is_err());
        assert!(FeatureDiscretizer::fit(&toy(), 17).is_err());
        assert_eq!(FeatureDiscretizer::fit(&toy(), 4).unwrap().bins(), 16);
    }

    #[test]
    fn bins_cover_the_fitted_range() {
        let d = FeatureDiscretizer::fit(&toy(), 2).unwrap();
        assert_eq!(d.bins(), 4);
        assert_eq!(d.bin(0, 0.0).unwrap(), 0);
        assert_eq!(d.bin(0, 10.0).unwrap(), 3);
        assert_eq!(d.bin(0, 4.9).unwrap(), 1);
        assert_eq!(d.bin(0, 5.1).unwrap(), 2);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let d = FeatureDiscretizer::fit(&toy(), 2).unwrap();
        assert_eq!(d.bin(0, -100.0).unwrap(), 0);
        assert_eq!(d.bin(0, 100.0).unwrap(), 3);
        assert_eq!(d.bin(0, f64::NAN).unwrap(), 0);
    }

    #[test]
    fn invalid_indices_rejected() {
        let d = FeatureDiscretizer::fit(&toy(), 2).unwrap();
        assert!(d.bin(5, 1.0).is_err());
        assert!(d.bin_center(5, 0).is_err());
        assert!(d.bin_center(0, 9).is_err());
        assert!(d.bin_width(5).is_err());
    }

    #[test]
    fn bin_centers_lie_inside_their_bins() {
        let d = FeatureDiscretizer::fit(&toy(), 3).unwrap();
        for bin in 0..d.bins() {
            let center = d.bin_center(0, bin).unwrap();
            assert_eq!(d.bin(0, center).unwrap(), bin);
        }
    }

    #[test]
    fn bin_width_matches_range() {
        let d = FeatureDiscretizer::fit(&toy(), 2).unwrap();
        assert!((d.bin_width(0).unwrap() - 2.5).abs() < 1e-12);
        assert!((d.bin_width(1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discretize_sample_validates_length() {
        let d = FeatureDiscretizer::fit(&toy(), 2).unwrap();
        assert!(d.discretize_sample(&[1.0]).is_err());
        let bins = d.discretize_sample(&[10.0, -1.0]).unwrap();
        assert_eq!(bins, vec![3, 0]);
    }

    #[test]
    fn constant_feature_maps_to_bin_zero() {
        let dataset = Dataset::new(
            "const",
            vec!["a".to_string()],
            1,
            vec![vec![2.0], vec![2.0]],
            vec![0, 0],
        )
        .unwrap();
        let d = FeatureDiscretizer::fit(&dataset, 3).unwrap();
        assert_eq!(d.bin(0, 2.0).unwrap(), 0);
        assert_eq!(d.bin(0, 100.0).unwrap(), 0);
        assert!(d.is_degenerate(0).unwrap());
        assert_eq!(d.bin_width(0).unwrap(), 0.0);
    }

    #[test]
    fn degeneracy_detection_matches_bin_widths() {
        let d = FeatureDiscretizer::fit(&toy(), 2).unwrap();
        assert!(!d.is_degenerate(0).unwrap());
        assert!(!d.is_degenerate(1).unwrap());
        assert!(d.is_degenerate(5).is_err());
    }

    #[test]
    fn iris_discretization_uses_all_bins() {
        let dataset = iris_like(2).unwrap();
        let d = FeatureDiscretizer::fit(&dataset, 4).unwrap();
        let mut used = vec![false; d.bins()];
        for sample in dataset.samples() {
            let bins = d.discretize_sample(sample).unwrap();
            for b in bins {
                used[b] = true;
            }
        }
        let used_count = used.iter().filter(|&&u| u).count();
        assert!(used_count > d.bins() / 2, "only {used_count} bins used");
    }
}
