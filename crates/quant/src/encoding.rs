//! Column encodings for the compiled crossbar: the paper's one-hot layout
//! and the multi-bit shift-add bit-plane packing.
//!
//! One-hot spends one column per `(feature, bin)` pair, so the array width
//! scales with `2^Q_f` per feature. The bit-plane encoding instead packs
//! `r = bits / Q_l` adjacent bins' quantized log-likelihood levels into one
//! multi-bit cell as a base-`2^Q_l` digit string:
//!
//! ```text
//! packed[j] = Σ_{i < r}  level(bin j·r + i) · 2^(i·Q_l)
//! ```
//!
//! so each feature needs only `ceil(bins / r)` physical columns. A read
//! activates one packed column per feature (exactly like one-hot activates
//! one bin column), senses `Q_l` bit planes of the stored digit, and the
//! sensing chain's shift-add merge reconstructs the same integer level sum
//! the one-hot read accumulates in the analog domain.
//!
//! The pack/unpack helpers here are the **round-trip contract**: for every
//! digit width and every level table, `unpack_digit(pack_digits(..))`
//! returns the original levels bit for bit. The crossbar and core crates
//! build on that contract to prove packed reads equal the unpacked oracle.

use serde::{Deserialize, Serialize};

use crate::errors::{QuantError, Result};

/// Widest bit-plane cell supported (an 8-bit multi-level FeFET is already
/// beyond demonstrated devices; wider cells would also overflow the
/// `2^Q_l`-ary digit arithmetic long before `usize` does).
pub const MAX_BITPLANE_BITS: u32 = 8;

/// How quantized log-likelihood levels are laid out across crossbar columns.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Encoding {
    /// The paper's layout: one column per `(feature, bin)`, each cell storing
    /// one `2^Q_l`-level likelihood; the wordline current is the level sum.
    #[default]
    OneHot,
    /// Multi-bit packing: each cell holds `bits` bits of capacity and stores
    /// `bits / Q_l` adjacent bins' levels as one base-`2^Q_l` digit string.
    /// Reads sense `Q_l` bit planes and merge them with shift-add.
    BitPlane {
        /// Bits of storage per cell (`2^bits` programmable states). Must be
        /// at least `Q_l` (one whole digit) and at most
        /// [`MAX_BITPLANE_BITS`].
        bits: u32,
    },
}

impl Encoding {
    /// Validates the encoding against the likelihood precision it must
    /// carry.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidPrecision`] for a bit-plane cell width
    /// outside `[1, 8]` and [`QuantError::InvalidParameter`] when the cell
    /// is too narrow to hold even one `Q_l`-bit digit.
    pub fn validate(&self, likelihood_bits: u32) -> Result<()> {
        match *self {
            Self::OneHot => Ok(()),
            Self::BitPlane { bits } => {
                if bits == 0 || bits > MAX_BITPLANE_BITS {
                    return Err(QuantError::InvalidPrecision {
                        kind: "bit-plane",
                        bits,
                    });
                }
                if bits < likelihood_bits {
                    return Err(QuantError::InvalidParameter {
                        name: "encoding",
                        reason: format!(
                            "a {bits}-bit cell cannot hold one {likelihood_bits}-bit \
                             likelihood digit"
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    /// Number of `likelihood_bits`-wide digits one cell carries: `1` for
    /// one-hot, `floor(bits / Q_l)` (at least one) for bit-plane.
    pub fn digits_per_cell(&self, likelihood_bits: u32) -> usize {
        match *self {
            Self::OneHot => 1,
            Self::BitPlane { bits } => ((bits / likelihood_bits.max(1)).max(1)) as usize,
        }
    }

    /// Physical columns needed per feature for `bins` evidence bins.
    pub fn columns_per_feature(&self, bins: usize, likelihood_bits: u32) -> usize {
        bins.div_ceil(self.digits_per_cell(likelihood_bits))
    }

    /// Programmable states each cell must support: the quantizer's level
    /// count for one-hot, `2^bits` for bit-plane.
    pub fn state_count(&self, likelihood_levels: usize) -> usize {
        match *self {
            Self::OneHot => likelihood_levels,
            Self::BitPlane { bits } => 1usize << bits,
        }
    }

    /// Number of bit planes one packed read senses (`Q_l`; one-hot reads are
    /// a single analog plane).
    pub fn planes(&self, likelihood_bits: u32) -> usize {
        match self {
            Self::OneHot => 1,
            Self::BitPlane { .. } => likelihood_bits as usize,
        }
    }

    /// Whether this encoding uses the packed shift-add read path.
    pub fn is_packed(&self) -> bool {
        matches!(self, Self::BitPlane { .. })
    }
}

/// Packs a digit string into one cell value: `digits[i]` lands at bit offset
/// `i · digit_bits`, little-endian in digit order.
///
/// # Errors
///
/// Returns [`QuantError::InvalidParameter`] when a digit does not fit in
/// `digit_bits` or the string overflows [`MAX_BITPLANE_BITS`] total bits.
pub fn pack_digits(digits: &[usize], digit_bits: u32) -> Result<usize> {
    let total_bits = digit_bits as usize * digits.len();
    if digit_bits == 0 || total_bits > MAX_BITPLANE_BITS as usize {
        return Err(QuantError::InvalidParameter {
            name: "digits",
            reason: format!(
                "{} digits of {digit_bits} bits exceed the {MAX_BITPLANE_BITS}-bit cell",
                digits.len()
            ),
        });
    }
    let mut packed = 0usize;
    for (slot, &digit) in digits.iter().enumerate() {
        if digit >= 1usize << digit_bits {
            return Err(QuantError::InvalidParameter {
                name: "digits",
                reason: format!("digit {digit} does not fit in {digit_bits} bits"),
            });
        }
        packed |= digit << (slot as u32 * digit_bits);
    }
    Ok(packed)
}

/// Extracts digit `slot` (bit offset `slot · digit_bits`) from a packed cell
/// value — the exact inverse of [`pack_digits`].
pub fn unpack_digit(packed: usize, slot: usize, digit_bits: u32) -> usize {
    (packed >> (slot as u32 * digit_bits)) & ((1usize << digit_bits) - 1)
}

/// The packed column a bin lands in when `digits_per_cell` bins share a cell.
pub fn packed_column_of(bin: usize, digits_per_cell: usize) -> usize {
    bin / digits_per_cell
}

/// The digit slot a bin occupies inside its packed column.
pub fn digit_slot_of(bin: usize, digits_per_cell: usize) -> usize {
    bin % digits_per_cell
}

/// Bit offset of a bin's digit inside its packed cell value.
pub fn bit_offset_of(bin: usize, digits_per_cell: usize, digit_bits: u32) -> u32 {
    digit_slot_of(bin, digits_per_cell) as u32 * digit_bits
}

/// Packs one feature's per-bin level row into its
/// `ceil(bins / digits_per_cell)` packed column values. Trailing slots of
/// the last column are zero.
///
/// # Errors
///
/// Propagates [`pack_digits`] errors.
pub fn pack_feature_levels(
    levels: &[usize],
    digits_per_cell: usize,
    digit_bits: u32,
) -> Result<Vec<usize>> {
    levels
        .chunks(digits_per_cell)
        .map(|chunk| pack_digits(chunk, digit_bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_is_the_identity_encoding() {
        let encoding = Encoding::OneHot;
        assert!(encoding.validate(2).is_ok());
        assert_eq!(encoding.digits_per_cell(2), 1);
        assert_eq!(encoding.columns_per_feature(16, 2), 16);
        assert_eq!(encoding.state_count(4), 4);
        assert_eq!(encoding.planes(2), 1);
        assert!(!encoding.is_packed());
        assert_eq!(Encoding::default(), Encoding::OneHot);
    }

    #[test]
    fn bit_plane_geometry_at_the_paper_operating_point() {
        // Q_l = 2 bit: a 4-bit cell packs two bins, an 8-bit cell four.
        let four = Encoding::BitPlane { bits: 4 };
        assert!(four.validate(2).is_ok());
        assert_eq!(four.digits_per_cell(2), 2);
        assert_eq!(four.columns_per_feature(16, 2), 8);
        assert_eq!(four.state_count(4), 16);
        assert_eq!(four.planes(2), 2);
        assert!(four.is_packed());
        let eight = Encoding::BitPlane { bits: 8 };
        assert_eq!(eight.digits_per_cell(2), 4);
        assert_eq!(eight.columns_per_feature(16, 2), 4);
        // Bins that do not divide evenly round the column count up.
        assert_eq!(eight.columns_per_feature(15, 2), 4);
        assert_eq!(eight.columns_per_feature(17, 2), 5);
    }

    #[test]
    fn validation_rejects_impossible_cells() {
        assert!(Encoding::BitPlane { bits: 0 }.validate(2).is_err());
        assert!(Encoding::BitPlane { bits: 9 }.validate(2).is_err());
        // A 2-bit cell cannot hold one 3-bit digit.
        assert!(Encoding::BitPlane { bits: 2 }.validate(3).is_err());
        // Exactly one digit is fine.
        assert!(Encoding::BitPlane { bits: 2 }.validate(2).is_ok());
    }

    #[test]
    fn pack_round_trips_by_hand() {
        // levels [3, 1] at 2-bit digits: 3 + 1·4 = 7.
        let packed = pack_digits(&[3, 1], 2).unwrap();
        assert_eq!(packed, 7);
        assert_eq!(unpack_digit(packed, 0, 2), 3);
        assert_eq!(unpack_digit(packed, 1, 2), 1);
    }

    #[test]
    fn pack_rejects_overflow() {
        assert!(pack_digits(&[4], 2).is_err());
        assert!(pack_digits(&[0; 5], 2).is_err());
        assert!(pack_digits(&[0], 0).is_err());
        assert!(pack_digits(&[1; 4], 2).is_ok());
    }

    #[test]
    fn feature_rows_pack_with_zero_padding() {
        let levels = [1usize, 2, 3, 0, 2];
        let packed = pack_feature_levels(&levels, 2, 2).unwrap();
        assert_eq!(packed.len(), 3);
        for (bin, &level) in levels.iter().enumerate() {
            assert_eq!(
                unpack_digit(packed[packed_column_of(bin, 2)], digit_slot_of(bin, 2), 2),
                level
            );
        }
        // The padding slot reads zero.
        assert_eq!(unpack_digit(packed[2], 1, 2), 0);
        assert_eq!(bit_offset_of(3, 2, 2), 2);
        assert_eq!(bit_offset_of(4, 2, 2), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pack → unpack is the identity for every digit width 1–8, any
        /// number of digits that fits the cell, and any digit values.
        #[test]
        fn pack_unpack_round_trip(
            digit_bits in 1u32..=8,
            raw in proptest::collection::vec(0usize..256, 1..9),
        ) {
            let capacity = (MAX_BITPLANE_BITS / digit_bits) as usize;
            let digits: Vec<usize> = raw
                .iter()
                .take(capacity)
                .map(|&d| d % (1usize << digit_bits))
                .collect();
            let packed = pack_digits(&digits, digit_bits).unwrap();
            prop_assert!(packed < 1usize << (digit_bits as usize * digits.len()));
            for (slot, &digit) in digits.iter().enumerate() {
                prop_assert_eq!(unpack_digit(packed, slot, digit_bits), digit);
            }
        }

        /// Feature-row packing places every bin at the coordinates the
        /// addressing helpers report, for any bin count and cell capacity.
        #[test]
        fn feature_row_addressing_agrees(
            digit_bits in 1u32..=4,
            bins in 1usize..64,
            seed in 0u64..1000,
        ) {
            let digits_per_cell = (MAX_BITPLANE_BITS / digit_bits) as usize;
            let levels: Vec<usize> = (0..bins)
                .map(|bin| {
                    // Cheap deterministic pseudo-levels: no RNG dependency.
                    (seed as usize)
                        .wrapping_mul(31)
                        .wrapping_add(bin * 7)
                        % (1usize << digit_bits)
                })
                .collect();
            let packed = pack_feature_levels(&levels, digits_per_cell, digit_bits).unwrap();
            prop_assert_eq!(packed.len(), bins.div_ceil(digits_per_cell));
            for (bin, &level) in levels.iter().enumerate() {
                let column = packed_column_of(bin, digits_per_cell);
                let slot = digit_slot_of(bin, digits_per_cell);
                prop_assert_eq!(unpack_digit(packed[column], slot, digit_bits), level);
                prop_assert_eq!(
                    bit_offset_of(bin, digits_per_cell, digit_bits),
                    slot as u32 * digit_bits
                );
            }
        }

        /// The encoding's geometry accounting is self-consistent: packed
        /// column counts shrink by exactly the digits-per-cell factor
        /// (rounded up) and never lose a bin.
        #[test]
        fn geometry_is_consistent(
            bits in 1u32..=8,
            likelihood_bits in 1u32..=8,
            bins in 1usize..512,
        ) {
            let likelihood_bits = likelihood_bits.min(bits);
            let encoding = Encoding::BitPlane { bits };
            prop_assert!(encoding.validate(likelihood_bits).is_ok());
            let r = encoding.digits_per_cell(likelihood_bits);
            prop_assert_eq!(r, (bits / likelihood_bits) as usize);
            let columns = encoding.columns_per_feature(bins, likelihood_bits);
            prop_assert!(columns * r >= bins);
            prop_assert!((columns - 1) * r < bins);
            prop_assert!(encoding.state_count(1 << likelihood_bits) == 1 << bits);
        }
    }
}
