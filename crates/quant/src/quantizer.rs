//! Uniform scalar quantizer for normalized log-probabilities.

use serde::{Deserialize, Serialize};

use crate::errors::{QuantError, Result};

/// Uniform quantizer mapping a real interval `[low, high]` onto
/// `levels` discrete steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformQuantizer {
    low: f64,
    high: f64,
    levels: usize,
}

impl UniformQuantizer {
    /// Creates a quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] when the interval is empty or
    /// not finite, or fewer than two levels are requested.
    pub fn new(low: f64, high: f64, levels: usize) -> Result<Self> {
        if !(low.is_finite() && high.is_finite()) || high <= low {
            return Err(QuantError::InvalidParameter {
                name: "low/high",
                reason: format!("interval [{low}, {high}] must be finite and non-empty"),
            });
        }
        if levels < 2 {
            return Err(QuantError::InvalidParameter {
                name: "levels",
                reason: "at least two quantization levels are required".to_string(),
            });
        }
        Ok(Self { low, high, levels })
    }

    /// Creates a quantizer for a precision expressed in bits (`2^bits` levels).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidPrecision`] for zero or more than 16 bits,
    /// plus the interval errors of [`UniformQuantizer::new`].
    pub fn with_bits(low: f64, high: f64, bits: u32) -> Result<Self> {
        if bits == 0 || bits > 16 {
            return Err(QuantError::InvalidPrecision {
                kind: "likelihood",
                bits,
            });
        }
        Self::new(low, high, 1usize << bits)
    }

    /// Lower bound of the quantization interval.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the quantization interval.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Number of discrete levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Width of one quantization step.
    pub fn step(&self) -> f64 {
        (self.high - self.low) / (self.levels - 1) as f64
    }

    /// Quantizes a value to its nearest level index, clamping values outside
    /// the interval to the boundary levels.
    pub fn quantize(&self, value: f64) -> usize {
        if value.is_nan() {
            return 0;
        }
        let clamped = value.clamp(self.low, self.high);
        let index = ((clamped - self.low) / self.step()).round() as usize;
        index.min(self.levels - 1)
    }

    /// Reconstruction value of a level index.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnknownIndex`] when the level does not exist.
    pub fn dequantize(&self, level: usize) -> Result<f64> {
        if level >= self.levels {
            return Err(QuantError::UnknownIndex {
                kind: "level",
                index: level,
            });
        }
        Ok(self.low + level as f64 * self.step())
    }

    /// Quantization followed by reconstruction.
    pub fn reconstruct(&self, value: f64) -> f64 {
        self.dequantize(self.quantize(value))
            .expect("quantize returns an in-range level")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(UniformQuantizer::new(0.0, 1.0, 4).is_ok());
        assert!(UniformQuantizer::new(1.0, 0.0, 4).is_err());
        assert!(UniformQuantizer::new(0.0, 1.0, 1).is_err());
        assert!(UniformQuantizer::new(f64::NAN, 1.0, 4).is_err());
        assert!(UniformQuantizer::with_bits(0.0, 1.0, 0).is_err());
        assert!(UniformQuantizer::with_bits(0.0, 1.0, 17).is_err());
        assert_eq!(
            UniformQuantizer::with_bits(0.0, 1.0, 3).unwrap().levels(),
            8
        );
    }

    #[test]
    fn paper_example_ten_levels() {
        // Fig. 4(a): P' in [-1.3, 1.0] quantized to 10 levels.
        let q = UniformQuantizer::new(-1.3, 1.0, 10).unwrap();
        assert_eq!(q.quantize(-1.3), 0);
        assert_eq!(q.quantize(1.0), 9);
        assert!((q.step() - 2.3 / 9.0).abs() < 1e-12);
        assert!((q.dequantize(9).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_clamps_out_of_range() {
        let q = UniformQuantizer::new(0.0, 1.0, 4).unwrap();
        assert_eq!(q.quantize(-5.0), 0);
        assert_eq!(q.quantize(7.0), 3);
        assert_eq!(q.quantize(f64::NAN), 0);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let q = UniformQuantizer::new(-2.0, 1.0, 16).unwrap();
        let mut value = -2.0;
        while value <= 1.0 {
            let error = (q.reconstruct(value) - value).abs();
            assert!(error <= q.step() / 2.0 + 1e-12, "error {error} at {value}");
            value += 0.01;
        }
    }

    #[test]
    fn dequantize_validates_level() {
        let q = UniformQuantizer::new(0.0, 1.0, 4).unwrap();
        assert!(q.dequantize(4).is_err());
        assert_eq!(q.dequantize(0).unwrap(), 0.0);
    }

    #[test]
    fn quantization_is_monotone() {
        let q = UniformQuantizer::new(-1.0, 1.0, 8).unwrap();
        let mut previous = 0;
        let mut value = -1.0;
        while value <= 1.0 {
            let level = q.quantize(value);
            assert!(level >= previous);
            previous = level;
            value += 0.005;
        }
    }

    #[test]
    fn accessors() {
        let q = UniformQuantizer::new(-1.5, 0.5, 4).unwrap();
        assert_eq!(q.low(), -1.5);
        assert_eq!(q.high(), 0.5);
        assert_eq!(q.levels(), 4);
    }
}
