//! Error types for the quantization and mapping pipeline.

use std::error::Error;
use std::fmt;

use febim_bayes::BayesError;
use febim_device::DeviceError;

/// Errors produced by the quantization and mapping pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A quantization precision is outside the supported range.
    InvalidPrecision {
        /// Which precision was invalid (`"feature"` or `"likelihood"`).
        kind: &'static str,
        /// The offending number of bits.
        bits: u32,
    },
    /// A pipeline parameter is invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A sample has the wrong number of features.
    FeatureCountMismatch {
        /// Expected number of features.
        expected: usize,
        /// Number found.
        found: usize,
    },
    /// A referenced class, feature or bin does not exist.
    UnknownIndex {
        /// Kind of index (`"class"`, `"feature"`, `"bin"`, `"level"`).
        kind: &'static str,
        /// The offending index.
        index: usize,
    },
    /// An underlying Bayesian-model error.
    Bayes(BayesError),
    /// An underlying device-model error.
    Device(DeviceError),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidPrecision { kind, bits } => {
                write!(
                    f,
                    "{kind} quantization precision of {bits} bits unsupported"
                )
            }
            QuantError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            QuantError::FeatureCountMismatch { expected, found } => {
                write!(f, "sample has {found} features, expected {expected}")
            }
            QuantError::UnknownIndex { kind, index } => write!(f, "unknown {kind} index {index}"),
            QuantError::Bayes(err) => write!(f, "bayes error: {err}"),
            QuantError::Device(err) => write!(f, "device error: {err}"),
        }
    }
}

impl Error for QuantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuantError::Bayes(err) => Some(err),
            QuantError::Device(err) => Some(err),
            _ => None,
        }
    }
}

impl From<BayesError> for QuantError {
    fn from(err: BayesError) -> Self {
        QuantError::Bayes(err)
    }
}

impl From<DeviceError> for QuantError {
    fn from(err: DeviceError) -> Self {
        QuantError::Device(err)
    }
}

/// Convenience result alias used throughout the quant crate.
pub type Result<T> = std::result::Result<T, QuantError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(QuantError::InvalidPrecision {
            kind: "feature",
            bits: 0
        }
        .to_string()
        .contains("feature"));
        assert!(QuantError::InvalidParameter {
            name: "floor",
            reason: "must be positive".to_string()
        }
        .to_string()
        .contains("floor"));
        assert!(QuantError::FeatureCountMismatch {
            expected: 4,
            found: 3
        }
        .to_string()
        .contains("expected 4"));
        assert!(QuantError::UnknownIndex {
            kind: "bin",
            index: 9
        }
        .to_string()
        .contains("bin index 9"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let bayes = BayesError::NotTrained;
        let err: QuantError = bayes.into();
        assert!(Error::source(&err).is_some());
        let device = DeviceError::TooManyLevels {
            requested: 3,
            supported: 2,
        };
        let err: QuantError = device.into();
        assert!(err.to_string().contains("device error"));
    }
}
