//! Gaussian naive Bayes classifier (GNBC).
//!
//! This is the software model the paper trains with scikit-learn and then
//! maps onto the FeFET crossbar: per-class feature means and variances, a
//! Gaussian likelihood per feature, conditional independence across features
//! and a class prior estimated from the class frequencies (Sec. 4.2).

use serde::{Deserialize, Serialize};

use febim_data::Dataset;

use crate::errors::{BayesError, Result};
use crate::prob::argmax;

/// Per-class, per-feature Gaussian parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassGaussians {
    /// Mean of each feature given this class.
    pub means: Vec<f64>,
    /// Variance of each feature given this class (after smoothing).
    pub variances: Vec<f64>,
    /// Prior probability of this class.
    pub prior: f64,
}

/// A trained Gaussian naive Bayes classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    classes: Vec<ClassGaussians>,
    n_features: usize,
    var_smoothing: f64,
}

impl GaussianNaiveBayes {
    /// Default portion of the largest feature variance added to every
    /// variance for numerical stability (same default as scikit-learn).
    pub const DEFAULT_VAR_SMOOTHING: f64 = 1e-9;

    /// Fits a GNBC to a dataset using the default variance smoothing.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTrainingData`] when a class has no
    /// samples in the dataset.
    pub fn fit(dataset: &Dataset) -> Result<Self> {
        Self::fit_with_smoothing(dataset, Self::DEFAULT_VAR_SMOOTHING)
    }

    /// Fits a GNBC with an explicit variance-smoothing fraction.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTrainingData`] when a class has no
    /// samples or the smoothing value is negative.
    pub fn fit_with_smoothing(dataset: &Dataset, var_smoothing: f64) -> Result<Self> {
        if var_smoothing < 0.0 || !var_smoothing.is_finite() {
            return Err(BayesError::InvalidTrainingData {
                reason: format!("variance smoothing {var_smoothing} must be non-negative"),
            });
        }
        let n_features = dataset.n_features();
        let n_samples = dataset.n_samples() as f64;

        // Largest per-feature variance over the whole training set, used to
        // scale the smoothing term exactly like scikit-learn's GaussianNB.
        let mut max_variance = 0.0f64;
        for feature in 0..n_features {
            let column = dataset.feature_column(feature);
            let mean = column.iter().sum::<f64>() / n_samples;
            let variance = column.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n_samples;
            max_variance = max_variance.max(variance);
        }
        let epsilon = var_smoothing * max_variance;

        let mut classes = Vec::with_capacity(dataset.n_classes());
        for class in 0..dataset.n_classes() {
            let indices = dataset.class_indices(class);
            if indices.is_empty() {
                return Err(BayesError::InvalidTrainingData {
                    reason: format!("class {class} has no training samples"),
                });
            }
            let count = indices.len() as f64;
            let mut means = vec![0.0; n_features];
            for &index in &indices {
                let sample = dataset.sample(index).expect("valid index");
                for (feature, &value) in sample.iter().enumerate() {
                    means[feature] += value;
                }
            }
            for mean in &mut means {
                *mean /= count;
            }
            let mut variances = vec![0.0; n_features];
            for &index in &indices {
                let sample = dataset.sample(index).expect("valid index");
                for (feature, &value) in sample.iter().enumerate() {
                    variances[feature] += (value - means[feature]).powi(2);
                }
            }
            for variance in &mut variances {
                *variance = *variance / count + epsilon;
                if *variance <= 0.0 {
                    // Degenerate constant feature with zero smoothing: fall
                    // back to a tiny positive variance so the log-pdf stays
                    // finite.
                    *variance = f64::MIN_POSITIVE.sqrt();
                }
            }
            classes.push(ClassGaussians {
                means,
                variances,
                prior: count / n_samples,
            });
        }
        Ok(Self {
            classes,
            n_features,
            var_smoothing,
        })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Per-class Gaussian parameters.
    pub fn classes(&self) -> &[ClassGaussians] {
        &self.classes
    }

    /// The variance-smoothing fraction used during fitting.
    pub fn var_smoothing(&self) -> f64 {
        self.var_smoothing
    }

    /// Whether every class has the same prior (within tolerance), in which
    /// case the FeBiM crossbar can omit the prior column (as in Fig. 8(b)).
    pub fn has_uniform_prior(&self) -> bool {
        let expected = 1.0 / self.classes.len() as f64;
        self.classes
            .iter()
            .all(|c| (c.prior - expected).abs() < 1e-9)
    }

    /// Natural-log Gaussian likelihood `ln p(x | class)` of one feature value.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownIndex`] for class or feature indices out
    /// of range.
    pub fn feature_log_likelihood(&self, class: usize, feature: usize, value: f64) -> Result<f64> {
        let params = self.classes.get(class).ok_or(BayesError::UnknownIndex {
            kind: "class",
            index: class,
        })?;
        if feature >= self.n_features {
            return Err(BayesError::UnknownIndex {
                kind: "feature",
                index: feature,
            });
        }
        let mean = params.means[feature];
        let variance = params.variances[feature];
        Ok(gaussian_log_pdf(value, mean, variance))
    }

    /// Log-posterior score `ln P(class) + Σ ln p(x_i | class)` of every class
    /// for one sample (unnormalized; the evidence term is omitted exactly as
    /// in Eq. (2) of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::FeatureCountMismatch`] when the sample length is
    /// wrong.
    pub fn log_posteriors(&self, sample: &[f64]) -> Result<Vec<f64>> {
        if sample.len() != self.n_features {
            return Err(BayesError::FeatureCountMismatch {
                expected: self.n_features,
                found: sample.len(),
            });
        }
        Ok(self
            .classes
            .iter()
            .map(|params| {
                let mut score = params.prior.ln();
                for (feature, &value) in sample.iter().enumerate() {
                    score +=
                        gaussian_log_pdf(value, params.means[feature], params.variances[feature]);
                }
                score
            })
            .collect())
    }

    /// Unnormalized log posterior of every class, written into `out`
    /// (cleared first) — the allocation-reusing variant of
    /// [`GaussianNaiveBayes::log_posteriors`] used by the software inference
    /// backend's batched hot path.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::FeatureCountMismatch`] when the sample length is
    /// wrong.
    pub fn log_posteriors_into(&self, sample: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if sample.len() != self.n_features {
            return Err(BayesError::FeatureCountMismatch {
                expected: self.n_features,
                found: sample.len(),
            });
        }
        out.clear();
        out.reserve(self.classes.len());
        for params in &self.classes {
            let mut score = params.prior.ln();
            for (feature, &value) in sample.iter().enumerate() {
                score += gaussian_log_pdf(value, params.means[feature], params.variances[feature]);
            }
            out.push(score);
        }
        Ok(())
    }

    /// Predicts the class with the maximum posterior for one sample.
    ///
    /// # Errors
    ///
    /// Propagates [`GaussianNaiveBayes::log_posteriors`] errors.
    pub fn predict(&self, sample: &[f64]) -> Result<usize> {
        let scores = self.log_posteriors(sample)?;
        Ok(argmax(&scores).expect("at least one class"))
    }

    /// Predicts every sample of a dataset.
    ///
    /// # Errors
    ///
    /// Propagates per-sample prediction errors.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Result<Vec<usize>> {
        dataset
            .samples()
            .iter()
            .map(|sample| self.predict(sample))
            .collect()
    }

    /// Classification accuracy on a labelled dataset.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn score(&self, dataset: &Dataset) -> Result<f64> {
        let predictions = self.predict_dataset(dataset)?;
        febim_data::accuracy(&predictions, dataset.labels()).map_err(|_| {
            BayesError::InvalidTrainingData {
                reason: "dataset has no samples".to_string(),
            }
        })
    }
}

/// Natural-log probability density of a Gaussian.
pub fn gaussian_log_pdf(value: f64, mean: f64, variance: f64) -> f64 {
    let variance = variance.max(f64::MIN_POSITIVE);
    -0.5 * ((value - mean).powi(2) / variance + variance.ln() + (2.0 * std::f64::consts::PI).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::{iris_like, wine_like};

    fn toy_dataset() -> Dataset {
        // Two well-separated classes on one feature.
        Dataset::new(
            "toy",
            vec!["x".to_string()],
            2,
            vec![
                vec![0.0],
                vec![0.2],
                vec![-0.1],
                vec![5.0],
                vec![5.2],
                vec![4.9],
            ],
            vec![0, 0, 0, 1, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn gaussian_log_pdf_peaks_at_mean() {
        let at_mean = gaussian_log_pdf(0.0, 0.0, 1.0);
        let off_mean = gaussian_log_pdf(2.0, 0.0, 1.0);
        assert!(at_mean > off_mean);
        // Standard normal density at the mean is 1/sqrt(2π).
        assert!((at_mean.exp() - 1.0 / (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_class_statistics() {
        let model = GaussianNaiveBayes::fit(&toy_dataset()).unwrap();
        assert_eq!(model.n_classes(), 2);
        assert_eq!(model.n_features(), 1);
        let class0 = &model.classes()[0];
        let class1 = &model.classes()[1];
        assert!((class0.means[0] - 0.0333).abs() < 1e-3);
        assert!((class1.means[0] - 5.0333).abs() < 1e-3);
        assert!((class0.prior - 0.5).abs() < 1e-12);
        assert!(model.has_uniform_prior());
    }

    #[test]
    fn predicts_separated_classes_perfectly() {
        let model = GaussianNaiveBayes::fit(&toy_dataset()).unwrap();
        assert_eq!(model.predict(&[0.1]).unwrap(), 0);
        assert_eq!(model.predict(&[5.1]).unwrap(), 1);
        assert!((model.score(&toy_dataset()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_rejected() {
        let dataset = Dataset::new(
            "missing-class",
            vec!["x".to_string()],
            3,
            vec![vec![0.0], vec![1.0]],
            vec![0, 1],
        )
        .unwrap();
        assert!(matches!(
            GaussianNaiveBayes::fit(&dataset),
            Err(BayesError::InvalidTrainingData { .. })
        ));
    }

    #[test]
    fn negative_smoothing_rejected() {
        assert!(GaussianNaiveBayes::fit_with_smoothing(&toy_dataset(), -1.0).is_err());
    }

    #[test]
    fn wrong_feature_count_rejected() {
        let model = GaussianNaiveBayes::fit(&toy_dataset()).unwrap();
        assert!(matches!(
            model.predict(&[1.0, 2.0]),
            Err(BayesError::FeatureCountMismatch { .. })
        ));
    }

    #[test]
    fn unknown_indices_rejected() {
        let model = GaussianNaiveBayes::fit(&toy_dataset()).unwrap();
        assert!(model.feature_log_likelihood(5, 0, 1.0).is_err());
        assert!(model.feature_log_likelihood(0, 5, 1.0).is_err());
        assert!(model.feature_log_likelihood(0, 0, 1.0).is_ok());
    }

    #[test]
    fn iris_like_accuracy_matches_software_baseline() {
        // The paper's FP64 software baseline sits in the mid-90s % for iris;
        // the synthetic stand-in should land in the same band.
        let dataset = iris_like(11).unwrap();
        let mut rng = seeded_rng(11);
        let split = stratified_split(&dataset, 0.7, &mut rng).unwrap();
        let model = GaussianNaiveBayes::fit(&split.train).unwrap();
        let accuracy = model.score(&split.test).unwrap();
        assert!(accuracy > 0.88, "iris-like accuracy {accuracy}");
    }

    #[test]
    fn wine_like_accuracy_is_high() {
        let dataset = wine_like(13).unwrap();
        let mut rng = seeded_rng(13);
        let split = stratified_split(&dataset, 0.7, &mut rng).unwrap();
        let model = GaussianNaiveBayes::fit(&split.train).unwrap();
        let accuracy = model.score(&split.test).unwrap();
        assert!(accuracy > 0.85, "wine-like accuracy {accuracy}");
    }

    #[test]
    fn unbalanced_prior_detected() {
        let dataset = Dataset::new(
            "unbalanced",
            vec!["x".to_string()],
            2,
            vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0]],
            vec![0, 0, 0, 1],
        )
        .unwrap();
        let model = GaussianNaiveBayes::fit(&dataset).unwrap();
        assert!(!model.has_uniform_prior());
        assert!((model.classes()[0].prior - 0.75).abs() < 1e-12);
    }

    #[test]
    fn log_posteriors_order_matches_prediction() {
        let model = GaussianNaiveBayes::fit(&toy_dataset()).unwrap();
        let scores = model.log_posteriors(&[4.5]).unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores[1] > scores[0]);
        assert_eq!(model.predict(&[4.5]).unwrap(), 1);
    }

    #[test]
    fn log_posteriors_into_matches_the_allocating_path() {
        let model = GaussianNaiveBayes::fit(&toy_dataset()).unwrap();
        let mut scores = vec![9.9; 7];
        model.log_posteriors_into(&[4.5], &mut scores).unwrap();
        assert_eq!(scores, model.log_posteriors(&[4.5]).unwrap());
        assert!(model.log_posteriors_into(&[1.0, 2.0], &mut scores).is_err());
    }
}
