//! Discrete Bayesian networks with exact enumeration inference.
//!
//! The paper motivates FeBiM with general Bayesian inference (Sec. 2.2) —
//! medical diagnosis networks, decision making under uncertainty — before
//! specialising to naive Bayes classification for the benchmark. This module
//! provides that general substrate: discrete variables, conditional
//! probability tables (CPTs) and exact posterior queries by enumeration,
//! which also serves as the ground-truth reference for the naive Bayes
//! special case.

use serde::{Deserialize, Serialize};

use crate::errors::{BayesError, Result};
use crate::prob::log_scores_to_probabilities;

/// One discrete variable (node) of a Bayesian network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable variable name.
    pub name: String,
    /// Number of states the variable can take.
    pub cardinality: usize,
    /// Indices of the parent variables (must be smaller than this node's
    /// index, i.e. the network is specified in topological order).
    pub parents: Vec<usize>,
    /// Conditional probability table.
    ///
    /// `cpt[parent_config][state]` where `parent_config` enumerates the
    /// parent state combinations in row-major order (first parent varies
    /// slowest).
    pub cpt: Vec<Vec<f64>>,
}

/// A discrete Bayesian network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianNetwork {
    nodes: Vec<Node>,
}

/// An observed assignment `variable = state` used as evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    /// Index of the observed variable.
    pub variable: usize,
    /// Observed state.
    pub state: usize,
}

impl BayesianNetwork {
    /// Builds a network from nodes given in topological order.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidNetwork`] when a node references a parent
    /// that is not defined before it, a CPT row has the wrong width, a CPT
    /// has the wrong number of rows, or a row does not sum to one;
    /// [`BayesError::InvalidProbability`] when a CPT entry is outside `[0,1]`.
    pub fn new(nodes: Vec<Node>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(BayesError::InvalidNetwork {
                reason: "network needs at least one node".to_string(),
            });
        }
        for (index, node) in nodes.iter().enumerate() {
            if node.cardinality == 0 {
                return Err(BayesError::InvalidNetwork {
                    reason: format!("node {index} has zero states"),
                });
            }
            for &parent in &node.parents {
                if parent >= index {
                    return Err(BayesError::InvalidNetwork {
                        reason: format!(
                            "node {index} references parent {parent} that is not earlier in topological order"
                        ),
                    });
                }
            }
            let parent_configs: usize =
                node.parents.iter().map(|&p| nodes[p].cardinality).product();
            if node.cpt.len() != parent_configs.max(1) {
                return Err(BayesError::InvalidNetwork {
                    reason: format!(
                        "node {index} CPT has {} rows, expected {}",
                        node.cpt.len(),
                        parent_configs.max(1)
                    ),
                });
            }
            for row in &node.cpt {
                if row.len() != node.cardinality {
                    return Err(BayesError::InvalidNetwork {
                        reason: format!(
                            "node {index} CPT row has {} entries, expected {}",
                            row.len(),
                            node.cardinality
                        ),
                    });
                }
                let mut sum = 0.0;
                for &p in row {
                    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                        return Err(BayesError::InvalidProbability(p));
                    }
                    sum += p;
                }
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(BayesError::UnnormalizedDistribution { sum });
                }
            }
        }
        Ok(Self { nodes })
    }

    /// Number of variables.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow the nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    fn parent_config_index(&self, node: &Node, assignment: &[usize]) -> usize {
        let mut index = 0;
        for &parent in &node.parents {
            index = index * self.nodes[parent].cardinality + assignment[parent];
        }
        index
    }

    /// Joint log-probability of a full assignment (one state per variable).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownIndex`] when the assignment length or a
    /// state is out of range.
    pub fn log_joint(&self, assignment: &[usize]) -> Result<f64> {
        if assignment.len() != self.nodes.len() {
            return Err(BayesError::UnknownIndex {
                kind: "variable",
                index: assignment.len(),
            });
        }
        let mut total = 0.0;
        for (index, node) in self.nodes.iter().enumerate() {
            let state = assignment[index];
            if state >= node.cardinality {
                return Err(BayesError::UnknownIndex {
                    kind: "state",
                    index: state,
                });
            }
            let row = self.parent_config_index(node, assignment);
            let p = self.nodes[index].cpt[row][state];
            total += p.max(f64::MIN_POSITIVE).ln();
        }
        Ok(total)
    }

    /// Exact posterior `P(query | evidence)` by enumerating every assignment
    /// consistent with the evidence.
    ///
    /// Returns one probability per state of the query variable.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownIndex`] for out-of-range variables or
    /// states in the query or evidence.
    pub fn posterior(&self, query: usize, evidence: &[Evidence]) -> Result<Vec<f64>> {
        if query >= self.nodes.len() {
            return Err(BayesError::UnknownIndex {
                kind: "variable",
                index: query,
            });
        }
        for item in evidence {
            if item.variable >= self.nodes.len() {
                return Err(BayesError::UnknownIndex {
                    kind: "variable",
                    index: item.variable,
                });
            }
            if item.state >= self.nodes[item.variable].cardinality {
                return Err(BayesError::UnknownIndex {
                    kind: "state",
                    index: item.state,
                });
            }
        }
        let query_cardinality = self.nodes[query].cardinality;
        let mut weights = vec![0.0f64; query_cardinality];
        let mut assignment = vec![0usize; self.nodes.len()];
        self.enumerate(0, &mut assignment, evidence, query, &mut weights)?;
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Evidence with zero probability: fall back to a uniform posterior.
            return Ok(vec![1.0 / query_cardinality as f64; query_cardinality]);
        }
        Ok(weights.into_iter().map(|w| w / total).collect())
    }

    fn enumerate(
        &self,
        depth: usize,
        assignment: &mut Vec<usize>,
        evidence: &[Evidence],
        query: usize,
        weights: &mut [f64],
    ) -> Result<()> {
        if depth == self.nodes.len() {
            let log_joint = self.log_joint(assignment)?;
            weights[assignment[query]] += log_joint.exp();
            return Ok(());
        }
        let fixed = evidence
            .iter()
            .find(|item| item.variable == depth)
            .map(|item| item.state);
        let states: Vec<usize> = match fixed {
            Some(state) => vec![state],
            None => (0..self.nodes[depth].cardinality).collect(),
        };
        for state in states {
            assignment[depth] = state;
            self.enumerate(depth + 1, assignment, evidence, query, weights)?;
        }
        Ok(())
    }

    /// Most probable state of the query variable given the evidence.
    ///
    /// # Errors
    ///
    /// Propagates [`BayesianNetwork::posterior`] errors.
    pub fn map_state(&self, query: usize, evidence: &[Evidence]) -> Result<usize> {
        let posterior = self.posterior(query, evidence)?;
        Ok(crate::prob::argmax(&posterior).expect("non-empty posterior"))
    }

    /// Builds a naive Bayes network: one class node with the given prior and
    /// one child evidence node per likelihood table.
    ///
    /// `likelihoods[i][class][value]` is `P(evidence_i = value | class)`.
    ///
    /// # Errors
    ///
    /// Propagates [`BayesianNetwork::new`] validation errors.
    pub fn naive_bayes(prior: Vec<f64>, likelihoods: Vec<Vec<Vec<f64>>>) -> Result<Self> {
        let classes = prior.len();
        let mut nodes = vec![Node {
            name: "class".to_string(),
            cardinality: classes,
            parents: vec![],
            cpt: vec![prior],
        }];
        for (index, table) in likelihoods.into_iter().enumerate() {
            let cardinality = table.first().map(|row| row.len()).unwrap_or(0);
            nodes.push(Node {
                name: format!("evidence_{index}"),
                cardinality,
                parents: vec![0],
                cpt: table,
            });
        }
        Self::new(nodes)
    }

    /// Normalized posterior over classes computed from log-domain scores
    /// (helper shared with the naive-Bayes code paths).
    pub fn normalize_log_scores(scores: &[f64]) -> Vec<f64> {
        log_scores_to_probabilities(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic sprinkler network: Rain -> Sprinkler, Rain+Sprinkler -> Wet.
    fn sprinkler() -> BayesianNetwork {
        BayesianNetwork::new(vec![
            Node {
                name: "rain".to_string(),
                cardinality: 2,
                parents: vec![],
                cpt: vec![vec![0.8, 0.2]],
            },
            Node {
                name: "sprinkler".to_string(),
                cardinality: 2,
                parents: vec![0],
                cpt: vec![vec![0.6, 0.4], vec![0.99, 0.01]],
            },
            Node {
                name: "wet".to_string(),
                cardinality: 2,
                parents: vec![0, 1],
                // rows: (rain=0,sprinkler=0), (rain=0,sprinkler=1),
                //       (rain=1,sprinkler=0), (rain=1,sprinkler=1)
                cpt: vec![
                    vec![1.0, 0.0],
                    vec![0.1, 0.9],
                    vec![0.2, 0.8],
                    vec![0.01, 0.99],
                ],
            },
        ])
        .unwrap()
    }

    #[test]
    fn structural_validation() {
        assert!(BayesianNetwork::new(vec![]).is_err());
        // Parent defined after child.
        assert!(BayesianNetwork::new(vec![Node {
            name: "a".to_string(),
            cardinality: 2,
            parents: vec![1],
            cpt: vec![vec![0.5, 0.5]],
        }])
        .is_err());
        // CPT row does not sum to one.
        assert!(BayesianNetwork::new(vec![Node {
            name: "a".to_string(),
            cardinality: 2,
            parents: vec![],
            cpt: vec![vec![0.5, 0.2]],
        }])
        .is_err());
        // Probability outside the unit interval.
        assert!(BayesianNetwork::new(vec![Node {
            name: "a".to_string(),
            cardinality: 2,
            parents: vec![],
            cpt: vec![vec![1.5, -0.5]],
        }])
        .is_err());
        // Wrong number of CPT rows.
        assert!(BayesianNetwork::new(vec![
            Node {
                name: "a".to_string(),
                cardinality: 2,
                parents: vec![],
                cpt: vec![vec![0.5, 0.5]],
            },
            Node {
                name: "b".to_string(),
                cardinality: 2,
                parents: vec![0],
                cpt: vec![vec![0.5, 0.5]],
            }
        ])
        .is_err());
        // Zero-cardinality node.
        assert!(BayesianNetwork::new(vec![Node {
            name: "a".to_string(),
            cardinality: 0,
            parents: vec![],
            cpt: vec![vec![]],
        }])
        .is_err());
    }

    #[test]
    fn joint_probability_of_full_assignment() {
        let network = sprinkler();
        // P(rain=1, sprinkler=0, wet=1) = 0.2 * 0.99 * 0.8.
        let log_joint = network.log_joint(&[1, 0, 1]).unwrap();
        assert!((log_joint.exp() - 0.2 * 0.99 * 0.8).abs() < 1e-12);
        assert!(network.log_joint(&[1, 0]).is_err());
        assert!(network.log_joint(&[1, 0, 5]).is_err());
    }

    #[test]
    fn posterior_without_evidence_is_the_prior() {
        let network = sprinkler();
        let posterior = network.posterior(0, &[]).unwrap();
        assert!((posterior[0] - 0.8).abs() < 1e-9);
        assert!((posterior[1] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn wet_grass_raises_rain_probability() {
        let network = sprinkler();
        let posterior = network
            .posterior(
                0,
                &[Evidence {
                    variable: 2,
                    state: 1,
                }],
            )
            .unwrap();
        // Observing wet grass makes rain more likely than its 0.2 prior.
        assert!(posterior[1] > 0.2, "posterior {posterior:?}");
        let sum: f64 = posterior.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(
            network
                .map_state(
                    0,
                    &[Evidence {
                        variable: 2,
                        state: 1
                    }]
                )
                .unwrap(),
            0
        );
    }

    #[test]
    fn explaining_away_between_causes() {
        let network = sprinkler();
        let rain_given_wet = network
            .posterior(
                0,
                &[Evidence {
                    variable: 2,
                    state: 1,
                }],
            )
            .unwrap()[1];
        let rain_given_wet_and_sprinkler = network
            .posterior(
                0,
                &[
                    Evidence {
                        variable: 2,
                        state: 1,
                    },
                    Evidence {
                        variable: 1,
                        state: 1,
                    },
                ],
            )
            .unwrap()[1];
        // Knowing the sprinkler was on explains the wet grass away.
        assert!(rain_given_wet_and_sprinkler < rain_given_wet);
    }

    #[test]
    fn invalid_queries_rejected() {
        let network = sprinkler();
        assert!(network.posterior(9, &[]).is_err());
        assert!(network
            .posterior(
                0,
                &[Evidence {
                    variable: 9,
                    state: 0
                }]
            )
            .is_err());
        assert!(network
            .posterior(
                0,
                &[Evidence {
                    variable: 1,
                    state: 9
                }]
            )
            .is_err());
    }

    #[test]
    fn impossible_evidence_falls_back_to_uniform() {
        // Wet grass is impossible when rain=0 and sprinkler=0 in this variant.
        let network = BayesianNetwork::new(vec![
            Node {
                name: "cause".to_string(),
                cardinality: 2,
                parents: vec![],
                cpt: vec![vec![1.0, 0.0]],
            },
            Node {
                name: "effect".to_string(),
                cardinality: 2,
                parents: vec![0],
                cpt: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            },
        ])
        .unwrap();
        let posterior = network
            .posterior(
                0,
                &[Evidence {
                    variable: 1,
                    state: 1,
                }],
            )
            .unwrap();
        assert!((posterior[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn naive_bayes_constructor_matches_manual_network() {
        let network = BayesianNetwork::naive_bayes(
            vec![0.5, 0.5],
            vec![
                vec![vec![0.9, 0.1], vec![0.2, 0.8]],
                vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            ],
        )
        .unwrap();
        assert_eq!(network.n_nodes(), 3);
        // Posterior of the class given both evidence values observed as 1.
        let posterior = network
            .posterior(
                0,
                &[
                    Evidence {
                        variable: 1,
                        state: 1,
                    },
                    Evidence {
                        variable: 2,
                        state: 1,
                    },
                ],
            )
            .unwrap();
        // Manual Bayes: class0 ∝ 0.5*0.1*0.3 = 0.015, class1 ∝ 0.5*0.8*0.6 = 0.24.
        let expected1 = 0.24 / (0.24 + 0.015);
        assert!((posterior[1] - expected1).abs() < 1e-9);
    }

    #[test]
    fn normalize_log_scores_is_exposed() {
        let probs = BayesianNetwork::normalize_log_scores(&[0.0, 0.0]);
        assert!((probs[0] - 0.5).abs() < 1e-12);
    }
}
