//! Probability newtypes.
//!
//! [`Probability`] guarantees its value lies in `[0, 1]`; [`LogProb`] stores a
//! natural-log probability and supports the multiplicative accumulation of
//! Bayes' rule as additions, exactly the trick FeBiM exploits in hardware
//! (Eq. (5) of the paper).

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::errors::{BayesError, Result};

/// A probability value guaranteed to lie in the unit interval.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Probability(f64);

impl Probability {
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidProbability`] if `value` is not finite or
    /// lies outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self> {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(BayesError::InvalidProbability(value));
        }
        Ok(Self(value))
    }

    /// The wrapped value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Natural logarithm of the probability; `-inf` for zero.
    pub fn ln(self) -> LogProb {
        LogProb::new(self.0.ln())
    }

    /// Complement `1 - p`.
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = BayesError;

    fn try_from(value: f64) -> Result<Self> {
        Probability::new(value)
    }
}

/// A natural-log probability (or any log-domain score).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct LogProb(f64);

impl LogProb {
    /// Creates a log-probability from a raw log-domain value.
    pub fn new(value: f64) -> Self {
        Self(value)
    }

    /// Log of the certain event (zero).
    pub fn zero() -> Self {
        Self(0.0)
    }

    /// The wrapped log-domain value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts back to a linear-domain probability, clamping at 1.
    pub fn exp(self) -> f64 {
        self.0.exp().min(1.0)
    }
}

impl Add for LogProb {
    type Output = LogProb;

    /// Adding log-probabilities corresponds to multiplying probabilities —
    /// the accumulation FeBiM performs on its wordlines.
    fn add(self, other: LogProb) -> LogProb {
        LogProb(self.0 + other.0)
    }
}

impl AddAssign for LogProb {
    fn add_assign(&mut self, other: LogProb) {
        self.0 += other.0;
    }
}

impl From<Probability> for LogProb {
    fn from(p: Probability) -> Self {
        p.ln()
    }
}

/// Index of the maximum value in a slice of log-domain scores.
///
/// Returns `None` for an empty slice. Ties resolve to the first maximum.
pub fn argmax(scores: &[f64]) -> Option<usize> {
    if scores.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (index, &score) in scores.iter().enumerate() {
        if score > scores[best] {
            best = index;
        }
    }
    Some(best)
}

/// Converts log-domain scores into a normalized probability distribution
/// (a numerically stable softmax with unit temperature).
pub fn log_scores_to_probabilities(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validates_range() {
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::try_from(0.25).is_ok());
    }

    #[test]
    fn constants_and_complement() {
        assert_eq!(Probability::ZERO.value(), 0.0);
        assert_eq!(Probability::ONE.value(), 1.0);
        let p = Probability::new(0.3).unwrap();
        assert!((p.complement().value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn log_round_trip() {
        let p = Probability::new(0.42).unwrap();
        let log: LogProb = p.into();
        assert!((log.exp() - 0.42).abs() < 1e-12);
        assert_eq!(Probability::ZERO.ln().value(), f64::NEG_INFINITY);
        assert_eq!(Probability::ONE.ln().value(), 0.0);
        assert_eq!(LogProb::zero().value(), 0.0);
    }

    #[test]
    fn log_addition_is_probability_multiplication() {
        let a = Probability::new(0.5).unwrap().ln();
        let b = Probability::new(0.25).unwrap().ln();
        let mut product = a + b;
        assert!((product.exp() - 0.125).abs() < 1e-12);
        product += Probability::new(0.5).unwrap().ln();
        assert!((product.exp() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[0.1, 3.0, 2.0]), Some(1));
        // Ties resolve to the first occurrence.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(argmax(&[f64::NEG_INFINITY, -1.0]), Some(1));
    }

    #[test]
    fn softmax_normalizes() {
        let probs = log_scores_to_probabilities(&[-1.0, -2.0, -3.0]);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(probs[0] > probs[1] && probs[1] > probs[2]);
        assert!(log_scores_to_probabilities(&[]).is_empty());
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = log_scores_to_probabilities(&[-10.0, -11.0]);
        let b = log_scores_to_probabilities(&[0.0, -1.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
