//! Error types for the Bayesian inference substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by Bayesian model construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// A probability value is outside `[0, 1]` or not finite.
    InvalidProbability(f64),
    /// A probability table does not sum to one (within tolerance).
    UnnormalizedDistribution {
        /// The sum that was found.
        sum: f64,
    },
    /// A model was asked to predict before being trained.
    NotTrained,
    /// The training data is unusable (empty, missing classes, ...).
    InvalidTrainingData {
        /// Explanation of the problem.
        reason: String,
    },
    /// A sample has the wrong number of features for the trained model.
    FeatureCountMismatch {
        /// Expected number of features.
        expected: usize,
        /// Number of features in the offending sample.
        found: usize,
    },
    /// A referenced variable, class or state does not exist.
    UnknownIndex {
        /// What kind of index was out of range (`"variable"`, `"class"`, ...).
        kind: &'static str,
        /// The offending index.
        index: usize,
    },
    /// A Bayesian network definition is structurally invalid.
    InvalidNetwork {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::InvalidProbability(p) => {
                write!(f, "probability {p} outside the unit interval")
            }
            BayesError::UnnormalizedDistribution { sum } => {
                write!(f, "distribution sums to {sum}, expected 1")
            }
            BayesError::NotTrained => write!(f, "model has not been trained"),
            BayesError::InvalidTrainingData { reason } => {
                write!(f, "invalid training data: {reason}")
            }
            BayesError::FeatureCountMismatch { expected, found } => {
                write!(f, "sample has {found} features, model expects {expected}")
            }
            BayesError::UnknownIndex { kind, index } => {
                write!(f, "unknown {kind} index {index}")
            }
            BayesError::InvalidNetwork { reason } => write!(f, "invalid network: {reason}"),
        }
    }
}

impl Error for BayesError {}

/// Convenience result alias used throughout the Bayes crate.
pub type Result<T> = std::result::Result<T, BayesError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BayesError::InvalidProbability(1.5)
            .to_string()
            .contains("1.5"));
        assert!(BayesError::UnnormalizedDistribution { sum: 0.8 }
            .to_string()
            .contains("0.8"));
        assert!(BayesError::NotTrained
            .to_string()
            .contains("not been trained"));
        assert!(BayesError::InvalidTrainingData {
            reason: "empty".to_string()
        }
        .to_string()
        .contains("empty"));
        assert!(BayesError::FeatureCountMismatch {
            expected: 4,
            found: 2
        }
        .to_string()
        .contains("expects 4"));
        assert!(BayesError::UnknownIndex {
            kind: "class",
            index: 7
        }
        .to_string()
        .contains("class index 7"));
        assert!(BayesError::InvalidNetwork {
            reason: "cycle".to_string()
        }
        .to_string()
        .contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BayesError>();
    }
}
