//! Categorical naive Bayes classifier for discrete evidence values.
//!
//! FeBiM ultimately stores *discretized* likelihoods, so a categorical naive
//! Bayes model over binned features is the most direct software analogue of
//! what the crossbar computes. It is also the model used by the spam-filter
//! example, where evidence values are inherently categorical.

use serde::{Deserialize, Serialize};

use crate::errors::{BayesError, Result};
use crate::prob::argmax;

/// A trained categorical naive Bayes classifier.
///
/// Feature `i` takes values in `0..cardinalities[i]`; likelihoods are
/// estimated with Laplace (add-alpha) smoothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalNaiveBayes {
    /// `log_likelihoods[class][feature][value]`.
    log_likelihoods: Vec<Vec<Vec<f64>>>,
    /// `log_priors[class]`.
    log_priors: Vec<f64>,
    /// Number of distinct values per feature.
    cardinalities: Vec<usize>,
}

impl CategoricalNaiveBayes {
    /// Fits the classifier.
    ///
    /// * `samples[s][f]` is the discrete value of feature `f` in sample `s`;
    /// * `labels[s]` is the class of sample `s`;
    /// * `n_classes` is the number of classes;
    /// * `cardinalities[f]` is the number of values feature `f` can take;
    /// * `alpha` is the Laplace smoothing constant (> 0 recommended).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTrainingData`] for empty or inconsistent
    /// training data, out-of-range labels/values or a negative `alpha`.
    pub fn fit(
        samples: &[Vec<usize>],
        labels: &[usize],
        n_classes: usize,
        cardinalities: &[usize],
        alpha: f64,
    ) -> Result<Self> {
        if samples.is_empty() {
            return Err(BayesError::InvalidTrainingData {
                reason: "no training samples".to_string(),
            });
        }
        if samples.len() != labels.len() {
            return Err(BayesError::InvalidTrainingData {
                reason: format!("{} samples but {} labels", samples.len(), labels.len()),
            });
        }
        if n_classes == 0 {
            return Err(BayesError::InvalidTrainingData {
                reason: "at least one class is required".to_string(),
            });
        }
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(BayesError::InvalidTrainingData {
                reason: format!("smoothing constant {alpha} must be non-negative"),
            });
        }
        if cardinalities.contains(&0) {
            return Err(BayesError::InvalidTrainingData {
                reason: "every feature needs at least one value".to_string(),
            });
        }
        let n_features = cardinalities.len();
        let mut counts: Vec<Vec<Vec<f64>>> = (0..n_classes)
            .map(|_| cardinalities.iter().map(|&c| vec![0.0; c]).collect())
            .collect();
        let mut class_counts = vec![0.0f64; n_classes];
        for (sample, &label) in samples.iter().zip(labels.iter()) {
            if label >= n_classes {
                return Err(BayesError::InvalidTrainingData {
                    reason: format!("label {label} out of range for {n_classes} classes"),
                });
            }
            if sample.len() != n_features {
                return Err(BayesError::InvalidTrainingData {
                    reason: format!(
                        "sample has {} features, expected {n_features}",
                        sample.len()
                    ),
                });
            }
            class_counts[label] += 1.0;
            for (feature, &value) in sample.iter().enumerate() {
                if value >= cardinalities[feature] {
                    return Err(BayesError::InvalidTrainingData {
                        reason: format!(
                            "feature {feature} value {value} exceeds cardinality {}",
                            cardinalities[feature]
                        ),
                    });
                }
                counts[label][feature][value] += 1.0;
            }
        }
        let total = samples.len() as f64;
        let log_priors: Vec<f64> = class_counts
            .iter()
            .map(|&count| ((count + alpha) / (total + alpha * n_classes as f64)).ln())
            .collect();
        let log_likelihoods: Vec<Vec<Vec<f64>>> = (0..n_classes)
            .map(|class| {
                (0..n_features)
                    .map(|feature| {
                        let denominator =
                            class_counts[class] + alpha * cardinalities[feature] as f64;
                        counts[class][feature]
                            .iter()
                            .map(|&count| {
                                ((count + alpha) / denominator.max(f64::MIN_POSITIVE)).ln()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Ok(Self {
            log_likelihoods,
            log_priors,
            cardinalities: cardinalities.to_vec(),
        })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.log_priors.len()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.cardinalities.len()
    }

    /// Value cardinality of each feature.
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    /// Log prior of one class.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownIndex`] for an out-of-range class.
    pub fn log_prior(&self, class: usize) -> Result<f64> {
        self.log_priors
            .get(class)
            .copied()
            .ok_or(BayesError::UnknownIndex {
                kind: "class",
                index: class,
            })
    }

    /// Log likelihood `ln P(feature = value | class)`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownIndex`] for out-of-range indices.
    pub fn log_likelihood(&self, class: usize, feature: usize, value: usize) -> Result<f64> {
        self.log_likelihoods
            .get(class)
            .ok_or(BayesError::UnknownIndex {
                kind: "class",
                index: class,
            })?
            .get(feature)
            .ok_or(BayesError::UnknownIndex {
                kind: "feature",
                index: feature,
            })?
            .get(value)
            .copied()
            .ok_or(BayesError::UnknownIndex {
                kind: "value",
                index: value,
            })
    }

    /// Unnormalized log-posterior of every class for one discrete sample.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::FeatureCountMismatch`] or
    /// [`BayesError::UnknownIndex`] for malformed samples.
    pub fn log_posteriors(&self, sample: &[usize]) -> Result<Vec<f64>> {
        if sample.len() != self.n_features() {
            return Err(BayesError::FeatureCountMismatch {
                expected: self.n_features(),
                found: sample.len(),
            });
        }
        let mut scores = Vec::with_capacity(self.n_classes());
        for class in 0..self.n_classes() {
            let mut score = self.log_priors[class];
            for (feature, &value) in sample.iter().enumerate() {
                score += self.log_likelihood(class, feature, value)?;
            }
            scores.push(score);
        }
        Ok(scores)
    }

    /// Predicts the maximum-posterior class for one discrete sample.
    ///
    /// # Errors
    ///
    /// Propagates [`CategoricalNaiveBayes::log_posteriors`] errors.
    pub fn predict(&self, sample: &[usize]) -> Result<usize> {
        let scores = self.log_posteriors(sample)?;
        Ok(argmax(&scores).expect("at least one class"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny spam-detection corpus: features = (contains_link, contains_offer).
    fn spam_data() -> (Vec<Vec<usize>>, Vec<usize>) {
        let samples = vec![
            vec![1, 1],
            vec![1, 1],
            vec![1, 0],
            vec![0, 1],
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![1, 0],
        ];
        let labels = vec![1, 1, 1, 1, 0, 0, 0, 0];
        (samples, labels)
    }

    #[test]
    fn fit_and_predict_spam() {
        let (samples, labels) = spam_data();
        let model = CategoricalNaiveBayes::fit(&samples, &labels, 2, &[2, 2], 1.0).unwrap();
        assert_eq!(model.n_classes(), 2);
        assert_eq!(model.n_features(), 2);
        assert_eq!(model.cardinalities(), &[2, 2]);
        // A message with both a link and an offer is classified as spam.
        assert_eq!(model.predict(&[1, 1]).unwrap(), 1);
        // A plain message is classified as ham.
        assert_eq!(model.predict(&[0, 0]).unwrap(), 0);
    }

    #[test]
    fn priors_reflect_class_balance() {
        let (samples, labels) = spam_data();
        let model = CategoricalNaiveBayes::fit(&samples, &labels, 2, &[2, 2], 0.0).unwrap();
        assert!((model.log_prior(0).unwrap().exp() - 0.5).abs() < 1e-12);
        assert!(model.log_prior(5).is_err());
    }

    #[test]
    fn laplace_smoothing_avoids_zero_probabilities() {
        let samples = vec![vec![0], vec![0]];
        let labels = vec![0, 1];
        let model = CategoricalNaiveBayes::fit(&samples, &labels, 2, &[2], 1.0).unwrap();
        // Value 1 was never observed but still has finite log-likelihood.
        let ll = model.log_likelihood(0, 0, 1).unwrap();
        assert!(ll.is_finite());
        assert!(ll < model.log_likelihood(0, 0, 0).unwrap());
    }

    #[test]
    fn invalid_training_data_rejected() {
        assert!(CategoricalNaiveBayes::fit(&[], &[], 2, &[2], 1.0).is_err());
        assert!(CategoricalNaiveBayes::fit(&[vec![0]], &[0, 1], 2, &[2], 1.0).is_err());
        assert!(CategoricalNaiveBayes::fit(&[vec![0]], &[0], 0, &[2], 1.0).is_err());
        assert!(CategoricalNaiveBayes::fit(&[vec![0]], &[0], 2, &[0], 1.0).is_err());
        assert!(CategoricalNaiveBayes::fit(&[vec![0]], &[5], 2, &[2], 1.0).is_err());
        assert!(CategoricalNaiveBayes::fit(&[vec![7]], &[0], 2, &[2], 1.0).is_err());
        assert!(CategoricalNaiveBayes::fit(&[vec![0]], &[0], 2, &[2], -1.0).is_err());
        assert!(CategoricalNaiveBayes::fit(&[vec![0, 1]], &[0], 2, &[2], 1.0).is_err());
    }

    #[test]
    fn malformed_samples_rejected_at_prediction() {
        let (samples, labels) = spam_data();
        let model = CategoricalNaiveBayes::fit(&samples, &labels, 2, &[2, 2], 1.0).unwrap();
        assert!(model.predict(&[0]).is_err());
        assert!(model.predict(&[0, 5]).is_err());
        assert!(model.log_likelihood(0, 9, 0).is_err());
    }

    #[test]
    fn posteriors_have_one_score_per_class() {
        let (samples, labels) = spam_data();
        let model = CategoricalNaiveBayes::fit(&samples, &labels, 2, &[2, 2], 1.0).unwrap();
        let scores = model.log_posteriors(&[1, 0]).unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
