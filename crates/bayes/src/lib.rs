//! # febim-bayes
//!
//! Bayesian inference substrate and software baseline for the FeBiM
//! reproduction:
//!
//! * [`Probability`] / [`LogProb`] newtypes and log-domain helpers;
//! * [`BayesianNetwork`] — discrete Bayesian networks with CPTs and exact
//!   enumeration inference (the general setting motivating the paper);
//! * [`CategoricalNaiveBayes`] — naive Bayes over discrete evidence values;
//! * [`GaussianNaiveBayes`] — the Gaussian naive Bayes classifier (GNBC)
//!   trained in FP64, serving as the paper's software baseline (Fig. 7/8).
//!
//! # Example
//!
//! ```
//! use febim_bayes::GaussianNaiveBayes;
//! use febim_data::{rng::seeded_rng, split::stratified_split, synthetic::iris_like};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = iris_like(1)?;
//! let split = stratified_split(&dataset, 0.7, &mut seeded_rng(1))?;
//! let model = GaussianNaiveBayes::fit(&split.train)?;
//! let accuracy = model.score(&split.test)?;
//! assert!(accuracy > 0.85);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bayesnet;
pub mod errors;
pub mod gnbc;
pub mod naive;
pub mod prob;

pub use bayesnet::{BayesianNetwork, Evidence, Node};
pub use errors::{BayesError, Result};
pub use gnbc::{gaussian_log_pdf, ClassGaussians, GaussianNaiveBayes};
pub use naive::CategoricalNaiveBayes;
pub use prob::{argmax, log_scores_to_probabilities, LogProb, Probability};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Gaussian log-pdf is maximal at the mean for any variance.
        #[test]
        fn gaussian_peaks_at_mean(
            mean in -10.0f64..10.0,
            variance in 1e-3f64..10.0,
            offset in 1e-3f64..10.0,
        ) {
            let at_mean = gaussian_log_pdf(mean, mean, variance);
            let off = gaussian_log_pdf(mean + offset, mean, variance);
            prop_assert!(at_mean > off);
        }

        /// Posterior normalization never changes the argmax.
        #[test]
        fn normalization_preserves_argmax(
            scores in proptest::collection::vec(-50.0f64..0.0, 2..8)
        ) {
            let normalized = log_scores_to_probabilities(&scores);
            let a = argmax(&scores);
            let b = argmax(&normalized);
            prop_assert_eq!(a, b);
        }

        /// Probability validation accepts exactly the unit interval.
        #[test]
        fn probability_validation(value in -2.0f64..3.0) {
            let result = Probability::new(value);
            if (0.0..=1.0).contains(&value) {
                prop_assert!(result.is_ok());
            } else {
                prop_assert!(result.is_err());
            }
        }

        /// GNBC predictions are invariant to adding a constant to every
        /// class's log-posterior (the property Eq. (6)'s normalization relies
        /// on).
        #[test]
        fn log_posterior_shift_invariance(
            sample_index in 0usize..150,
            shift in -5.0f64..5.0,
        ) {
            let dataset = febim_data::synthetic::iris_like(3).unwrap();
            let model = GaussianNaiveBayes::fit(&dataset).unwrap();
            let sample = dataset.sample(sample_index % dataset.n_samples()).unwrap();
            let scores = model.log_posteriors(sample).unwrap();
            let shifted: Vec<f64> = scores.iter().map(|s| s + shift).collect();
            prop_assert_eq!(argmax(&scores), argmax(&shifted));
        }
    }
}
