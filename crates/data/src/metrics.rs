//! Classification metrics.

use serde::{Deserialize, Serialize};

use crate::errors::{DataError, Result};

/// Fraction of predictions that match the true labels.
///
/// # Errors
///
/// Returns [`DataError::PredictionLengthMismatch`] when the slices differ in
/// length and [`DataError::EmptyDataset`] when they are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64> {
    if predictions.len() != labels.len() {
        return Err(DataError::PredictionLengthMismatch {
            predictions: predictions.len(),
            labels: labels.len(),
        });
    }
    if predictions.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f64 / predictions.len() as f64)
}

/// Confusion matrix: `matrix[true_class][predicted_class]` counts.
///
/// # Errors
///
/// Returns the same errors as [`accuracy`], plus
/// [`DataError::LabelOutOfRange`] when a label or prediction exceeds
/// `n_classes`.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    n_classes: usize,
) -> Result<Vec<Vec<usize>>> {
    if predictions.len() != labels.len() {
        return Err(DataError::PredictionLengthMismatch {
            predictions: predictions.len(),
            labels: labels.len(),
        });
    }
    if predictions.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let mut matrix = vec![vec![0usize; n_classes]; n_classes];
    for (&prediction, &label) in predictions.iter().zip(labels.iter()) {
        if prediction >= n_classes {
            return Err(DataError::LabelOutOfRange {
                label: prediction,
                classes: n_classes,
            });
        }
        if label >= n_classes {
            return Err(DataError::LabelOutOfRange {
                label,
                classes: n_classes,
            });
        }
        matrix[label][prediction] += 1;
    }
    Ok(matrix)
}

/// Summary statistics of a collection of accuracy measurements (one per
/// train/inference epoch, as in the paper's 100-epoch evaluations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStats {
    /// Mean accuracy.
    pub mean: f64,
    /// Standard deviation of the accuracy.
    pub std_dev: f64,
    /// Minimum observed accuracy.
    pub min: f64,
    /// Maximum observed accuracy.
    pub max: f64,
    /// Number of measurements.
    pub count: usize,
}

impl AccuracyStats {
    /// Computes the statistics of a set of accuracy values.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when `values` is empty.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Self {
            mean,
            std_dev: variance.sqrt(),
            min,
            max,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let acc = accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]).unwrap();
        assert!((acc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_validates_inputs() {
        assert!(accuracy(&[0, 1], &[0]).is_err());
        assert!(accuracy(&[], &[]).is_err());
    }

    #[test]
    fn perfect_and_zero_accuracy() {
        assert_eq!(accuracy(&[1, 1], &[1, 1]).unwrap(), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn confusion_matrix_counts_cells() {
        let matrix = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3).unwrap();
        assert_eq!(matrix[0][0], 1);
        assert_eq!(matrix[1][1], 1);
        assert_eq!(matrix[2][1], 1);
        assert_eq!(matrix[2][2], 1);
        let total: usize = matrix.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn confusion_matrix_validates_ranges() {
        assert!(confusion_matrix(&[3], &[0], 3).is_err());
        assert!(confusion_matrix(&[0], &[3], 3).is_err());
        assert!(confusion_matrix(&[0], &[0, 1], 3).is_err());
        assert!(confusion_matrix(&[], &[], 3).is_err());
    }

    #[test]
    fn accuracy_stats_summarize() {
        let stats = AccuracyStats::from_values(&[0.9, 0.95, 1.0]).unwrap();
        assert!((stats.mean - 0.95).abs() < 1e-12);
        assert_eq!(stats.min, 0.9);
        assert_eq!(stats.max, 1.0);
        assert_eq!(stats.count, 3);
        assert!(stats.std_dev > 0.0);
    }

    #[test]
    fn accuracy_stats_reject_empty() {
        assert!(AccuracyStats::from_values(&[]).is_err());
    }

    #[test]
    fn accuracy_stats_single_value_has_zero_std() {
        let stats = AccuracyStats::from_values(&[0.8]).unwrap();
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.mean, 0.8);
    }
}
