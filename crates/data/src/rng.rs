//! Deterministic random sampling helpers.
//!
//! The dataset generators only need uniform and Gaussian variates; the
//! Gaussian sampler uses the Box–Muller transform so the crate does not need
//! an extra dependency beyond `rand`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic random number generator from a seed.
///
/// # Examples
///
/// ```
/// use febim_data::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(1);
/// let mut b = seeded_rng(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Draws one normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Produces a random permutation of `0..len` (Fisher–Yates shuffle).
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
    indices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<f64> = {
            let mut rng = seeded_rng(99);
            (0..8).map(|_| rng.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded_rng(99);
            (0..8).map(|_| rng.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_sampler_matches_requested_moments() {
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn permutation_contains_every_index_once() {
        let mut rng = seeded_rng(5);
        let perm = permutation(&mut rng, 100);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_of_empty_and_single() {
        let mut rng = seeded_rng(5);
        assert!(permutation(&mut rng, 0).is_empty());
        assert_eq!(permutation(&mut rng, 1), vec![0]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
