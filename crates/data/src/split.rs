//! Train/test splitting utilities.

use rand::Rng;

use crate::dataset::Dataset;
use crate::errors::{DataError, Result};
use crate::rng::permutation;

/// A train/test partition of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTestSplit {
    /// Training subset.
    pub train: Dataset,
    /// Test subset.
    pub test: Dataset,
}

fn validate_ratio(test_ratio: f64) -> Result<()> {
    if !(test_ratio > 0.0 && test_ratio < 1.0) {
        return Err(DataError::InvalidSplitRatio(test_ratio));
    }
    Ok(())
}

/// Randomly splits a dataset into train and test subsets.
///
/// `test_ratio` is the fraction of samples assigned to the test subset
/// (the paper uses 0.7).
///
/// # Errors
///
/// Returns [`DataError::InvalidSplitRatio`] for ratios outside `(0, 1)` and
/// [`DataError::EmptyDataset`] when either side would end up empty.
pub fn train_test_split<R: Rng + ?Sized>(
    dataset: &Dataset,
    test_ratio: f64,
    rng: &mut R,
) -> Result<TrainTestSplit> {
    validate_ratio(test_ratio)?;
    let n = dataset.n_samples();
    let test_count = ((n as f64) * test_ratio).round() as usize;
    if test_count == 0 || test_count >= n {
        return Err(DataError::EmptyDataset);
    }
    let order = permutation(rng, n);
    let (test_indices, train_indices) = order.split_at(test_count);
    Ok(TrainTestSplit {
        train: dataset.subset(train_indices)?,
        test: dataset.subset(test_indices)?,
    })
}

/// Splits a dataset so that every class contributes (approximately) the same
/// fraction of samples to the test subset.
///
/// # Errors
///
/// Returns [`DataError::InvalidSplitRatio`] for ratios outside `(0, 1)` and
/// [`DataError::EmptyDataset`] when a class would contribute no training
/// samples.
pub fn stratified_split<R: Rng + ?Sized>(
    dataset: &Dataset,
    test_ratio: f64,
    rng: &mut R,
) -> Result<TrainTestSplit> {
    validate_ratio(test_ratio)?;
    let mut train_indices = Vec::new();
    let mut test_indices = Vec::new();
    for class in 0..dataset.n_classes() {
        let indices = dataset.class_indices(class);
        if indices.is_empty() {
            continue;
        }
        let order = permutation(rng, indices.len());
        let test_count = ((indices.len() as f64) * test_ratio).round() as usize;
        let test_count = test_count.min(indices.len().saturating_sub(1)).max(1);
        if indices.len() == 1 {
            // A single-sample class cannot appear in both subsets; put it in
            // the training data so the model can learn it.
            train_indices.push(indices[0]);
            continue;
        }
        for (position, &order_index) in order.iter().enumerate() {
            let sample_index = indices[order_index];
            if position < test_count {
                test_indices.push(sample_index);
            } else {
                train_indices.push(sample_index);
            }
        }
    }
    if train_indices.is_empty() || test_indices.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    Ok(TrainTestSplit {
        train: dataset.subset(&train_indices)?,
        test: dataset.subset(&test_indices)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::synthetic::iris_like;

    #[test]
    fn ratios_outside_unit_interval_rejected() {
        let d = iris_like(1).unwrap();
        let mut rng = seeded_rng(1);
        assert!(train_test_split(&d, 0.0, &mut rng).is_err());
        assert!(train_test_split(&d, 1.0, &mut rng).is_err());
        assert!(stratified_split(&d, -0.5, &mut rng).is_err());
    }

    #[test]
    fn split_sizes_match_ratio() {
        let d = iris_like(1).unwrap();
        let mut rng = seeded_rng(2);
        let split = train_test_split(&d, 0.7, &mut rng).unwrap();
        assert_eq!(split.test.n_samples(), 105);
        assert_eq!(split.train.n_samples(), 45);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = iris_like(3).unwrap();
        let mut rng = seeded_rng(3);
        let split = train_test_split(&d, 0.3, &mut rng).unwrap();
        assert_eq!(
            split.train.n_samples() + split.test.n_samples(),
            d.n_samples()
        );
    }

    #[test]
    fn stratified_split_balances_classes() {
        let d = iris_like(4).unwrap();
        let mut rng = seeded_rng(4);
        let split = stratified_split(&d, 0.7, &mut rng).unwrap();
        // Every class keeps the 30/70 train/test balance exactly for the
        // balanced iris-like dataset.
        assert_eq!(split.test.class_counts(), vec![35, 35, 35]);
        assert_eq!(split.train.class_counts(), vec![15, 15, 15]);
    }

    #[test]
    fn different_seeds_produce_different_splits() {
        let d = iris_like(5).unwrap();
        let mut rng_a = seeded_rng(10);
        let mut rng_b = seeded_rng(11);
        let a = train_test_split(&d, 0.5, &mut rng_a).unwrap();
        let b = train_test_split(&d, 0.5, &mut rng_b).unwrap();
        assert_ne!(a.train.samples(), b.train.samples());
    }

    #[test]
    fn same_seed_reproduces_split() {
        let d = iris_like(5).unwrap();
        let a = train_test_split(&d, 0.5, &mut seeded_rng(10)).unwrap();
        let b = train_test_split(&d, 0.5, &mut seeded_rng(10)).unwrap();
        assert_eq!(a, b);
    }
}
