//! # febim-data
//!
//! Dataset substrate for the FeBiM reproduction: deterministic synthetic
//! stand-ins for the iris / wine / breast-cancer datasets used in the paper's
//! application benchmarking, plus train/test splitting, feature scaling and
//! classification metrics.
//!
//! The original UCI tables are not redistributed; instead
//! [`synthetic::iris_like`], [`synthetic::wine_like`] and
//! [`synthetic::cancer_like`] draw class-conditional Gaussian samples whose
//! dimensionality, class balance and separability are modelled on the
//! originals (see `DESIGN.md` for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use febim_data::{rng::seeded_rng, split::train_test_split, synthetic::iris_like};
//!
//! # fn main() -> Result<(), febim_data::DataError> {
//! let dataset = iris_like(42)?;
//! let mut rng = seeded_rng(42);
//! let split = train_test_split(&dataset, 0.7, &mut rng)?;
//! assert_eq!(split.train.n_samples() + split.test.n_samples(), 150);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod errors;
pub mod metrics;
pub mod rng;
pub mod scaler;
pub mod split;
pub mod synthetic;

pub use dataset::Dataset;
pub use errors::{DataError, Result};
pub use metrics::{accuracy, confusion_matrix, AccuracyStats};
pub use scaler::{MinMaxScaler, StandardScaler};
pub use split::{stratified_split, train_test_split, TrainTestSplit};
pub use synthetic::{cancer_like, gaussian_blobs, iris_like, wine_like, ClassSpec, SyntheticSpec};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Accuracy always lies in [0, 1].
        #[test]
        fn accuracy_is_a_fraction(
            pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..64)
        ) {
            let predictions: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
            let labels: Vec<usize> = pairs.iter().map(|(_, l)| *l).collect();
            let acc = accuracy(&predictions, &labels).unwrap();
            prop_assert!((0.0..=1.0).contains(&acc));
        }

        /// Confusion matrix cells sum to the number of samples.
        #[test]
        fn confusion_matrix_is_consistent(
            pairs in proptest::collection::vec((0usize..3, 0usize..3), 1..64)
        ) {
            let predictions: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
            let labels: Vec<usize> = pairs.iter().map(|(_, l)| *l).collect();
            let matrix = confusion_matrix(&predictions, &labels, 3).unwrap();
            let total: usize = matrix.iter().flatten().sum();
            prop_assert_eq!(total, pairs.len());
            // Diagonal sum over total equals the accuracy.
            let diagonal: usize = (0..3).map(|c| matrix[c][c]).sum();
            let acc = accuracy(&predictions, &labels).unwrap();
            prop_assert!((acc - diagonal as f64 / pairs.len() as f64).abs() < 1e-12);
        }

        /// Splits partition the dataset for any valid ratio.
        #[test]
        fn splits_partition_dataset(seed in 0u64..500, ratio in 0.1f64..0.9) {
            let dataset = synthetic::iris_like(seed).unwrap();
            let mut rng = rng::seeded_rng(seed);
            let split = train_test_split(&dataset, ratio, &mut rng).unwrap();
            prop_assert_eq!(
                split.train.n_samples() + split.test.n_samples(),
                dataset.n_samples()
            );
        }

        /// Min-max scaling always lands in the unit interval.
        #[test]
        fn min_max_output_bounded(seed in 0u64..200, index in 0usize..150) {
            let dataset = synthetic::iris_like(seed).unwrap();
            let scaler = MinMaxScaler::fit(&dataset).unwrap();
            let sample = dataset.sample(index % dataset.n_samples()).unwrap();
            let scaled = scaler.transform_sample(sample).unwrap();
            for value in scaled {
                prop_assert!((0.0..=1.0).contains(&value));
            }
        }
    }
}
