//! Feature scaling helpers.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::errors::{DataError, Result};

/// Per-feature min-max scaler mapping each feature into `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    minimums: Vec<f64>,
    maximums: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler to the feature ranges of a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] if the dataset has no features.
    pub fn fit(dataset: &Dataset) -> Result<Self> {
        if dataset.n_features() == 0 {
            return Err(DataError::EmptyDataset);
        }
        let mut minimums = Vec::with_capacity(dataset.n_features());
        let mut maximums = Vec::with_capacity(dataset.n_features());
        for feature in 0..dataset.n_features() {
            let (min, max) = dataset.feature_range(feature);
            minimums.push(min);
            maximums.push(max);
        }
        Ok(Self { minimums, maximums })
    }

    /// Scales one sample into the unit hypercube, clamping values that fall
    /// outside the fitted range (as happens for unseen test samples).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InconsistentFeatureCount`] when the sample length
    /// does not match the fitted feature count.
    pub fn transform_sample(&self, sample: &[f64]) -> Result<Vec<f64>> {
        if sample.len() != self.minimums.len() {
            return Err(DataError::InconsistentFeatureCount {
                expected: self.minimums.len(),
                found: sample.len(),
                sample: 0,
            });
        }
        Ok(sample
            .iter()
            .enumerate()
            .map(|(feature, &value)| {
                let min = self.minimums[feature];
                let max = self.maximums[feature];
                if max > min {
                    ((value - min) / (max - min)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect())
    }

    /// Fitted minimum of each feature.
    pub fn minimums(&self) -> &[f64] {
        &self.minimums
    }

    /// Fitted maximum of each feature.
    pub fn maximums(&self) -> &[f64] {
        &self.maximums
    }
}

/// Per-feature standard scaler (zero mean, unit variance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] if the dataset has no features.
    pub fn fit(dataset: &Dataset) -> Result<Self> {
        if dataset.n_features() == 0 {
            return Err(DataError::EmptyDataset);
        }
        let n = dataset.n_samples() as f64;
        let mut means = Vec::with_capacity(dataset.n_features());
        let mut std_devs = Vec::with_capacity(dataset.n_features());
        for feature in 0..dataset.n_features() {
            let column = dataset.feature_column(feature);
            let mean = column.iter().sum::<f64>() / n;
            let variance = column.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            means.push(mean);
            std_devs.push(variance.sqrt());
        }
        Ok(Self { means, std_devs })
    }

    /// Standardizes one sample.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InconsistentFeatureCount`] when the sample length
    /// does not match the fitted feature count.
    pub fn transform_sample(&self, sample: &[f64]) -> Result<Vec<f64>> {
        if sample.len() != self.means.len() {
            return Err(DataError::InconsistentFeatureCount {
                expected: self.means.len(),
                found: sample.len(),
                sample: 0,
            });
        }
        Ok(sample
            .iter()
            .enumerate()
            .map(|(feature, &value)| {
                let std = self.std_devs[feature];
                if std > 0.0 {
                    (value - self.means[feature]) / std
                } else {
                    0.0
                }
            })
            .collect())
    }

    /// Fitted mean of each feature.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted standard deviation of each feature.
    pub fn std_devs(&self) -> &[f64] {
        &self.std_devs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec!["a".to_string(), "b".to_string()],
            2,
            vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]],
            vec![0, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn min_max_scales_into_unit_interval() {
        let scaler = MinMaxScaler::fit(&toy()).unwrap();
        assert_eq!(scaler.minimums(), &[0.0, 10.0]);
        assert_eq!(scaler.maximums(), &[10.0, 30.0]);
        let scaled = scaler.transform_sample(&[5.0, 30.0]).unwrap();
        assert!((scaled[0] - 0.5).abs() < 1e-12);
        assert!((scaled[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_clamps_out_of_range_values() {
        let scaler = MinMaxScaler::fit(&toy()).unwrap();
        let scaled = scaler.transform_sample(&[-5.0, 99.0]).unwrap();
        assert_eq!(scaled, vec![0.0, 1.0]);
    }

    #[test]
    fn min_max_rejects_wrong_length() {
        let scaler = MinMaxScaler::fit(&toy()).unwrap();
        assert!(scaler.transform_sample(&[1.0]).is_err());
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let d = Dataset::new(
            "const",
            vec!["a".to_string()],
            1,
            vec![vec![3.0], vec![3.0]],
            vec![0, 0],
        )
        .unwrap();
        let scaler = MinMaxScaler::fit(&d).unwrap();
        assert_eq!(scaler.transform_sample(&[3.0]).unwrap(), vec![0.0]);
        let standard = StandardScaler::fit(&d).unwrap();
        assert_eq!(standard.transform_sample(&[3.0]).unwrap(), vec![0.0]);
    }

    #[test]
    fn standard_scaler_zero_mean_unit_variance() {
        let d = toy();
        let scaler = StandardScaler::fit(&d).unwrap();
        let transformed: Vec<Vec<f64>> = d
            .samples()
            .iter()
            .map(|s| scaler.transform_sample(s).unwrap())
            .collect();
        for feature in 0..d.n_features() {
            let mean: f64 =
                transformed.iter().map(|s| s[feature]).sum::<f64>() / d.n_samples() as f64;
            let var: f64 = transformed
                .iter()
                .map(|s| (s[feature] - mean).powi(2))
                .sum::<f64>()
                / d.n_samples() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_scaler_rejects_wrong_length() {
        let scaler = StandardScaler::fit(&toy()).unwrap();
        assert!(scaler.transform_sample(&[1.0, 2.0, 3.0]).is_err());
        assert_eq!(scaler.means().len(), 2);
        assert_eq!(scaler.std_devs().len(), 2);
    }
}
