//! Error types for the dataset substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by dataset construction, splitting and metric helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// The dataset has no samples.
    EmptyDataset,
    /// Feature vectors have inconsistent lengths.
    InconsistentFeatureCount {
        /// Expected number of features.
        expected: usize,
        /// Number of features found in the offending sample.
        found: usize,
        /// Index of the offending sample.
        sample: usize,
    },
    /// A label refers to a class index beyond the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes declared for the dataset.
        classes: usize,
    },
    /// The number of labels differs from the number of samples.
    LabelCountMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A split ratio is outside the open interval (0, 1).
    InvalidSplitRatio(f64),
    /// Prediction and label vectors differ in length.
    PredictionLengthMismatch {
        /// Number of predictions.
        predictions: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A generator or scaler parameter is invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptyDataset => write!(f, "dataset contains no samples"),
            DataError::InconsistentFeatureCount {
                expected,
                found,
                sample,
            } => write!(
                f,
                "sample {sample} has {found} features, expected {expected}"
            ),
            DataError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DataError::LabelCountMismatch { samples, labels } => {
                write!(f, "{labels} labels provided for {samples} samples")
            }
            DataError::InvalidSplitRatio(ratio) => {
                write!(f, "split ratio {ratio} must lie strictly between 0 and 1")
            }
            DataError::PredictionLengthMismatch {
                predictions,
                labels,
            } => write!(
                f,
                "{predictions} predictions compared against {labels} labels"
            ),
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for DataError {}

/// Convenience result alias used throughout the data crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DataError::EmptyDataset.to_string().contains("no samples"));
        assert!(DataError::InconsistentFeatureCount {
            expected: 4,
            found: 3,
            sample: 7
        }
        .to_string()
        .contains("sample 7"));
        assert!(DataError::LabelOutOfRange {
            label: 5,
            classes: 3
        }
        .to_string()
        .contains("label 5"));
        assert!(DataError::LabelCountMismatch {
            samples: 10,
            labels: 9
        }
        .to_string()
        .contains("9 labels"));
        assert!(DataError::InvalidSplitRatio(1.5)
            .to_string()
            .contains("1.5"));
        assert!(DataError::PredictionLengthMismatch {
            predictions: 3,
            labels: 4
        }
        .to_string()
        .contains("3 predictions"));
        assert!(DataError::InvalidParameter {
            name: "std",
            reason: "must be positive".to_string()
        }
        .to_string()
        .contains("std"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
